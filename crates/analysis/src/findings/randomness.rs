//! Finding 8 (F8) — randomness ratios (Fig. 10).

use cbs_stats::Cdf;
use cbs_trace::VolumeId;

use crate::metrics::VolumeMetrics;

/// Fig. 10(a) — the distribution of per-volume randomness ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomnessDistribution {
    /// CDF of randomness ratios (fraction of random requests).
    pub cdf: Cdf,
}

impl RandomnessDistribution {
    /// Builds the distribution.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        RandomnessDistribution {
            cdf: metrics
                .iter()
                .map(VolumeMetrics::randomness_ratio)
                .collect(),
        }
    }

    /// Fraction of volumes with randomness ratio above `x`
    /// (paper: 20 % of AliCloud volumes above 0.5; all MSRC below 0.46).
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.cdf.fraction_at_or_below(x)
    }

    /// The maximum randomness ratio observed.
    pub fn max(&self) -> Option<f64> {
        self.cdf.quantiles().max()
    }
}

/// One point of Fig. 10(b): a top-traffic volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficRandomnessPoint {
    /// The volume.
    pub id: VolumeId,
    /// Its total traffic in bytes.
    pub traffic_bytes: u64,
    /// Its randomness ratio.
    pub randomness_ratio: f64,
}

/// Fig. 10(b) — the top-`k` volumes by total traffic, with their
/// randomness ratios, traffic-descending.
pub fn top_traffic_volumes(metrics: &[VolumeMetrics], k: usize) -> Vec<TrafficRandomnessPoint> {
    let mut points: Vec<TrafficRandomnessPoint> = metrics
        .iter()
        .map(|m| TrafficRandomnessPoint {
            id: m.id,
            traffic_bytes: m.total_bytes(),
            randomness_ratio: m.randomness_ratio(),
        })
        .collect();
    points.sort_by_key(|p| std::cmp::Reverse(p.traffic_bytes));
    points.truncate(k);
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn sequential_volume_is_less_random() {
        let (_, metrics) = fixture();
        // vol 1 is sequential reads → low randomness; vol 2 jumps MiBs
        let v1 = metrics.iter().find(|m| m.id == VolumeId::new(1)).unwrap();
        let v2 = metrics.iter().find(|m| m.id == VolumeId::new(2)).unwrap();
        assert!(v1.randomness_ratio() < 0.2, "v1 {}", v1.randomness_ratio());
        assert!(v2.randomness_ratio() > 0.8, "v2 {}", v2.randomness_ratio());
    }

    #[test]
    fn distribution_and_fractions() {
        let (_, metrics) = fixture();
        let d = RandomnessDistribution::from_metrics(&metrics);
        assert_eq!(d.cdf.len(), 3);
        assert!(d.fraction_above(0.5) >= 1.0 / 3.0 - 1e-12);
        assert!(d.max().unwrap() <= 1.0);
    }

    #[test]
    fn top_traffic_ranking() {
        let (_, metrics) = fixture();
        let top = top_traffic_volumes(&metrics, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].traffic_bytes >= top[1].traffic_bytes);
        let all = top_traffic_volumes(&metrics, 100);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn empty_metrics() {
        let d = RandomnessDistribution::from_metrics(&[]);
        assert_eq!(d.max(), None);
        assert!(top_traffic_volumes(&[], 5).is_empty());
    }
}
