//! Fig. 4 — per-volume write-to-read ratios (the write-dominance
//! context behind F6 and F7).

use cbs_stats::Cdf;

use crate::metrics::VolumeMetrics;

/// Fig. 4 — the distribution of write-to-read request ratios across
/// volumes. Volumes with zero reads have an infinite ratio and are
/// counted as write-dominant (and above any finite threshold) but are
/// excluded from the plottable CDF.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteReadRatios {
    /// CDF of finite per-volume W:R ratios.
    pub cdf: Cdf,
    /// Volumes with no reads at all (infinite ratio).
    pub infinite_ratio_volumes: usize,
    /// Total volumes considered.
    pub volumes: usize,
    write_dominant: usize,
}

impl WriteReadRatios {
    /// Builds the distribution.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        let mut finite = Vec::new();
        let mut infinite = 0usize;
        let mut write_dominant = 0usize;
        for m in metrics {
            if m.is_write_dominant() {
                write_dominant += 1;
            }
            match m.write_read_ratio() {
                Some(r) => finite.push(r),
                None => infinite += 1,
            }
        }
        WriteReadRatios {
            cdf: Cdf::from_unsorted(finite),
            infinite_ratio_volumes: infinite,
            volumes: metrics.len(),
            write_dominant,
        }
    }

    /// Fraction of volumes that are write-dominant (W:R > 1; paper:
    /// 91.5 % AliCloud, 53 % MSRC).
    pub fn fraction_write_dominant(&self) -> f64 {
        if self.volumes == 0 {
            return 0.0;
        }
        self.write_dominant as f64 / self.volumes as f64
    }

    /// Fraction of volumes with W:R above `threshold` (infinite ratios
    /// count; paper: 42.4 % above 100 in AliCloud).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.volumes == 0 {
            return 0.0;
        }
        let finite_above = self.cdf.len() as f64 * (1.0 - self.cdf.fraction_at_or_below(threshold));
        (finite_above + self.infinite_ratio_volumes as f64) / self.volumes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn fixture_ratios() {
        let (_, metrics) = fixture();
        let r = WriteReadRatios::from_metrics(&metrics);
        assert_eq!(r.volumes, 3);
        assert_eq!(r.infinite_ratio_volumes, 0);
        // vol 0: 60/6 = 10 (write-dominant); vol 1: 4/64 (read-dominant);
        // vol 2: 10/10 = 1 (not write-dominant: not strictly more writes)
        assert!((r.fraction_write_dominant() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.fraction_above(5.0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.fraction_above(1e9), 0.0);
    }

    #[test]
    fn infinite_ratios_count_above_any_threshold() {
        let (_, metrics) = fixture();
        let mut metrics = metrics;
        metrics[0].reads = 0; // vol 0 now has no reads
        let r = WriteReadRatios::from_metrics(&metrics);
        assert_eq!(r.infinite_ratio_volumes, 1);
        assert!(r.fraction_above(1e12) >= 1.0 / 3.0 - 1e-12);
    }

    #[test]
    fn empty_metrics() {
        let r = WriteReadRatios::from_metrics(&[]);
        assert_eq!(r.fraction_write_dominant(), 0.0);
        assert_eq!(r.fraction_above(1.0), 0.0);
    }
}
