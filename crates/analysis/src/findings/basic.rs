//! Table I — basic corpus statistics (corpus context shared by all
//! findings, F1-F15).

use crate::metrics::VolumeMetrics;

/// One gibibyte.
pub const GIB: f64 = (1u64 << 30) as f64;
/// One tebibyte.
pub const TIB: f64 = (1u64 << 40) as f64;

/// The rows of the paper's Table I for one corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceTotals {
    /// Number of volumes with at least one request.
    pub volumes: usize,
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Bytes written to already-written blocks.
    pub updated_bytes: u64,
    /// Unique blocks read, in bytes (read WSS).
    pub read_wss_bytes: u64,
    /// Unique blocks written, in bytes (write WSS).
    pub write_wss_bytes: u64,
    /// Blocks written more than once, in bytes (update WSS).
    pub update_wss_bytes: u64,
    /// Unique blocks touched, in bytes (total WSS).
    pub total_wss_bytes: u64,
}

impl TraceTotals {
    /// Aggregates per-volume metrics into corpus totals.
    /// `block_bytes` converts WSS block counts into bytes.
    pub fn from_metrics(metrics: &[VolumeMetrics], block_bytes: u64) -> Self {
        let mut t = TraceTotals {
            volumes: metrics.len(),
            reads: 0,
            writes: 0,
            read_bytes: 0,
            write_bytes: 0,
            updated_bytes: 0,
            read_wss_bytes: 0,
            write_wss_bytes: 0,
            update_wss_bytes: 0,
            total_wss_bytes: 0,
        };
        for m in metrics {
            t.reads += m.reads;
            t.writes += m.writes;
            t.read_bytes += m.read_bytes;
            t.write_bytes += m.write_bytes;
            t.updated_bytes += m.updated_bytes;
            t.read_wss_bytes += m.wss_read_blocks * block_bytes;
            t.write_wss_bytes += m.wss_write_blocks * block_bytes;
            t.update_wss_bytes += m.wss_update_blocks * block_bytes;
            t.total_wss_bytes += m.wss_blocks * block_bytes;
        }
        t
    }

    /// Total requests.
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Corpus write-to-read request ratio; `None` without reads.
    pub fn write_read_ratio(&self) -> Option<f64> {
        (self.reads > 0).then(|| self.writes as f64 / self.reads as f64)
    }

    /// Read WSS as a fraction of total WSS (the paper: 34.3 % AliCloud,
    /// 98.4 % MSRC).
    pub fn read_wss_fraction(&self) -> Option<f64> {
        (self.total_wss_bytes > 0).then(|| self.read_wss_bytes as f64 / self.total_wss_bytes as f64)
    }

    /// Write WSS as a fraction of total WSS (89.4 % in AliCloud).
    pub fn write_wss_fraction(&self) -> Option<f64> {
        (self.total_wss_bytes > 0)
            .then(|| self.write_wss_bytes as f64 / self.total_wss_bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn totals_add_up_across_volumes() {
        let (_, metrics) = fixture();
        let t = TraceTotals::from_metrics(&metrics, 4096);
        assert_eq!(t.volumes, 3);
        assert_eq!(t.reads, 6 + 64 + 10);
        assert_eq!(t.writes, 60 + 4 + 10);
        assert_eq!(t.requests(), t.reads + t.writes);
        let sum_read_bytes: u64 = metrics.iter().map(|m| m.read_bytes).sum();
        assert_eq!(t.read_bytes, sum_read_bytes);
        // total WSS ≥ read + update WSS components are internally consistent
        assert!(t.total_wss_bytes >= t.read_wss_bytes.max(t.write_wss_bytes));
        assert!(t.update_wss_bytes <= t.write_wss_bytes);
    }

    #[test]
    fn fractions() {
        let (_, metrics) = fixture();
        let t = TraceTotals::from_metrics(&metrics, 4096);
        let ratio = t.write_read_ratio().unwrap();
        assert!((ratio - 74.0 / 80.0).abs() < 1e-12);
        let rf = t.read_wss_fraction().unwrap();
        let wf = t.write_wss_fraction().unwrap();
        assert!(rf > 0.0 && rf <= 1.0);
        assert!(wf > 0.0 && wf <= 1.0);
    }

    #[test]
    fn empty_corpus() {
        let t = TraceTotals::from_metrics(&[], 4096);
        assert_eq!(t.volumes, 0);
        assert_eq!(t.requests(), 0);
        assert_eq!(t.write_read_ratio(), None);
        assert_eq!(t.read_wss_fraction(), None);
    }
}
