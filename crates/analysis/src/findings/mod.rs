//! Per-finding data builders, keyed to the paper's numbered findings
//! F1-F15 (each submodule cites the IDs it reproduces).
//!
//! Each submodule turns `&[VolumeMetrics]` (and, where the paper
//! aggregates across volumes in time, the trace itself) into the exact
//! data behind one of the paper's tables or figures:
//!
//! | Module | Paper artifacts |
//! |---|---|
//! | [`basic`] | Table I |
//! | [`request_size`] | Fig. 2 |
//! | [`rw_ratio`] | Fig. 4 |
//! | [`intensity`] | Fig. 5, Table II, Fig. 6 (Findings 1-3) |
//! | [`interarrival`] | Fig. 7 (Finding 4) |
//! | [`activeness`] | Figs. 3, 8, 9 (Findings 5-7) |
//! | [`randomness`] | Fig. 10 (Finding 8) |
//! | [`aggregation`] | Fig. 11 (Finding 9) |
//! | [`rw_mostly`] | Table III, Fig. 12 (Finding 10) |
//! | [`update_coverage`] | Table IV, Fig. 13 (Finding 11) |
//! | [`adjacency`] | Figs. 14-15, Table V (Findings 12-13) |
//! | [`update_interval`] | Table VI, Figs. 16-17 (Finding 14) |
//! | [`cache`] | Fig. 18 (Finding 15) |
//! | [`verdicts`] | machine-checked directional claims of all 15 findings |

pub mod activeness;
pub mod adjacency;
pub mod aggregation;
pub mod basic;
pub mod cache;
pub mod intensity;
pub mod interarrival;
pub mod randomness;
pub mod request_size;
pub mod rw_mostly;
pub mod rw_ratio;
pub mod update_coverage;
pub mod update_interval;
pub mod verdicts;

/// The percentile groups the paper's boxplot figures use.
pub const PAPER_PERCENTILES: [f64; 5] = [25.0, 50.0, 75.0, 90.0, 95.0];

#[cfg(test)]
pub(crate) mod testutil {
    //! A tiny two-corpus fixture shared by finding tests.

    use cbs_trace::{IoRequest, OpKind, Timestamp, Trace, VolumeId};

    use crate::{analyze_trace, AnalysisConfig, VolumeMetrics};

    /// Builds a small deterministic trace with three volumes of
    /// distinct personalities:
    ///
    /// * vol 0 — write-dominant, hot block 0 overwritten repeatedly;
    /// * vol 1 — read-dominant, sequential reads over 64 blocks;
    /// * vol 2 — single burst of mixed ops on day 1.
    pub(crate) fn fixture() -> (Trace, Vec<VolumeMetrics>) {
        let mut reqs = Vec::new();
        // vol 0: 60 writes to block 0 (1 per minute), 6 reads
        for i in 0..60u64 {
            reqs.push(IoRequest::new(
                VolumeId::new(0),
                OpKind::Write,
                0,
                4096,
                Timestamp::from_mins(i),
            ));
        }
        for i in 0..6u64 {
            reqs.push(IoRequest::new(
                VolumeId::new(0),
                OpKind::Read,
                4096,
                8192,
                Timestamp::from_mins(i * 10) + cbs_trace::TimeDelta::from_secs(30),
            ));
        }
        // vol 1: 64 sequential reads, 4 writes
        for i in 0..64u64 {
            reqs.push(IoRequest::new(
                VolumeId::new(1),
                OpKind::Read,
                i * 4096,
                4096,
                Timestamp::from_secs(i * 100),
            ));
        }
        for i in 0..4u64 {
            reqs.push(IoRequest::new(
                VolumeId::new(1),
                OpKind::Write,
                (1 << 30) + i * 4096,
                4096,
                Timestamp::from_secs(1000 + i),
            ));
        }
        // vol 2: a burst on day 1
        for i in 0..20u64 {
            reqs.push(IoRequest::new(
                VolumeId::new(2),
                if i % 2 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
                i * 1_000_000,
                16384,
                Timestamp::from_days(1) + cbs_trace::TimeDelta::from_millis(i),
            ));
        }
        let trace = Trace::from_requests(reqs);
        let metrics = analyze_trace(&trace, &AnalysisConfig::default()).expect("valid config");
        (trace, metrics)
    }
}
