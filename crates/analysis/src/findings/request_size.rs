//! Fig. 2 — request-size distributions (corpus context shared by all
//! findings, F1-F15).

use cbs_stats::{Cdf, LogHistogram};

use crate::metrics::VolumeMetrics;

/// Fig. 2(a) — corpus-wide request-size distributions (all requests of
/// all volumes merged), per op kind.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSizeDistribution {
    /// Merged read-size histogram (bytes).
    pub read_hist: LogHistogram,
    /// Merged write-size histogram (bytes).
    pub write_hist: LogHistogram,
}

impl RequestSizeDistribution {
    /// Merges per-volume histograms.
    ///
    /// # Panics
    ///
    /// Panics if volumes were analyzed with different histogram
    /// precisions.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        let mut read_hist = metrics
            .first()
            .map(|m| LogHistogram::new(m.read_size_hist.precision_bits()))
            .unwrap_or_default();
        let mut write_hist = read_hist.clone();
        for m in metrics {
            read_hist.merge(&m.read_size_hist);
            write_hist.merge(&m.write_size_hist);
        }
        RequestSizeDistribution {
            read_hist,
            write_hist,
        }
    }

    /// The 75th-percentile read size in bytes (paper: ≤ 32 KiB AliCloud,
    /// ≤ 64 KiB MSRC).
    pub fn read_p75(&self) -> Option<u64> {
        self.read_hist.quantile(0.75)
    }

    /// The 75th-percentile write size in bytes (paper: ≤ 16 KiB / 20 KiB).
    pub fn write_p75(&self) -> Option<u64> {
        self.write_hist.quantile(0.75)
    }

    /// Fraction of reads at most `bytes` large.
    pub fn reads_at_most(&self, bytes: u64) -> f64 {
        self.read_hist.fraction_at_or_below(bytes)
    }

    /// Fraction of writes at most `bytes` large.
    pub fn writes_at_most(&self, bytes: u64) -> f64 {
        self.write_hist.fraction_at_or_below(bytes)
    }
}

/// Fig. 2(b) — distributions of per-volume *mean* request sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct MeanSizeDistribution {
    /// CDF of per-volume mean read sizes (bytes; volumes with reads).
    pub read_means: Cdf,
    /// CDF of per-volume mean write sizes (bytes; volumes with writes).
    pub write_means: Cdf,
}

impl MeanSizeDistribution {
    /// Builds both CDFs.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        MeanSizeDistribution {
            read_means: metrics
                .iter()
                .filter_map(VolumeMetrics::mean_read_size)
                .collect(),
            write_means: metrics
                .iter()
                .filter_map(VolumeMetrics::mean_write_size)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn merged_totals_match_request_counts() {
        let (_, metrics) = fixture();
        let d = RequestSizeDistribution::from_metrics(&metrics);
        let reads: u64 = metrics.iter().map(|m| m.reads).sum();
        let writes: u64 = metrics.iter().map(|m| m.writes).sum();
        assert_eq!(d.read_hist.total(), reads);
        assert_eq!(d.write_hist.total(), writes);
    }

    #[test]
    fn small_io_dominates_fixture() {
        let (_, metrics) = fixture();
        let d = RequestSizeDistribution::from_metrics(&metrics);
        // fixture sizes are 4-16 KiB
        assert!(d.write_p75().unwrap() <= 17 * 1024);
        assert!(d.read_p75().unwrap() <= 17 * 1024);
        assert!((d.reads_at_most(1 << 20) - 1.0).abs() < 1e-12);
        assert!(d.writes_at_most(1024) < 1e-12);
    }

    #[test]
    fn mean_size_distribution_counts_qualifying_volumes() {
        let (_, metrics) = fixture();
        let d = MeanSizeDistribution::from_metrics(&metrics);
        assert_eq!(d.read_means.len(), 3);
        assert_eq!(d.write_means.len(), 3);
        // vol 0 reads are 8 KiB
        assert!(d.read_means.fraction_at_or_below(8192.0) > 0.0);
    }

    #[test]
    fn empty_metrics() {
        let d = RequestSizeDistribution::from_metrics(&[]);
        assert_eq!(d.read_p75(), None);
        let m = MeanSizeDistribution::from_metrics(&[]);
        assert!(m.read_means.is_empty());
    }
}
