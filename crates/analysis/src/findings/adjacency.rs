//! Findings 12-13 (F12, F13) — same-block adjacency times
//! (Figs. 14-15, Table V).

use cbs_stats::LogHistogram;
use cbs_trace::TimeDelta;

use crate::metrics::VolumeMetrics;

/// The four adjacency pair kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairKind {
    /// Read after write.
    Raw,
    /// Write after write.
    Waw,
    /// Read after read.
    Rar,
    /// Write after read.
    War,
}

impl PairKind {
    /// All kinds in Table V order.
    pub const ALL: [PairKind; 4] = [PairKind::Raw, PairKind::Waw, PairKind::Rar, PairKind::War];

    /// Short upper-case label (`"RAW"`, ...).
    pub fn label(self) -> &'static str {
        match self {
            PairKind::Raw => "RAW",
            PairKind::Waw => "WAW",
            PairKind::Rar => "RAR",
            PairKind::War => "WAR",
        }
    }
}

/// Figs. 14-15 + Table V — corpus-merged elapsed-time distributions of
/// the four adjacency pair kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct AdjacencyTimes {
    /// Merged RAW histogram (µs).
    pub raw: LogHistogram,
    /// Merged WAW histogram (µs).
    pub waw: LogHistogram,
    /// Merged RAR histogram (µs).
    pub rar: LogHistogram,
    /// Merged WAR histogram (µs).
    pub war: LogHistogram,
}

impl AdjacencyTimes {
    /// Merges every volume's adjacency histograms.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        let bits = metrics.first().map_or(6, |m| m.raw_hist.precision_bits());
        let mut t = AdjacencyTimes {
            raw: LogHistogram::new(bits),
            waw: LogHistogram::new(bits),
            rar: LogHistogram::new(bits),
            war: LogHistogram::new(bits),
        };
        for m in metrics {
            t.raw.merge(&m.raw_hist);
            t.waw.merge(&m.waw_hist);
            t.rar.merge(&m.rar_hist);
            t.war.merge(&m.war_hist);
        }
        t
    }

    /// The histogram of one kind.
    pub fn hist(&self, kind: PairKind) -> &LogHistogram {
        match kind {
            PairKind::Raw => &self.raw,
            PairKind::Waw => &self.waw,
            PairKind::Rar => &self.rar,
            PairKind::War => &self.war,
        }
    }

    /// Table V — the pair count of one kind.
    pub fn count(&self, kind: PairKind) -> u64 {
        self.hist(kind).total()
    }

    /// Median elapsed time of one kind.
    pub fn median(&self, kind: PairKind) -> Option<TimeDelta> {
        self.hist(kind).quantile(0.5).map(TimeDelta::from_micros)
    }

    /// Fraction of pairs of `kind` with elapsed time at most `delta`
    /// (e.g. the paper's "50.6 % of MSRC WAW times are under 1 minute").
    pub fn fraction_within(&self, kind: PairKind, delta: TimeDelta) -> f64 {
        self.hist(kind).fraction_at_or_below(delta.as_micros())
    }

    /// WAW-to-RAW count ratio (paper: 8.4× in AliCloud, ≈ 1 in MSRC);
    /// `None` without RAW pairs.
    pub fn waw_to_raw_ratio(&self) -> Option<f64> {
        let raw = self.count(PairKind::Raw);
        (raw > 0).then(|| self.count(PairKind::Waw) as f64 / raw as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn counts_merge_across_volumes() {
        let (_, metrics) = fixture();
        let t = AdjacencyTimes::from_metrics(&metrics);
        for kind in PairKind::ALL {
            let manual: u64 = metrics
                .iter()
                .map(|m| match kind {
                    PairKind::Raw => m.raw_hist.total(),
                    PairKind::Waw => m.waw_hist.total(),
                    PairKind::Rar => m.rar_hist.total(),
                    PairKind::War => m.war_hist.total(),
                })
                .sum();
            assert_eq!(t.count(kind), manual, "{}", kind.label());
        }
        // vol 0 hammers block 0 with writes → WAW dominates
        assert!(t.count(PairKind::Waw) >= 59);
        assert!(t.waw_to_raw_ratio().is_none() || t.waw_to_raw_ratio().unwrap() > 0.0);
    }

    #[test]
    fn waw_times_are_the_write_cadence() {
        let (_, metrics) = fixture();
        let t = AdjacencyTimes::from_metrics(&metrics);
        // vol 0 writes block 0 every minute
        let median = t.median(PairKind::Waw).unwrap();
        let err = (median.as_secs_f64() - 60.0).abs() / 60.0;
        assert!(err < 0.05, "median {median}");
        assert!(t.fraction_within(PairKind::Waw, TimeDelta::from_mins(2)) > 0.99);
    }

    #[test]
    fn labels_and_order() {
        assert_eq!(
            PairKind::ALL.map(PairKind::label),
            ["RAW", "WAW", "RAR", "WAR"]
        );
    }

    #[test]
    fn empty_metrics() {
        let t = AdjacencyTimes::from_metrics(&[]);
        for kind in PairKind::ALL {
            assert_eq!(t.count(kind), 0);
            assert_eq!(t.median(kind), None);
        }
        assert_eq!(t.waw_to_raw_ratio(), None);
    }
}
