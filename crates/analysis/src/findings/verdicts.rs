//! Machine-checked verdicts for the 15 findings (F1-F15).
//!
//! Each of the paper's findings reduces to a *directional claim* — who
//! is burstier, which distribution sits to the left, which counts
//! dominate. [`evaluate_pair`] checks every claim against a pair of
//! analyzed corpora (a cloud-like corpus vs. an enterprise/MSRC-like
//! one) and returns structured verdicts, so a reproduction can state
//! precisely which findings hold rather than eyeballing figures.

use cbs_trace::TimeDelta;

use crate::config::AnalysisConfig;
use crate::findings::activeness::{ActiveDays, ActivePeriods, ActivenessSeries};
use crate::findings::adjacency::{AdjacencyTimes, PairKind};
use crate::findings::aggregation::AggregationBoxplots;
use crate::findings::cache::LruMissRatios;
use crate::findings::intensity::{BurstinessDistribution, IntensitySeries};
use crate::findings::interarrival::InterarrivalBoxplots;
use crate::findings::randomness::RandomnessDistribution;
use crate::findings::rw_mostly::RwMostly;
use crate::findings::update_coverage::UpdateCoverage;
use crate::findings::update_interval::{IntervalGroup, IntervalGroupProportions};
use crate::metrics::VolumeMetrics;

/// The verdict for one finding.
#[derive(Debug, Clone, PartialEq)]
pub struct FindingVerdict {
    /// Finding number (1-15) as in the paper's Section IV.
    pub finding: u8,
    /// The directional claim being checked.
    pub claim: &'static str,
    /// Whether the claim holds on the analyzed pair.
    pub holds: bool,
    /// The measured quantities behind the verdict.
    pub evidence: String,
}

impl std::fmt::Display for FindingVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Finding {:>2}: [{}] {} ({})",
            self.finding,
            if self.holds { "HOLDS" } else { "DIVERGES" },
            self.claim,
            self.evidence
        )
    }
}

/// Evaluates all 15 findings on a (cloud-like, enterprise-like) corpus
/// pair, in paper order.
///
/// `cloud` plays AliCloud's role and `enterprise` MSRC's; both must
/// have been analyzed with the same `config`.
pub fn evaluate_pair(
    cloud: &[VolumeMetrics],
    enterprise: &[VolumeMetrics],
    config: &AnalysisConfig,
) -> Vec<FindingVerdict> {
    let mut verdicts = Vec::with_capacity(15);

    // Finding 1: similar load intensities of volumes.
    {
        let c = IntensitySeries::from_metrics(cloud, config);
        let e = IntensitySeries::from_metrics(enterprise, config);
        let (cm, em) = (c.median_avg().unwrap_or(0.0), e.median_avg().unwrap_or(0.0));
        let ratio = if em > 0.0 { cm / em } else { f64::INFINITY };
        verdicts.push(FindingVerdict {
            finding: 1,
            claim: "both corpora have similar per-volume load intensities",
            holds: (0.1..=10.0).contains(&ratio),
            evidence: format!("median avg intensity cloud {cm:.4} vs enterprise {em:.4} req/s"),
        });
    }

    // Finding 2: a non-negligible fraction of volumes is highly bursty.
    {
        let c = BurstinessDistribution::from_metrics(cloud, config);
        let e = BurstinessDistribution::from_metrics(enterprise, config);
        let (ca, ea) = (c.fraction_above(100.0), e.fraction_above(100.0));
        verdicts.push(FindingVerdict {
            finding: 2,
            claim: "a non-negligible fraction of volumes has burstiness > 100",
            holds: ca > 0.05 && ea > 0.05,
            evidence: format!(
                "ratio>100: cloud {:.1}% / enterprise {:.1}%",
                ca * 100.0,
                ea * 100.0
            ),
        });
    }

    // Finding 3: the cloud corpus has more diverse burstiness.
    {
        let c = BurstinessDistribution::from_metrics(cloud, config);
        let e = BurstinessDistribution::from_metrics(enterprise, config);
        let c_spread = c.fraction_below(10.0) + c.fraction_above(1000.0);
        let e_spread = e.fraction_below(10.0) + e.fraction_above(1000.0);
        verdicts.push(FindingVerdict {
            finding: 3,
            claim: "the cloud corpus spans a wider burstiness range",
            holds: c_spread > e_spread,
            evidence: format!(
                "mass outside [10,1000]: cloud {:.1}% vs enterprise {:.1}%",
                c_spread * 100.0,
                e_spread * 100.0
            ),
        });
    }

    // Finding 4: short-term burstiness — µs/ms-scale inter-arrivals.
    {
        let c = InterarrivalBoxplots::from_metrics(cloud);
        let e = InterarrivalBoxplots::from_metrics(enterprise);
        let cm = c.median_of_group(1).unwrap_or(f64::INFINITY);
        let em = e.median_of_group(1).unwrap_or(f64::INFINITY);
        verdicts.push(FindingVerdict {
            finding: 4,
            claim: "median per-volume median inter-arrival is sub-5ms in both",
            holds: cm < 5_000.0 && em < 5_000.0,
            evidence: format!("cloud {cm:.0}us vs enterprise {em:.0}us"),
        });
    }

    // Finding 5: most volumes are active throughout the trace.
    {
        let c = ActiveDays::from_metrics(cloud);
        let e = ActiveDays::from_metrics(enterprise);
        let c_all = 1.0 - c.fraction_at_most(max_days(cloud).saturating_sub(1));
        let e_all = 1.0 - e.fraction_at_most(max_days(enterprise).saturating_sub(1));
        verdicts.push(FindingVerdict {
            finding: 5,
            claim: "the majority of volumes is active on every trace day",
            holds: c_all > 0.5 && e_all > 0.5,
            evidence: format!(
                "all-days-active: cloud {:.1}% / enterprise {:.1}%",
                c_all * 100.0,
                e_all * 100.0
            ),
        });
    }

    // Finding 6: writes determine activeness.
    {
        let holds = [cloud, enterprise].iter().all(|metrics| {
            let p = ActivePeriods::from_metrics(metrics, config);
            match (
                p.active_days.value_at(0.5),
                p.write_active_days.value_at(0.5),
            ) {
                (Some(active), Some(write)) => write >= 0.75 * active,
                _ => false,
            }
        });
        verdicts.push(FindingVerdict {
            finding: 6,
            claim: "write-active time tracks total active time",
            holds,
            evidence: "median write-active >= 75% of median active in both".to_owned(),
        });
    }

    // Finding 7: removing writes collapses activeness.
    {
        let c = ActivenessSeries::from_metrics(cloud).read_only_reduction();
        let e = ActivenessSeries::from_metrics(enterprise).read_only_reduction();
        let (c_hi, e_hi) = (c.map_or(0.0, |(_, hi)| hi), e.map_or(0.0, |(_, hi)| hi));
        verdicts.push(FindingVerdict {
            finding: 7,
            claim: "dropping writes sharply reduces the number of active volumes",
            holds: c_hi > 0.2 && e_hi > 0.2,
            evidence: format!(
                "max interval reduction: cloud {:.1}% / enterprise {:.1}%",
                c_hi * 100.0,
                e_hi * 100.0
            ),
        });
    }

    // Finding 8: random I/O is common; the cloud corpus is more random.
    {
        let c = RandomnessDistribution::from_metrics(cloud);
        let e = RandomnessDistribution::from_metrics(enterprise);
        let (cmax, emax) = (c.max().unwrap_or(0.0), e.max().unwrap_or(0.0));
        verdicts.push(FindingVerdict {
            finding: 8,
            claim: "the cloud corpus sees more random I/O than the enterprise one",
            holds: cmax > emax && c.fraction_above(0.4) > e.fraction_above(0.4),
            evidence: format!(
                "max randomness cloud {:.1}% vs enterprise {:.1}%",
                cmax * 100.0,
                emax * 100.0
            ),
        });
    }

    // Finding 9: traffic aggregates in top blocks; writes more than reads.
    {
        let holds = [cloud, enterprise].iter().all(|metrics| {
            let a = AggregationBoxplots::from_metrics(metrics);
            match (
                AggregationBoxplots::p25(&a.write_top10),
                AggregationBoxplots::p25(&a.read_top10),
            ) {
                (Some(w), Some(r)) => w > 0.1 && w >= r * 0.8,
                _ => false,
            }
        });
        verdicts.push(FindingVerdict {
            finding: 9,
            claim: "top-10% blocks absorb substantial traffic, writes at least as much as reads",
            holds,
            evidence: "p25 of write top-10% share > 10% and >= 0.8x read share".to_owned(),
        });
    }

    // Finding 10: reads/writes aggregate in read-/write-mostly blocks.
    {
        let c = RwMostly::from_metrics(cloud);
        verdicts.push(FindingVerdict {
            finding: 10,
            claim: "cloud reads/writes aggregate in read-mostly/write-mostly blocks",
            holds: c.overall_read_share.unwrap_or(0.0) > 0.4
                && c.overall_write_share.unwrap_or(0.0) > 0.5,
            evidence: format!(
                "cloud reads->RM {:.1}%, writes->WM {:.1}%",
                c.overall_read_share.unwrap_or(0.0) * 100.0,
                c.overall_write_share.unwrap_or(0.0) * 100.0
            ),
        });
    }

    // Finding 11: cloud update coverage is much higher and diverse.
    {
        let c = UpdateCoverage::from_metrics(cloud);
        let e = UpdateCoverage::from_metrics(enterprise);
        let (cm, em) = (c.median().unwrap_or(0.0), e.median().unwrap_or(0.0));
        verdicts.push(FindingVerdict {
            finding: 11,
            claim: "cloud update coverage exceeds the enterprise corpus's",
            holds: cm > em,
            evidence: format!(
                "median coverage cloud {:.1}% vs enterprise {:.1}%",
                cm * 100.0,
                em * 100.0
            ),
        });
    }

    // Finding 12: WAW times are short, RAW times long; WAW >> RAW in cloud.
    {
        let c = AdjacencyTimes::from_metrics(cloud);
        let e = AdjacencyTimes::from_metrics(enterprise);
        let cloud_ok = match (c.median(PairKind::Waw), c.median(PairKind::Raw)) {
            (Some(waw), Some(raw)) => waw <= raw,
            _ => false,
        };
        let ratio_ok = match (c.waw_to_raw_ratio(), e.waw_to_raw_ratio()) {
            (Some(cr), Some(er)) => cr > 2.0 && cr > er,
            _ => false,
        };
        verdicts.push(FindingVerdict {
            finding: 12,
            claim: "rewrites come sooner than read-backs; cloud WAW count dominates RAW",
            holds: cloud_ok && ratio_ok,
            evidence: format!(
                "cloud WAW:RAW {:.2} vs enterprise {:.2}",
                c.waw_to_raw_ratio().unwrap_or(f64::NAN),
                e.waw_to_raw_ratio().unwrap_or(f64::NAN)
            ),
        });
    }

    // Finding 13: WAR time exceeds RAR time.
    {
        let holds = [cloud, enterprise].iter().all(|metrics| {
            let a = AdjacencyTimes::from_metrics(metrics);
            match (a.median(PairKind::War), a.median(PairKind::Rar)) {
                (Some(war), Some(rar)) => war >= rar,
                _ => false,
            }
        });
        let c = AdjacencyTimes::from_metrics(cloud);
        verdicts.push(FindingVerdict {
            finding: 13,
            claim: "a read is re-read sooner than it is overwritten (WAR time > RAR time)",
            holds,
            evidence: format!(
                "cloud RAR median {} vs WAR median {}",
                c.median(PairKind::Rar).unwrap_or(TimeDelta::ZERO),
                c.median(PairKind::War).unwrap_or(TimeDelta::ZERO)
            ),
        });
    }

    // Finding 14: update intervals vary; both very-short and very-long
    // groups carry weight.
    {
        let g = IntervalGroupProportions::from_metrics(cloud);
        let short = g.median(IntervalGroup::Under5Min).unwrap_or(0.0);
        let long = g.median(IntervalGroup::Over240Min).unwrap_or(0.0);
        verdicts.push(FindingVerdict {
            finding: 14,
            claim: "update intervals are bimodal: much mass below 5min and above 240min",
            holds: short > 0.05 && long > 0.05,
            evidence: format!(
                "cloud median shares: <5min {:.1}%, >240min {:.1}%",
                short * 100.0,
                long * 100.0
            ),
        });
    }

    // Finding 15: growing the cache 1%→10% of WSS cuts miss ratios,
    // more in the cloud corpus.
    {
        let c = LruMissRatios::from_metrics(cloud, config);
        let e = LruMissRatios::from_metrics(enterprise, config);
        let (cr, er) = (
            c.mean_read_reduction().unwrap_or(0.0),
            e.mean_read_reduction().unwrap_or(0.0),
        );
        verdicts.push(FindingVerdict {
            finding: 15,
            claim: "a 10x larger cache cuts miss ratios; more so for the cloud corpus",
            holds: cr > 0.0 && cr >= er * 0.8,
            evidence: format!(
                "mean read-miss reduction: cloud {:.1} pts vs enterprise {:.1} pts",
                cr * 100.0,
                er * 100.0
            ),
        });
    }

    verdicts
}

/// Number of findings that hold.
pub fn holds_count(verdicts: &[FindingVerdict]) -> usize {
    verdicts.iter().filter(|v| v.holds).count()
}

fn max_days(metrics: &[VolumeMetrics]) -> u64 {
    metrics
        .iter()
        .flat_map(|m| m.active_days.last().copied())
        .max()
        .map_or(0, |d| u64::from(d) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn evaluates_all_fifteen_findings() {
        let (_, metrics) = fixture();
        let config = AnalysisConfig::default();
        let verdicts = evaluate_pair(&metrics, &metrics, &config);
        assert_eq!(verdicts.len(), 15);
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(v.finding as usize, i + 1);
            assert!(!v.claim.is_empty());
            assert!(!v.evidence.is_empty());
        }
        assert!(holds_count(&verdicts) <= 15);
    }

    #[test]
    fn self_comparison_fails_asymmetric_claims() {
        // comparing a corpus against itself cannot satisfy the strictly
        // comparative findings (3, 8, 11 require cloud > enterprise)
        let (_, metrics) = fixture();
        let config = AnalysisConfig::default();
        let verdicts = evaluate_pair(&metrics, &metrics, &config);
        assert!(!verdicts[2].holds, "finding 3 is strict");
        assert!(!verdicts[7].holds, "finding 8 is strict");
        assert!(!verdicts[10].holds, "finding 11 is strict");
    }

    #[test]
    fn display_formats_verdict() {
        let v = FindingVerdict {
            finding: 8,
            claim: "more random",
            holds: true,
            evidence: "42% vs 13%".to_owned(),
        };
        let text = v.to_string();
        assert!(text.contains("Finding  8"));
        assert!(text.contains("HOLDS"));
        assert!(text.contains("more random"));
        let v = FindingVerdict { holds: false, ..v };
        assert!(v.to_string().contains("DIVERGES"));
    }

    #[test]
    fn empty_corpora_produce_verdicts_without_panicking() {
        let verdicts = evaluate_pair(&[], &[], &AnalysisConfig::default());
        assert_eq!(verdicts.len(), 15);
        assert!(holds_count(&verdicts) < 15);
    }
}
