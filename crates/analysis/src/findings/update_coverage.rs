//! Finding 11 (F11) — update coverage (Table IV, Fig. 13).

use cbs_stats::{Cdf, Quantiles};

use crate::metrics::VolumeMetrics;

/// Table IV + Fig. 13 — per-volume update coverage (update WSS over
/// total WSS).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateCoverage {
    /// CDF of per-volume coverage values in `[0, 1]`.
    pub cdf: Cdf,
}

impl UpdateCoverage {
    /// Builds the distribution.
    pub fn from_metrics(metrics: &[VolumeMetrics]) -> Self {
        UpdateCoverage {
            cdf: metrics.iter().map(VolumeMetrics::update_coverage).collect(),
        }
    }

    /// Mean coverage (paper: 76.6 % AliCloud, 36.2 % MSRC).
    pub fn mean(&self) -> Option<f64> {
        let q = self.cdf.quantiles();
        if q.is_empty() {
            return None;
        }
        Some(q.as_sorted().iter().sum::<f64>() / q.len() as f64)
    }

    /// Median coverage (paper: 61.2 % / 9.4 %).
    pub fn median(&self) -> Option<f64> {
        self.cdf.value_at(0.5)
    }

    /// 90th-percentile coverage (paper: 92.1 % / 63.0 %).
    pub fn p90(&self) -> Option<f64> {
        self.cdf.value_at(0.9)
    }

    /// Fraction of volumes with coverage above `x`
    /// (paper: 45.2 % of AliCloud volumes above 0.65).
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.cdf.fraction_at_or_below(x)
    }

    /// All three Table IV statistics at once.
    pub fn table_row(&self) -> Option<(f64, f64, f64)> {
        Some((self.mean()?, self.median()?, self.p90()?))
    }
}

impl From<&[VolumeMetrics]> for UpdateCoverage {
    fn from(metrics: &[VolumeMetrics]) -> Self {
        Self::from_metrics(metrics)
    }
}

/// Convenience: exact quantiles of coverage values.
pub fn coverage_quantiles(metrics: &[VolumeMetrics]) -> Quantiles {
    metrics.iter().map(VolumeMetrics::update_coverage).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::testutil::fixture;

    #[test]
    fn coverage_statistics() {
        let (_, metrics) = fixture();
        let c = UpdateCoverage::from_metrics(&metrics);
        let (mean, median, p90) = c.table_row().unwrap();
        assert!((0.0..=1.0).contains(&mean));
        assert!(median <= p90 + 1e-12);
        // vol 0 overwrites block 0 sixty times over a 3-block WSS
        let v0 = &metrics[0];
        assert!((v0.update_coverage() - 1.0 / 3.0).abs() < 1e-12);
        // vols 1 and 2 never overwrite
        assert_eq!(metrics[1].update_coverage(), 0.0);
        assert_eq!(metrics[2].update_coverage(), 0.0);
        assert!((c.fraction_above(0.1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_agree_with_cdf() {
        let (_, metrics) = fixture();
        let q = coverage_quantiles(&metrics);
        let c = UpdateCoverage::from_metrics(&metrics);
        assert_eq!(q.median(), c.median());
    }

    #[test]
    fn empty_metrics() {
        let c = UpdateCoverage::from_metrics(&[]);
        assert_eq!(c.mean(), None);
        assert_eq!(c.table_row(), None);
        assert_eq!(c.fraction_above(0.5), 1.0 - 0.0); // vacuous CDF
    }
}
