//! Time-evolving characterization: [`WindowedAnalysis`].
//!
//! The paper's metrics are mostly trace-global; operators additionally
//! want to see how a workload *evolves* — does the working set grow
//! without bound (one-shot writes) or plateau (a circular log)? Does
//! the write share drift? This module slices a volume's stream into
//! fixed windows and reports per-window counters plus the cumulative
//! working-set growth curve, the raw material for cache *re*-sizing
//! decisions that a single global WSS hides.

use std::collections::HashSet;

use cbs_trace::{IoRequest, TimeDelta, Timestamp, VolumeView};

use crate::config::AnalysisConfig;

/// Counters for one time window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Read requests in the window.
    pub reads: u64,
    /// Write requests in the window.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Distinct blocks touched within this window alone.
    pub window_wss_blocks: u64,
    /// Distinct blocks touched since the start of the trace (cumulative
    /// WSS at the window's end).
    pub cumulative_wss_blocks: u64,
    /// Blocks touched in this window that were never touched before
    /// (the window's contribution to WSS growth).
    pub new_blocks: u64,
}

impl WindowStats {
    /// Total requests in the window.
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Per-window statistics for one volume.
///
/// MERGEABLE: analyses with the same window length and epoch form a
/// commutative monoid under [`merge`](WindowedAnalysis::merge):
/// windows are time-aligned, so counters add element-wise and the
/// shorter side's missing windows contribute zeros carrying its final
/// cumulative WSS (an empty analysis is the identity). For partitions
/// covering **disjoint block ranges** of one volume the merge is an
/// exact homomorphism — every per-window counter, WSS and new-block
/// count of the merged analysis equals the sequential whole-volume
/// analysis. Time-split partitions instead double-count blocks alive
/// on both sides of the cut.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedAnalysis {
    window: TimeDelta,
    windows: Vec<WindowStats>,
}

impl WindowedAnalysis {
    /// Slices `view` into windows of length `window`, anchored at
    /// `epoch`, and accumulates per-window statistics.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn analyze(
        view: VolumeView<'_>,
        epoch: Timestamp,
        window: TimeDelta,
        config: &AnalysisConfig,
    ) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        let mut windows: Vec<WindowStats> = Vec::new();
        let mut ever_seen: HashSet<u64> = HashSet::new();
        let mut in_window: HashSet<u64> = HashSet::new();
        let mut current: Option<(u64, WindowStats)> = None;

        let flush = |current: &mut Option<(u64, WindowStats)>,
                     in_window: &mut HashSet<u64>,
                     windows: &mut Vec<WindowStats>,
                     ever: &HashSet<u64>| {
            if let Some((idx, mut stats)) = current.take() {
                stats.window_wss_blocks = in_window.len() as u64;
                stats.cumulative_wss_blocks = ever.len() as u64;
                // pad empty windows so indices stay aligned to time
                while windows.len() < idx as usize {
                    let empty = WindowStats {
                        cumulative_wss_blocks: windows
                            .last()
                            .map_or(0, |w: &WindowStats| w.cumulative_wss_blocks),
                        ..WindowStats::default()
                    };
                    windows.push(empty);
                }
                windows.push(stats);
                in_window.clear();
            }
        };

        for req in view.requests() {
            let rel = req.ts().saturating_duration_since(epoch);
            let idx = rel.as_micros() / window.as_micros();
            match &mut current {
                Some((current_idx, stats)) if *current_idx == idx => {
                    Self::record(stats, req, config, &mut ever_seen, &mut in_window);
                }
                _ => {
                    flush(&mut current, &mut in_window, &mut windows, &ever_seen);
                    let mut stats = WindowStats::default();
                    Self::record(&mut stats, req, config, &mut ever_seen, &mut in_window);
                    current = Some((idx, stats));
                }
            }
        }
        flush(&mut current, &mut in_window, &mut windows, &ever_seen);
        WindowedAnalysis { window, windows }
    }

    fn record(
        stats: &mut WindowStats,
        req: &IoRequest,
        config: &AnalysisConfig,
        ever: &mut HashSet<u64>,
        in_window: &mut HashSet<u64>,
    ) {
        if req.is_read() {
            stats.reads += 1;
            stats.read_bytes += u64::from(req.len());
        } else {
            stats.writes += 1;
            stats.write_bytes += u64::from(req.len());
        }
        for block in config.block_size.span_of(req) {
            if ever.insert(block.get()) {
                stats.new_blocks += 1;
            }
            in_window.insert(block.get());
        }
    }

    /// Folds another partition's windowed analysis into `self` (see
    /// the type docs for the alignment and exactness rules).
    ///
    /// # Panics
    ///
    /// Panics if the window lengths differ.
    pub fn merge(&mut self, other: &WindowedAnalysis) {
        assert_eq!(
            self.window, other.window,
            "merge requires equal window lengths"
        );
        // A side's windows end at its last active one; past that its
        // working set stops growing, so missing windows behave as
        // zero-count windows carrying the side's final cumulative WSS.
        let self_tail = self.windows.last().map_or(0, |w| w.cumulative_wss_blocks);
        let other_tail = other.windows.last().map_or(0, |w| w.cumulative_wss_blocks);
        if self.windows.len() < other.windows.len() {
            self.windows.resize(
                other.windows.len(),
                WindowStats {
                    cumulative_wss_blocks: self_tail,
                    ..WindowStats::default()
                },
            );
        }
        for (i, mine) in self.windows.iter_mut().enumerate() {
            let theirs = other.windows.get(i).copied().unwrap_or(WindowStats {
                cumulative_wss_blocks: other_tail,
                ..WindowStats::default()
            });
            mine.reads += theirs.reads;
            mine.writes += theirs.writes;
            mine.read_bytes += theirs.read_bytes;
            mine.write_bytes += theirs.write_bytes;
            mine.window_wss_blocks += theirs.window_wss_blocks;
            mine.cumulative_wss_blocks += theirs.cumulative_wss_blocks;
            mine.new_blocks += theirs.new_blocks;
        }
    }

    /// The window length.
    pub fn window(&self) -> TimeDelta {
        self.window
    }

    /// Per-window statistics, index = window number since the epoch
    /// (gaps appear as zero windows carrying the running WSS).
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// The cumulative WSS growth curve (one point per window).
    pub fn wss_growth(&self) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| w.cumulative_wss_blocks)
            .collect()
    }

    /// Index of the window after which WSS growth slowed below
    /// `fraction` of the average growth — `None` if growth never
    /// plateaus. A plateau signals a bounded (cacheable) working set.
    pub fn plateau_window(&self, fraction: f64) -> Option<usize> {
        // Guard the zero-window case explicitly (not just via
        // `total == 0`): the average below divides by the window count,
        // and an empty analysis has no plateau by definition.
        if self.windows.len() < 2 {
            return None;
        }
        let total: u64 = self.windows.iter().map(|w| w.new_blocks).sum();
        if total == 0 {
            return None;
        }
        let avg = total as f64 / self.windows.len() as f64;
        let threshold = avg * fraction;
        // the first window from which every later window grows slowly
        let mut candidate = None;
        for (i, w) in self.windows.iter().enumerate() {
            if (w.new_blocks as f64) <= threshold {
                candidate.get_or_insert(i);
            } else {
                candidate = None;
            }
        }
        candidate.filter(|&i| i > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_trace::{OpKind, Trace, VolumeId};

    fn req(op: OpKind, block: u64, secs: u64) -> IoRequest {
        IoRequest::new(
            VolumeId::new(0),
            op,
            block * 4096,
            4096,
            Timestamp::from_secs(secs),
        )
    }

    fn analyze(reqs: Vec<IoRequest>, window_secs: u64) -> WindowedAnalysis {
        let trace = Trace::from_requests(reqs);
        let view = trace
            .volume(VolumeId::new(0))
            .unwrap_or_else(|| cbs_trace::VolumeView::new(VolumeId::new(0), &[]));
        WindowedAnalysis::analyze(
            view,
            Timestamp::ZERO,
            TimeDelta::from_secs(window_secs),
            &AnalysisConfig::default(),
        )
    }

    #[test]
    fn windows_partition_time() {
        let a = analyze(
            vec![
                req(OpKind::Write, 0, 0),
                req(OpKind::Write, 1, 5),
                req(OpKind::Read, 0, 10),
                req(OpKind::Write, 2, 25),
            ],
            10,
        );
        assert_eq!(a.windows().len(), 3);
        let w0 = a.windows()[0];
        assert_eq!(w0.writes, 2);
        assert_eq!(w0.reads, 0);
        assert_eq!(w0.window_wss_blocks, 2);
        assert_eq!(w0.new_blocks, 2);
        let w1 = a.windows()[1];
        assert_eq!(w1.reads, 1);
        assert_eq!(w1.new_blocks, 0, "block 0 already seen");
        assert_eq!(w1.cumulative_wss_blocks, 2);
        let w2 = a.windows()[2];
        assert_eq!(w2.cumulative_wss_blocks, 3);
        assert_eq!(w2.requests(), 1);
    }

    #[test]
    fn gaps_become_zero_windows_with_carried_wss() {
        let a = analyze(
            vec![req(OpKind::Write, 0, 0), req(OpKind::Write, 1, 35)],
            10,
        );
        assert_eq!(a.windows().len(), 4);
        assert_eq!(a.windows()[1].requests(), 0);
        assert_eq!(a.windows()[1].cumulative_wss_blocks, 1);
        assert_eq!(a.windows()[2].requests(), 0);
        assert_eq!(a.wss_growth(), vec![1, 1, 1, 2]);
    }

    #[test]
    fn zero_windows_have_no_plateau() {
        // An empty trace produces zero windows; `plateau_window` must
        // return a defined value (`None`) rather than dividing by the
        // window count.
        let a = analyze(vec![], 10);
        assert!(a.windows().is_empty());
        assert_eq!(a.plateau_window(0.5), None);
        // A single window can't plateau either (the plateau must start
        // strictly after window 0).
        let a = analyze(vec![req(OpKind::Write, 0, 0)], 10);
        assert_eq!(a.windows().len(), 1);
        assert_eq!(a.plateau_window(0.5), None);
    }

    #[test]
    fn circular_log_plateaus() {
        // writes cycle over 10 blocks for 100 windows
        let reqs: Vec<_> = (0..1000).map(|i| req(OpKind::Write, i % 10, i)).collect();
        let a = analyze(reqs, 10);
        let plateau = a.plateau_window(0.5).expect("bounded working set");
        assert!(plateau <= 2, "plateau at window {plateau}");
        let growth = a.wss_growth();
        assert_eq!(*growth.last().unwrap(), 10);
    }

    #[test]
    fn one_shot_writer_never_plateaus() {
        // every request touches a fresh block
        let reqs: Vec<_> = (0..200).map(|i| req(OpKind::Write, i, i)).collect();
        let a = analyze(reqs, 10);
        assert_eq!(a.plateau_window(0.5), None);
        let growth = a.wss_growth();
        assert!(growth.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "window must be non-zero")]
    fn rejects_zero_window() {
        let trace = Trace::from_requests(vec![req(OpKind::Read, 0, 0)]);
        let view = trace.volume(VolumeId::new(0)).unwrap();
        let _ = WindowedAnalysis::analyze(
            view,
            Timestamp::ZERO,
            TimeDelta::ZERO,
            &AnalysisConfig::default(),
        );
    }

    #[test]
    fn empty_volume_yields_no_windows() {
        let a = analyze(vec![], 10);
        assert!(a.windows().is_empty());
        assert!(a.wss_growth().is_empty());
        assert_eq!(a.plateau_window(0.5), None);
        assert_eq!(a.window(), TimeDelta::from_secs(10));
    }
}
