//! Per-volume design recommendations — Section V of the paper turned
//! into code.
//!
//! The paper closes by mapping its findings onto three design
//! considerations: load balancing (place bursty volumes apart), cache
//! efficiency (spend cache on volumes whose miss-ratio curves respond),
//! and storage cluster management (shield flash from random small
//! writes, plan garbage collection around update-heavy volumes). This
//! module classifies each analyzed volume against those criteria so an
//! operator — or the `volume_triage` example — can act per volume.

use core::fmt;

use cbs_trace::VolumeId;

use crate::config::AnalysisConfig;
use crate::metrics::VolumeMetrics;

/// Classification thresholds, defaulting to values motivated by the
/// paper's findings.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Burstiness ratio above which placement must treat the volume as
    /// spiky (Findings 2-3; the paper calls out ratios above 100).
    pub bursty_ratio: f64,
    /// LRU miss ratio at a 10 %-of-WSS cache *below* which the volume
    /// is considered cache-friendly (Finding 15).
    pub cache_friendly_miss: f64,
    /// Fraction of active time spent read-active *below* which write
    /// offloading would idle the volume (Findings 5-7).
    pub offload_read_active: f64,
    /// Randomness ratio above which the volume stresses flash
    /// (Finding 8).
    pub flash_hostile_randomness: f64,
    /// Update coverage above which garbage collection pressure is
    /// significant (Findings 11, 14).
    pub update_heavy_coverage: f64,
    /// Active-day count at or below which the volume counts as
    /// short-lived (Fig. 3's one-day volumes).
    pub short_lived_days: usize,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            bursty_ratio: 100.0,
            cache_friendly_miss: 0.4,
            offload_read_active: 0.25,
            flash_hostile_randomness: 0.5,
            update_heavy_coverage: 0.65,
            short_lived_days: 1,
        }
    }
}

/// One actionable trait of a volume.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VolumeTrait {
    /// Writes outnumber reads (most cloud volumes; informs log-
    /// structured placement).
    WriteDominant,
    /// Peak-to-average intensity is extreme: spread such volumes across
    /// nodes (load balancing, Findings 2-3).
    Bursty {
        /// The measured burstiness ratio.
        ratio: f64,
    },
    /// A modest write cache absorbs most write traffic (Finding 15).
    CacheFriendlyWrites {
        /// LRU write miss ratio at a 10 %-of-WSS cache.
        miss_at_10pct: f64,
    },
    /// A modest read cache absorbs most read traffic.
    CacheFriendlyReads {
        /// LRU read miss ratio at a 10 %-of-WSS cache.
        miss_at_10pct: f64,
    },
    /// Nearly read-idle: redirecting writes would create long idle
    /// periods (write off-loading, Findings 5-7).
    OffloadCandidate {
        /// Read-active share of the volume's active time.
        read_active_fraction: f64,
    },
    /// Random small I/O stresses flash endurance (Finding 8): a
    /// log-structured layer or I/O clustering is advised.
    FlashHostile {
        /// The volume's randomness ratio.
        randomness: f64,
    },
    /// Most of the working set is overwritten: plan garbage-collection
    /// headroom (Findings 11, 14).
    UpdateHeavy {
        /// The volume's update coverage.
        coverage: f64,
    },
    /// Active only briefly — a batch-job volume whose capacity can be
    /// reclaimed quickly.
    ShortLived {
        /// Days with at least one request.
        active_days: usize,
    },
}

impl fmt::Display for VolumeTrait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VolumeTrait::WriteDominant => write!(f, "write-dominant"),
            VolumeTrait::Bursty { ratio } => write!(f, "bursty (ratio {ratio:.0})"),
            VolumeTrait::CacheFriendlyWrites { miss_at_10pct } => {
                write!(
                    f,
                    "cache-friendly writes ({:.0}% miss @10% WSS)",
                    miss_at_10pct * 100.0
                )
            }
            VolumeTrait::CacheFriendlyReads { miss_at_10pct } => {
                write!(
                    f,
                    "cache-friendly reads ({:.0}% miss @10% WSS)",
                    miss_at_10pct * 100.0
                )
            }
            VolumeTrait::OffloadCandidate {
                read_active_fraction,
            } => {
                write!(
                    f,
                    "offload candidate ({:.0}% read-active)",
                    read_active_fraction * 100.0
                )
            }
            VolumeTrait::FlashHostile { randomness } => {
                write!(f, "flash-hostile ({:.0}% random)", randomness * 100.0)
            }
            VolumeTrait::UpdateHeavy { coverage } => {
                write!(f, "update-heavy ({:.0}% coverage)", coverage * 100.0)
            }
            VolumeTrait::ShortLived { active_days } => {
                write!(f, "short-lived ({active_days} active days)")
            }
        }
    }
}

/// The full assessment of one volume.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeAssessment {
    /// The volume.
    pub id: VolumeId,
    /// Every trait that applies, in declaration order.
    pub traits: Vec<VolumeTrait>,
}

impl VolumeAssessment {
    /// Returns `true` if any trait of the given discriminant applies.
    pub fn has(&self, probe: fn(&VolumeTrait) -> bool) -> bool {
        self.traits.iter().any(probe)
    }
}

impl fmt::Display for VolumeAssessment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.id)?;
        if self.traits.is_empty() {
            return write!(f, " unremarkable");
        }
        for (i, t) in self.traits.iter().enumerate() {
            write!(f, "{} {t}", if i == 0 { "" } else { "," })?;
        }
        Ok(())
    }
}

/// Assesses one volume against the thresholds.
pub fn assess(
    m: &VolumeMetrics,
    config: &AnalysisConfig,
    thresholds: &Thresholds,
) -> VolumeAssessment {
    let mut traits = Vec::new();
    if m.is_write_dominant() {
        traits.push(VolumeTrait::WriteDominant);
    }
    let ratio = m.burstiness_ratio(config);
    if ratio > thresholds.bursty_ratio {
        traits.push(VolumeTrait::Bursty { ratio });
    }
    if let Some(miss) = m.write_miss_ratio(0.10) {
        if miss < thresholds.cache_friendly_miss {
            traits.push(VolumeTrait::CacheFriendlyWrites {
                miss_at_10pct: miss,
            });
        }
    }
    if let Some(miss) = m.read_miss_ratio(0.10) {
        if miss < thresholds.cache_friendly_miss {
            traits.push(VolumeTrait::CacheFriendlyReads {
                miss_at_10pct: miss,
            });
        }
    }
    let active = m.active_period(config).as_secs_f64();
    if active > 0.0 {
        let read_active_fraction = m.read_active_period(config).as_secs_f64() / active;
        if read_active_fraction < thresholds.offload_read_active {
            traits.push(VolumeTrait::OffloadCandidate {
                read_active_fraction,
            });
        }
    }
    let randomness = m.randomness_ratio();
    if randomness > thresholds.flash_hostile_randomness {
        traits.push(VolumeTrait::FlashHostile { randomness });
    }
    let coverage = m.update_coverage();
    if coverage > thresholds.update_heavy_coverage {
        traits.push(VolumeTrait::UpdateHeavy { coverage });
    }
    if m.active_days.len() <= thresholds.short_lived_days {
        traits.push(VolumeTrait::ShortLived {
            active_days: m.active_days.len(),
        });
    }
    VolumeAssessment { id: m.id, traits }
}

/// Assesses every volume with default thresholds.
pub fn assess_all(metrics: &[VolumeMetrics], config: &AnalysisConfig) -> Vec<VolumeAssessment> {
    let thresholds = Thresholds::default();
    metrics
        .iter()
        .map(|m| assess(m, config, &thresholds))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_trace;
    use cbs_trace::{IoRequest, OpKind, Timestamp, Trace};

    fn assess_trace(reqs: Vec<IoRequest>) -> VolumeAssessment {
        let trace = Trace::from_requests(reqs);
        let config = AnalysisConfig::default();
        let metrics = analyze_trace(&trace, &config).expect("valid config");
        assess(&metrics[0], &config, &Thresholds::default())
    }

    fn w(offset: u64, secs: u64) -> IoRequest {
        IoRequest::new(
            VolumeId::new(0),
            OpKind::Write,
            offset,
            4096,
            Timestamp::from_secs(secs),
        )
    }

    #[test]
    fn hot_writer_is_write_dominant_update_heavy_offloadable() {
        // same block rewritten once a minute for two days
        let reqs: Vec<_> = (0..2880).map(|i| w(0, i * 60)).collect();
        let a = assess_trace(reqs);
        assert!(a.has(|t| matches!(t, VolumeTrait::WriteDominant)), "{a}");
        assert!(
            a.has(|t| matches!(t, VolumeTrait::UpdateHeavy { .. })),
            "{a}"
        );
        assert!(
            a.has(|t| matches!(t, VolumeTrait::OffloadCandidate { .. })),
            "{a}"
        );
        assert!(
            a.has(|t| matches!(t, VolumeTrait::CacheFriendlyWrites { .. })),
            "{a}"
        );
        assert!(
            !a.has(|t| matches!(t, VolumeTrait::ShortLived { .. })),
            "{a}"
        );
    }

    #[test]
    fn single_burst_volume_is_short_lived_and_bursty() {
        // one 1000-request burst in a ms, then one straggler 2 hours on
        let mut reqs: Vec<_> = (0u32..1000)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new(0),
                    OpKind::Write,
                    u64::from(i) * (1 << 24), // far apart: random
                    4096,
                    Timestamp::from_micros(u64::from(i)),
                )
            })
            .collect();
        reqs.push(w(0, 7200));
        let a = assess_trace(reqs);
        assert!(a.has(|t| matches!(t, VolumeTrait::Bursty { .. })), "{a}");
        assert!(
            a.has(|t| matches!(t, VolumeTrait::ShortLived { active_days: 1 })),
            "{a}"
        );
        assert!(
            a.has(|t| matches!(t, VolumeTrait::FlashHostile { .. })),
            "{a}"
        );
    }

    #[test]
    fn sequential_reader_is_unremarkable() {
        let reqs: Vec<_> = (0..2880u64)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new(0),
                    OpKind::Read,
                    i * 4096,
                    4096,
                    Timestamp::from_secs(i * 60),
                )
            })
            .collect();
        let a = assess_trace(reqs);
        assert!(!a.has(|t| matches!(t, VolumeTrait::WriteDominant)), "{a}");
        assert!(
            !a.has(|t| matches!(t, VolumeTrait::FlashHostile { .. })),
            "{a}"
        );
        assert!(
            !a.has(|t| matches!(t, VolumeTrait::UpdateHeavy { .. })),
            "{a}"
        );
        // reads-only volume has zero write-active time → not offloadable
        // by the read-active criterion (it is always read-active)
        assert!(
            !a.has(|t| matches!(t, VolumeTrait::OffloadCandidate { .. })),
            "{a}"
        );
    }

    #[test]
    fn display_renders_traits() {
        let a = VolumeAssessment {
            id: VolumeId::new(3),
            traits: vec![
                VolumeTrait::WriteDominant,
                VolumeTrait::Bursty { ratio: 512.0 },
                VolumeTrait::UpdateHeavy { coverage: 0.8 },
            ],
        };
        let text = a.to_string();
        assert!(text.contains("vol-3"));
        assert!(text.contains("write-dominant"));
        assert!(text.contains("bursty (ratio 512)"));
        assert!(text.contains("update-heavy (80% coverage)"));
        let empty = VolumeAssessment {
            id: VolumeId::new(4),
            traits: vec![],
        };
        assert!(empty.to_string().contains("unremarkable"));
    }

    #[test]
    fn assess_all_covers_every_volume() {
        let trace = Trace::from_requests(vec![
            w(0, 1),
            IoRequest::new(
                VolumeId::new(5),
                OpKind::Read,
                0,
                512,
                Timestamp::from_secs(2),
            ),
        ]);
        let config = AnalysisConfig::default();
        let metrics = analyze_trace(&trace, &config).expect("valid config");
        let all = assess_all(&metrics, &config);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].id, VolumeId::new(0));
        assert_eq!(all[1].id, VolumeId::new(5));
    }
}
