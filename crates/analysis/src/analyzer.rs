//! The single-pass per-volume analyzer: [`VolumeAnalyzer`] and
//! [`analyze_trace`].

use std::mem;
use std::ops::Range;

use cbs_cache::ReuseStack;
use cbs_stats::LogHistogram;
use cbs_trace::hash::FxHashMap;
use cbs_trace::{IoRequest, OpKind, RequestBatch, Timestamp, Trace, VolumeId, VolumeView};

use crate::config::{AnalysisConfig, InvalidConfig};
use crate::metrics::{merge_sorted_unique, VolumeMetrics};
use crate::simd;

/// Per-block running state shared by the spatial and temporal metrics.
///
/// The block's reuse-stack position lives here too, so one probe per
/// block touch serves both the block-state update and the reuse
/// distance (they used to be two separate maps). Kept at 48 bytes so a
/// 16-block [`BlockChunk`] stays compact.
#[derive(Debug, Clone, Copy)]
struct BlockState {
    read_bytes: u64,
    write_bytes: u64,
    last_ts: Timestamp,
    /// Timestamp of the previous write; only meaningful when
    /// `write_count > 0` (update intervals).
    last_write_ts: Timestamp,
    write_count: u32,
    /// Position of this block's latest access in the reuse stack.
    reuse_pos: u32,
    last_op: OpKind,
}

impl BlockState {
    const EMPTY: BlockState = BlockState {
        read_bytes: 0,
        write_bytes: 0,
        last_ts: Timestamp::ZERO,
        last_write_ts: Timestamp::ZERO,
        write_count: 0,
        reuse_pos: 0,
        last_op: OpKind::Read,
    };
}

/// Number of consecutive blocks per [`BlockChunk`].
const CHUNK_BLOCKS: u64 = 16;

/// Block states for 16 consecutive block ids.
///
/// Requests touch *runs* of consecutive blocks, so storing states in
/// aligned 16-block chunks turns ~6 random hash probes per request
/// (one per block) into ~1 chunk lookup plus direct slot indexing —
/// the dominant cache-miss saving in the touch loop.
#[derive(Debug, Clone)]
struct BlockChunk {
    /// Bit `i` set iff slot `i` holds a live block state.
    occupied: u16,
    states: [BlockState; CHUNK_BLOCKS as usize],
}

impl BlockChunk {
    const EMPTY: BlockChunk = BlockChunk {
        occupied: 0,
        states: [BlockState::EMPTY; CHUNK_BLOCKS as usize],
    };
}

/// Streaming analyzer for one volume.
///
/// Feed time-sorted requests via [`observe`](VolumeAnalyzer::observe)
/// (or run a whole [`VolumeView`] with
/// [`analyze_volume`](VolumeAnalyzer::analyze_volume)), then call
/// [`finish`](VolumeAnalyzer::finish).
///
/// MERGEABLE: analyzers over the same volume/epoch/config form a
/// commutative monoid under [`merge`](VolumeAnalyzer::merge) with
/// **partition-scoped** semantics — counters, histograms and per-block
/// state fold exactly; state the per-partition streams never observed
/// together (cross-partition reuse distances, boundary inter-arrivals,
/// a peak straddling the cut, the randomness window) stays local to
/// each partition. A fresh analyzer is the identity. Merge is the
/// terminal fold: call it after all observes, then
/// [`finish`](VolumeAnalyzer::finish).
///
/// # Panics
///
/// `observe` panics in debug builds if requests arrive out of timestamp
/// order, target a different volume, or follow a
/// [`merge`](VolumeAnalyzer::merge).
#[derive(Debug)]
pub struct VolumeAnalyzer {
    config: AnalysisConfig,
    epoch: Timestamp,
    id: VolumeId,

    reads: u64,
    writes: u64,
    read_bytes: u64,
    write_bytes: u64,
    updated_bytes: u64,
    first_ts: Option<Timestamp>,
    last_ts: Option<Timestamp>,

    read_size_hist: LogHistogram,
    write_size_hist: LogHistogram,
    interarrival_hist: LogHistogram,

    /// Current peak-interval index and its running count.
    peak_bin: u64,
    peak_bin_count: u64,
    peak_max: u64,
    /// Exclusive end of the current peak bin in relative micros, so the
    /// per-record division is only paid at bin transitions (`rel` is
    /// non-decreasing). Starts at 0 to force the first recompute.
    peak_bin_end: u64,

    active_intervals: Vec<u32>,
    read_active_intervals: Vec<u32>,
    write_active_intervals: Vec<u32>,
    active_days: Vec<u32>,
    /// Cached activeness interval/day indices with their exclusive bin
    /// ends in relative micros (same transition trick as `peak_bin_end`).
    cur_interval: u32,
    active_bin_end: u64,
    cur_day: u32,
    day_bin_end: u64,

    /// Ring buffer of the previous `randomness_window` request offsets.
    offset_window: Vec<u64>,
    offset_cursor: usize,
    random_requests: u64,

    /// Chunk id (block id / 16) → index into `chunks`.
    chunk_index: FxHashMap<u64, u32>,
    chunks: Vec<BlockChunk>,
    distinct_blocks: u64,

    raw_hist: LogHistogram,
    waw_hist: LogHistogram,
    rar_hist: LogHistogram,
    war_hist: LogHistogram,
    update_interval_hist: LogHistogram,

    reuse_stack: ReuseStack,
    /// Finite reuse-distance histograms split by op kind, plus cold
    /// counts — everything needed for per-op LRU miss-ratio curves.
    read_distance_hist: Vec<u64>,
    write_distance_hist: Vec<u64>,
    read_cold: u64,
    write_cold: u64,

    /// Scratch buffers reused across batched calls (write-mask words,
    /// inter-arrival deltas, and the per-span block bookkeeping feeding
    /// [`ReuseStack::touch_batch`]).
    scratch_mask: Vec<u64>,
    scratch_deltas: Vec<u64>,
    span_prevs: Vec<usize>,
    span_slots: Vec<(u32, u8, u32)>,
    span_dists: Vec<u64>,

    /// Set once another partition has been folded in: reuse-stack
    /// positions of merged-in blocks are partition-local, so further
    /// observes would compute garbage distances. `merge` is terminal.
    merged: bool,
}

impl VolumeAnalyzer {
    /// Creates an analyzer for `id`. `epoch` anchors interval and day
    /// indices (pass the corpus start so indices are comparable across
    /// volumes).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if `config` fails
    /// [`AnalysisConfig::validate`].
    pub fn new(
        id: VolumeId,
        epoch: Timestamp,
        config: AnalysisConfig,
    ) -> Result<Self, InvalidConfig> {
        config.validate()?;
        let bits = config.hist_precision_bits;
        let hist = || LogHistogram::new(bits);
        Ok(VolumeAnalyzer {
            offset_window: Vec::with_capacity(config.randomness_window),
            config,
            epoch,
            id,
            reads: 0,
            writes: 0,
            read_bytes: 0,
            write_bytes: 0,
            updated_bytes: 0,
            first_ts: None,
            last_ts: None,
            read_size_hist: hist(),
            write_size_hist: hist(),
            interarrival_hist: hist(),
            peak_bin: 0,
            peak_bin_count: 0,
            peak_max: 0,
            peak_bin_end: 0,
            active_intervals: Vec::new(),
            read_active_intervals: Vec::new(),
            write_active_intervals: Vec::new(),
            active_days: Vec::new(),
            cur_interval: 0,
            active_bin_end: 0,
            cur_day: 0,
            day_bin_end: 0,
            offset_cursor: 0,
            random_requests: 0,
            chunk_index: FxHashMap::default(),
            chunks: Vec::new(),
            distinct_blocks: 0,
            raw_hist: hist(),
            waw_hist: hist(),
            rar_hist: hist(),
            war_hist: hist(),
            update_interval_hist: hist(),
            reuse_stack: ReuseStack::new(),
            read_distance_hist: Vec::new(),
            write_distance_hist: Vec::new(),
            read_cold: 0,
            write_cold: 0,
            scratch_mask: Vec::new(),
            scratch_deltas: Vec::new(),
            span_prevs: Vec::new(),
            span_slots: Vec::new(),
            span_dists: Vec::new(),
            merged: false,
        })
    }

    /// Runs a whole volume view through a fresh analyzer.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if `config` fails validation.
    pub fn analyze_volume(
        view: VolumeView<'_>,
        epoch: Timestamp,
        config: &AnalysisConfig,
    ) -> Result<VolumeMetrics, InvalidConfig> {
        let mut analyzer = VolumeAnalyzer::new(view.id(), epoch, config.clone())?;
        for req in view.requests() {
            analyzer.observe(req);
        }
        Ok(analyzer.finish())
    }

    /// Processes one request.
    pub fn observe(&mut self, req: &IoRequest) {
        debug_assert!(!self.merged, "observe after merge is unsupported");
        debug_assert_eq!(req.volume(), self.id, "request targets another volume");
        debug_assert!(
            self.last_ts.map_or(true, |t| req.ts() >= t),
            "requests must arrive in timestamp order"
        );
        let (op, offset, len, ts) = (req.op(), req.offset(), req.len(), req.ts());
        let rel = ts.saturating_duration_since(self.epoch).as_micros();
        self.note_count(op, len);
        self.note_time(ts);
        self.note_peak(rel);
        self.note_active(rel, op);
        self.note_random(offset);
        self.touch_blocks(op, offset, len, ts);
    }

    /// Processes the records of `batch` in `range` — the batched fast
    /// path, exactly equivalent to calling
    /// [`observe`](VolumeAnalyzer::observe) on each record in order.
    ///
    /// Per-metric work runs as fused loops over the batch's columns
    /// instead of one dispatch per request, so the per-request
    /// bookkeeping (volume check, field extraction, branch misses
    /// across unrelated metrics) is paid once per batch run. All
    /// records in `range` must target this analyzer's volume in
    /// non-decreasing timestamp order, like `observe`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds for `batch`.
    pub fn observe_batch(&mut self, batch: &RequestBatch, range: Range<usize>) {
        let ops = &batch.ops()[range.clone()];
        let lens = &batch.lens()[range.clone()];
        let offsets = &batch.offsets()[range.clone()];
        let timestamps = &batch.timestamps()[range.clone()];
        debug_assert!(!self.merged, "observe after merge is unsupported");
        #[cfg(debug_assertions)]
        {
            for &v in &batch.volumes()[range.clone()] {
                debug_assert_eq!(v, self.id, "request targets another volume");
            }
            let mut prev = self.last_ts;
            for &ts in timestamps {
                debug_assert!(
                    prev.map_or(true, |t| ts >= t),
                    "requests must arrive in timestamp order"
                );
                prev = Some(ts);
            }
        }

        // Loop fission: every metric's state is touched by exactly one
        // loop/kernel, and each visits records in order — so the result
        // is bit-identical to interleaving them per request.
        self.note_counts_batch(ops, lens);
        self.note_times_batch(timestamps);
        for &ts in timestamps {
            let rel = ts.saturating_duration_since(self.epoch).as_micros();
            self.note_peak(rel);
        }
        for (&ts, &op) in timestamps.iter().zip(ops) {
            let rel = ts.saturating_duration_since(self.epoch).as_micros();
            self.note_active(rel, op);
        }
        for &offset in offsets {
            self.note_random(offset);
        }
        for i in 0..ops.len() {
            self.touch_blocks(ops[i], offsets[i], lens[i], timestamps[i]);
        }
    }

    /// Counts, traffic and size histograms.
    #[inline]
    fn note_count(&mut self, op: OpKind, len: u32) {
        match op {
            OpKind::Read => {
                self.reads += 1;
                self.read_bytes += u64::from(len);
                self.read_size_hist.record(u64::from(len));
            }
            OpKind::Write => {
                self.writes += 1;
                self.write_bytes += u64::from(len);
                self.write_size_hist.record(u64::from(len));
            }
        }
    }

    /// Batched [`note_count`](Self::note_count): one SIMD pass for the
    /// counters and byte sums, then a mask-driven loop for the two size
    /// histograms (histogram adds commute, so recording all records in
    /// order against precomputed masks is bit-identical).
    fn note_counts_batch(&mut self, ops: &[OpKind], lens: &[u32]) {
        let sums = simd::op_len_sums(ops, lens);
        self.reads += sums.reads;
        self.writes += sums.writes;
        self.read_bytes += sums.read_bytes;
        self.write_bytes += sums.write_bytes;
        let mut mask = mem::take(&mut self.scratch_mask);
        simd::write_mask(ops, &mut mask);
        for (i, &len) in lens.iter().enumerate() {
            let hist = if mask[i / 64] >> (i % 64) & 1 == 1 {
                &mut self.write_size_hist
            } else {
                &mut self.read_size_hist
            };
            hist.record(u64::from(len));
        }
        self.scratch_mask = mask;
    }

    /// Inter-arrival histogram and observed span.
    #[inline]
    fn note_time(&mut self, ts: Timestamp) {
        if let Some(prev) = self.last_ts {
            self.interarrival_hist.record((ts - prev).as_micros());
        }
        self.first_ts.get_or_insert(ts);
        self.last_ts = Some(ts);
    }

    /// Batched [`note_time`](Self::note_time): the gaps come from one
    /// SIMD first-difference pass over the microsecond column. The
    /// leading gap is seeded with the previous record's timestamp (or
    /// skipped when this is the first record ever, like the scalar
    /// path); timestamps are non-decreasing so the wrapping subtraction
    /// equals the checked one.
    fn note_times_batch(&mut self, timestamps: &[Timestamp]) {
        let Some(&last) = timestamps.last() else {
            return;
        };
        let micros = simd::timestamps_as_micros(timestamps);
        let mut deltas = mem::take(&mut self.scratch_deltas);
        let prev = self.last_ts.unwrap_or(timestamps[0]).as_micros();
        simd::deltas_u64(micros, prev, &mut deltas);
        let skip_first = usize::from(self.last_ts.is_none());
        for &gap in &deltas[skip_first..] {
            self.interarrival_hist.record(gap);
        }
        self.first_ts.get_or_insert(timestamps[0]);
        self.last_ts = Some(last);
        self.scratch_deltas = deltas;
    }

    /// Peak intensity (streaming max over peak intervals).
    ///
    /// `rel` is non-decreasing, so the bin index only changes when `rel`
    /// crosses the cached bin end — the division is paid per transition,
    /// not per record (`peak_bin_end` starts at 0, forcing the first
    /// record to compute its bin like the plain divide did).
    #[inline]
    fn note_peak(&mut self, rel: u64) {
        if rel >= self.peak_bin_end {
            let period = self.config.peak_interval.as_micros();
            let bin = rel / period;
            // Saturation is exact: the end only saturates for the last
            // representable bin, which no later `rel` can leave.
            self.peak_bin_end = bin.saturating_add(1).saturating_mul(period);
            if bin != self.peak_bin {
                self.peak_max = self.peak_max.max(self.peak_bin_count);
                self.peak_bin = bin;
                self.peak_bin_count = 0;
            }
        }
        self.peak_bin_count += 1;
    }

    /// Activeness (sorted-unique push: requests arrive in order).
    ///
    /// Same bin-end transition trick as [`note_peak`](Self::note_peak),
    /// applied to both the interval and the day index.
    #[inline]
    fn note_active(&mut self, rel: u64, op: OpKind) {
        if rel >= self.active_bin_end {
            let q = rel / self.config.active_interval.as_micros();
            self.cur_interval = u32::try_from(q).unwrap_or(u32::MAX);
            self.active_bin_end = q
                .saturating_add(1)
                .saturating_mul(self.config.active_interval.as_micros());
        }
        let interval = self.cur_interval;
        push_unique(&mut self.active_intervals, interval);
        match op {
            OpKind::Read => push_unique(&mut self.read_active_intervals, interval),
            OpKind::Write => push_unique(&mut self.write_active_intervals, interval),
        }
        if rel >= self.day_bin_end {
            let q = rel / cbs_trace::time::MICROS_PER_DAY;
            self.cur_day = u32::try_from(q).unwrap_or(u32::MAX);
            self.day_bin_end = q
                .saturating_add(1)
                .saturating_mul(cbs_trace::time::MICROS_PER_DAY);
        }
        push_unique(&mut self.active_days, self.cur_day);
    }

    /// Randomness: a request is random iff no window offset lies within
    /// `randomness_threshold` of it.
    ///
    /// `min(abs_diff) > threshold` is evaluated as range *non*-membership
    /// in `[offset - t, offset + t]` (saturating — saturation is exact at
    /// both edges), which the SIMD kernel scans without computing any
    /// distance. The empty-window case keeps the scalar comparison so
    /// the `threshold == u64::MAX` edge stays bit-identical.
    #[inline]
    fn note_random(&mut self, offset: u64) {
        let threshold = self.config.randomness_threshold;
        let is_random = if self.offset_window.is_empty() {
            u64::MAX > threshold
        } else {
            let lo = offset.saturating_sub(threshold);
            let hi = offset.saturating_add(threshold);
            !simd::any_within(&self.offset_window, lo, hi)
        };
        if is_random {
            self.random_requests += 1;
        }
        if self.offset_window.len() < self.config.randomness_window {
            self.offset_window.push(offset);
        } else {
            self.offset_window[self.offset_cursor] = offset;
            self.offset_cursor = (self.offset_cursor + 1) % self.config.randomness_window;
        }
    }

    /// Block-granular state: adjacency, updates, WSS, reuse.
    ///
    /// The request's span is processed in two passes. Pass 1 resolves
    /// every touched block's chunk slot and previous stack position
    /// (claiming slots for cold blocks); the span's blocks are distinct
    /// consecutive ids, so no entry depends on an earlier entry's
    /// update and [`ReuseStack::touch_batch`] can then resolve all warm
    /// ranks in one amortized sweep. Pass 2 applies the per-block
    /// metric updates in span order — metric state is disjoint from the
    /// stack, so the result is bit-identical to the sequential
    /// interleaving.
    #[inline]
    fn touch_blocks(&mut self, op: OpKind, offset: u64, len: u32, ts: Timestamp) {
        let bs = self.config.block_size;
        let end_offset = offset + u64::from(len);
        let mut prevs = mem::take(&mut self.span_prevs);
        let mut slots = mem::take(&mut self.span_slots);
        prevs.clear();
        slots.clear();
        // Spans cover consecutive blocks, so the chunk lookup amortizes
        // over up to 16 touches; `cur` caches the active chunk index.
        let mut cur_chunk = u64::MAX;
        let mut cur = 0usize;
        for block in bs.span(offset, len) {
            let b = block.get();
            let block_start = bs.offset_of(block);
            let block_end = block_start + u64::from(bs.bytes());
            let overlap = end_offset.min(block_end) - offset.max(block_start);

            if b / CHUNK_BLOCKS != cur_chunk {
                cur_chunk = b / CHUNK_BLOCKS;
                let next = self.chunks.len() as u32;
                let idx = *self.chunk_index.entry(cur_chunk).or_insert(next);
                if idx == next {
                    self.chunks.push(BlockChunk::EMPTY);
                }
                cur = idx as usize;
            }
            let chunk = &mut self.chunks[cur];
            let slot = (b % CHUNK_BLOCKS) as usize;
            if chunk.occupied & (1 << slot) != 0 {
                prevs.push(chunk.states[slot].reuse_pos as usize);
            } else {
                chunk.occupied |= 1 << slot;
                self.distinct_blocks += 1;
                match op {
                    OpKind::Read => self.read_cold += 1,
                    OpKind::Write => self.write_cold += 1,
                }
                prevs.push(ReuseStack::COLD);
            }
            slots.push((cur as u32, slot as u8, overlap as u32));
        }

        if prevs.len() == 1 {
            // Single-block request: the sequential touch keeps its O(1)
            // consecutive-run fast path.
            let prev = prevs[0];
            let (warm, new_pos) = if prev != ReuseStack::COLD {
                let (distance, pos) = self.reuse_stack.touch(prev);
                (Some(distance), pos as u32)
            } else {
                (None, self.reuse_stack.touch_cold() as u32)
            };
            self.apply_block_touch(op, ts, slots[0], warm, new_pos);
        } else if !prevs.is_empty() {
            let mut dists = mem::take(&mut self.span_dists);
            let first_new = self.reuse_stack.touch_batch(&prevs, &mut dists);
            for (i, &target) in slots.iter().enumerate() {
                let warm = if prevs[i] != ReuseStack::COLD {
                    Some(dists[i])
                } else {
                    None
                };
                self.apply_block_touch(op, ts, target, warm, (first_new + i) as u32);
            }
            self.span_dists = dists;
        }
        self.span_prevs = prevs;
        self.span_slots = slots;

        // Dead stack positions cost one bit each; compact once most are
        // dead so memory stays O(distinct blocks). Distances are
        // invariant under compaction (live order is preserved).
        if self.reuse_stack.should_compact() {
            let table = self.reuse_stack.compaction_table();
            for chunk in &mut self.chunks {
                let mut occ = chunk.occupied;
                while occ != 0 {
                    let slot = occ.trailing_zeros() as usize;
                    occ &= occ - 1;
                    let state = &mut chunk.states[slot];
                    state.reuse_pos = table[state.reuse_pos as usize];
                }
            }
            self.reuse_stack.rebuild_compacted();
        }
    }

    /// Applies one block touch's metric updates: reuse-distance and
    /// adjacency histograms, per-block byte/update accounting and the
    /// state refresh. `target` is the pass-1 record (chunk index, slot,
    /// overlap bytes); `warm` carries the reuse distance for a
    /// re-touched block, `None` for a first touch (whose cold counters
    /// were already bumped while claiming the slot).
    #[inline]
    fn apply_block_touch(
        &mut self,
        op: OpKind,
        ts: Timestamp,
        target: (u32, u8, u32),
        warm: Option<u64>,
        new_pos: u32,
    ) {
        let (ci, slot, overlap) = target;
        let overlap = u64::from(overlap);
        let state = &mut self.chunks[ci as usize].states[slot as usize];
        if let Some(distance) = warm {
            // Reuse distance over the unified stream, split per op; the
            // block's stack position rides in its state so the chunk
            // lookup is the only hash op per touched chunk.
            state.reuse_pos = new_pos;
            let hist = match op {
                OpKind::Read => &mut self.read_distance_hist,
                OpKind::Write => &mut self.write_distance_hist,
            };
            let d = distance as usize;
            if d >= hist.len() {
                hist.resize(d + 1, 0);
            }
            hist[d] += 1;

            let elapsed = (ts - state.last_ts).as_micros();
            match (state.last_op, op) {
                (OpKind::Write, OpKind::Read) => self.raw_hist.record(elapsed),
                (OpKind::Write, OpKind::Write) => self.waw_hist.record(elapsed),
                (OpKind::Read, OpKind::Read) => self.rar_hist.record(elapsed),
                (OpKind::Read, OpKind::Write) => self.war_hist.record(elapsed),
            }
            match op {
                OpKind::Read => state.read_bytes += overlap,
                OpKind::Write => {
                    if state.write_count > 0 {
                        self.update_interval_hist
                            .record((ts - state.last_write_ts).as_micros());
                    }
                    self.updated_bytes += overlap;
                    state.write_bytes += overlap;
                    state.write_count += 1;
                    state.last_write_ts = ts;
                }
            }
            state.last_op = op;
            state.last_ts = ts;
        } else {
            let (read_bytes, write_bytes, write_count) = match op {
                OpKind::Read => (overlap, 0, 0),
                OpKind::Write => (0, overlap, 1),
            };
            *state = BlockState {
                read_bytes,
                write_bytes,
                last_ts: ts,
                last_write_ts: ts,
                write_count,
                reuse_pos: new_pos,
                last_op: op,
            };
        }
    }

    /// Folds another partition's analyzer state into `self` — the
    /// terminal reduce of the corpus-parallel fan-out (see the type
    /// docs for which laws are exact vs partition-scoped). Call
    /// [`finish`](VolumeAnalyzer::finish) afterwards; observing more
    /// requests after a merge is unsupported (merged-in blocks carry
    /// partition-local reuse positions).
    ///
    /// # Panics
    ///
    /// Panics if the analyzers disagree on volume, epoch, or config.
    pub fn merge(&mut self, other: VolumeAnalyzer) {
        assert_eq!(self.id, other.id, "merge requires the same volume");
        assert_eq!(self.epoch, other.epoch, "merge requires the same epoch");
        assert_eq!(self.config, other.config, "merge requires the same config");
        self.merged = true;

        self.reads += other.reads;
        self.writes += other.writes;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.updated_bytes += other.updated_bytes;
        self.first_ts = match (self.first_ts, other.first_ts) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_ts = match (self.last_ts, other.last_ts) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };

        self.read_size_hist.merge(&other.read_size_hist);
        self.write_size_hist.merge(&other.write_size_hist);
        self.interarrival_hist.merge(&other.interarrival_hist);
        self.raw_hist.merge(&other.raw_hist);
        self.waw_hist.merge(&other.waw_hist);
        self.rar_hist.merge(&other.rar_hist);
        self.war_hist.merge(&other.war_hist);
        self.update_interval_hist.merge(&other.update_interval_hist);

        // Peaks are partition-scoped: finalize both running bins and
        // keep the max (a peak straddling the cut is undercounted).
        self.peak_max = self
            .peak_max
            .max(self.peak_bin_count)
            .max(other.peak_max.max(other.peak_bin_count));
        self.peak_bin = 0;
        self.peak_bin_count = 0;
        self.peak_bin_end = 0;

        merge_sorted_unique(&mut self.active_intervals, &other.active_intervals);
        merge_sorted_unique(
            &mut self.read_active_intervals,
            &other.read_active_intervals,
        );
        merge_sorted_unique(
            &mut self.write_active_intervals,
            &other.write_active_intervals,
        );
        merge_sorted_unique(&mut self.active_days, &other.active_days);

        // Randomness windows are partition-local; the verdicts add.
        self.random_requests += other.random_requests;

        // Reuse distances were computed against each partition's own
        // stack; the distance histograms and cold counts add.
        if self.read_distance_hist.len() < other.read_distance_hist.len() {
            self.read_distance_hist
                .resize(other.read_distance_hist.len(), 0);
        }
        for (i, &v) in other.read_distance_hist.iter().enumerate() {
            self.read_distance_hist[i] += v;
        }
        if self.write_distance_hist.len() < other.write_distance_hist.len() {
            self.write_distance_hist
                .resize(other.write_distance_hist.len(), 0);
        }
        for (i, &v) in other.write_distance_hist.iter().enumerate() {
            self.write_distance_hist[i] += v;
        }
        self.read_cold += other.read_cold;
        self.write_cold += other.write_cold;

        // Per-block state folds order-free: bytes and write counts
        // add, last-access bookkeeping takes the later access.
        for (chunk_id, other_idx) in other.chunk_index {
            let other_chunk = &other.chunks[other_idx as usize];
            let next = self.chunks.len() as u32;
            let idx = *self.chunk_index.entry(chunk_id).or_insert(next);
            if idx == next {
                self.chunks.push(BlockChunk::EMPTY);
            }
            let chunk = &mut self.chunks[idx as usize];
            let mut occ = other_chunk.occupied;
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let theirs = &other_chunk.states[slot];
                if chunk.occupied & (1 << slot) == 0 {
                    chunk.occupied |= 1 << slot;
                    chunk.states[slot] = *theirs;
                    self.distinct_blocks += 1;
                } else {
                    merge_block_state(&mut chunk.states[slot], theirs);
                }
            }
        }
    }

    /// Completes the analysis.
    ///
    /// An analyzer that observed no requests yields all-zero metrics
    /// spanning `[epoch, epoch]` ([`analyze_trace`] never produces
    /// empty volumes, so this only matters for hand-driven sessions).
    pub fn finish(mut self) -> VolumeMetrics {
        let first_ts = self.first_ts.unwrap_or(self.epoch);
        let last_ts = self.last_ts.unwrap_or(self.epoch);
        self.peak_max = self.peak_max.max(self.peak_bin_count);

        // --- aggregate block-level results ---
        let mut wss_read_blocks = 0u64;
        let mut wss_write_blocks = 0u64;
        let mut wss_update_blocks = 0u64;
        let mut read_bytes_to_read_mostly = 0u64;
        let mut write_bytes_to_write_mostly = 0u64;
        let mut read_traffic: Vec<u64> = Vec::new();
        let mut write_traffic: Vec<u64> = Vec::new();
        let threshold = self.config.rw_mostly_threshold;
        for chunk in &self.chunks {
            let mut occ = chunk.occupied;
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let state = &chunk.states[slot];
                if state.read_bytes > 0 {
                    wss_read_blocks += 1;
                    read_traffic.push(state.read_bytes);
                }
                if state.write_bytes > 0 {
                    wss_write_blocks += 1;
                    write_traffic.push(state.write_bytes);
                }
                if state.write_count >= 2 {
                    wss_update_blocks += 1;
                }
                let total = state.read_bytes + state.write_bytes;
                if total > 0 {
                    let read_share = state.read_bytes as f64 / total as f64;
                    if read_share > threshold {
                        read_bytes_to_read_mostly += state.read_bytes;
                    }
                    if 1.0 - read_share > threshold {
                        write_bytes_to_write_mostly += state.write_bytes;
                    }
                }
            }
        }
        let (f1, f10) = self.config.top_fractions;
        let top_read_shares = top_shares(&mut read_traffic, f1, f10);
        let top_write_shares = top_shares(&mut write_traffic, f1, f10);

        VolumeMetrics {
            id: self.id,
            reads: self.reads,
            writes: self.writes,
            read_bytes: self.read_bytes,
            write_bytes: self.write_bytes,
            updated_bytes: self.updated_bytes,
            first_ts,
            last_ts,
            peak_interval_requests: self.peak_max,
            read_size_hist: self.read_size_hist,
            write_size_hist: self.write_size_hist,
            interarrival_hist: self.interarrival_hist,
            active_intervals: self.active_intervals,
            read_active_intervals: self.read_active_intervals,
            write_active_intervals: self.write_active_intervals,
            active_days: self.active_days,
            random_requests: self.random_requests,
            wss_blocks: self.distinct_blocks,
            wss_read_blocks,
            wss_write_blocks,
            wss_update_blocks,
            top_read_shares,
            top_write_shares,
            read_bytes_to_read_mostly,
            write_bytes_to_write_mostly,
            raw_hist: self.raw_hist,
            waw_hist: self.waw_hist,
            rar_hist: self.rar_hist,
            war_hist: self.war_hist,
            update_interval_hist: self.update_interval_hist,
            read_mrc: cbs_cache::MissRatioCurve::from_histogram(
                self.read_distance_hist,
                self.read_cold,
            ),
            write_mrc: cbs_cache::MissRatioCurve::from_histogram(
                self.write_distance_hist,
                self.write_cold,
            ),
        }
    }
}

/// Folds one block's per-partition state into another (see
/// [`VolumeAnalyzer::merge`]): traffic and write counts add, the
/// last-access fields take the later access with a deterministic
/// tie-break (writes outrank reads on equal timestamps) so the fold is
/// order-free. The reuse position stays partition-local — merge is
/// terminal, nothing reads it again.
fn merge_block_state(mine: &mut BlockState, theirs: &BlockState) {
    mine.read_bytes += theirs.read_bytes;
    mine.write_bytes += theirs.write_bytes;
    if theirs.write_count > 0 {
        mine.last_write_ts = if mine.write_count > 0 {
            mine.last_write_ts.max(theirs.last_write_ts)
        } else {
            theirs.last_write_ts
        };
    }
    mine.write_count += theirs.write_count;
    if (theirs.last_ts, op_rank(theirs.last_op)) > (mine.last_ts, op_rank(mine.last_op)) {
        mine.last_op = theirs.last_op;
    }
    mine.last_ts = mine.last_ts.max(theirs.last_ts);
}

/// Total order on op kinds for the last-access tie-break.
fn op_rank(op: OpKind) -> u8 {
    match op {
        OpKind::Read => 0,
        OpKind::Write => 1,
    }
}

/// Appends `value` to a sorted-unique vector fed with non-decreasing
/// values.
fn push_unique(sorted: &mut Vec<u32>, value: u32) {
    if sorted.last() != Some(&value) {
        debug_assert!(sorted.last().map_or(true, |&l| l < value));
        sorted.push(value);
    }
}

/// Shares of total traffic carried by the top-`f1` and top-`f10`
/// fractions of blocks (by per-block traffic). `None` for no traffic.
fn top_shares(traffic: &mut [u64], f1: f64, f10: f64) -> Option<(f64, f64)> {
    if traffic.is_empty() {
        return None;
    }
    traffic.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = traffic.iter().sum();
    let share = |fraction: f64| {
        let k = ((traffic.len() as f64 * fraction).ceil() as usize).clamp(1, traffic.len());
        let top: u64 = traffic[..k].iter().sum();
        top as f64 / total as f64
    };
    Some((share(f1), share(f10)))
}

/// Analyzes every volume of a trace sequentially, returning metrics in
/// volume-id order. Interval/day indices are anchored at the trace
/// start.
///
/// # Errors
///
/// Returns [`InvalidConfig`] if `config` fails validation.
pub fn analyze_trace(
    trace: &Trace,
    config: &AnalysisConfig,
) -> Result<Vec<VolumeMetrics>, InvalidConfig> {
    config.validate()?;
    let epoch = trace.start().unwrap_or(Timestamp::ZERO);
    trace
        .volumes()
        .map(|view| VolumeAnalyzer::analyze_volume(view, epoch, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_trace::TimeDelta;

    fn req(op: OpKind, offset: u64, len: u32, secs: u64) -> IoRequest {
        IoRequest::new(
            VolumeId::new(0),
            op,
            offset,
            len,
            Timestamp::from_secs(secs),
        )
    }

    fn analyze(requests: Vec<IoRequest>) -> VolumeMetrics {
        let trace = Trace::from_requests(requests);
        analyze_trace(&trace, &AnalysisConfig::default())
            .expect("valid config")
            .into_iter()
            .next()
            .expect("one volume")
    }

    #[test]
    fn counts_and_traffic() {
        let m = analyze(vec![
            req(OpKind::Write, 0, 4096, 0),
            req(OpKind::Write, 4096, 8192, 1),
            req(OpKind::Read, 0, 4096, 2),
        ]);
        assert_eq!(m.reads, 1);
        assert_eq!(m.writes, 2);
        assert_eq!(m.read_bytes, 4096);
        assert_eq!(m.write_bytes, 12288);
        assert_eq!(m.requests(), 3);
        assert_eq!(m.span(), TimeDelta::from_secs(2));
    }

    #[test]
    fn wss_and_update_blocks() {
        let m = analyze(vec![
            req(OpKind::Write, 0, 4096, 0),    // block 0
            req(OpKind::Write, 0, 4096, 1),    // block 0 again → update
            req(OpKind::Write, 4096, 4096, 2), // block 1
            req(OpKind::Read, 8192, 4096, 3),  // block 2 (read only)
        ]);
        assert_eq!(m.wss_blocks, 3);
        assert_eq!(m.wss_read_blocks, 1);
        assert_eq!(m.wss_write_blocks, 2);
        assert_eq!(m.wss_update_blocks, 1);
        assert_eq!(m.updated_bytes, 4096);
        assert!((m.update_coverage() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multi_block_requests_touch_every_block() {
        let m = analyze(vec![req(OpKind::Write, 0, 16384, 0)]);
        assert_eq!(m.wss_blocks, 4);
        assert_eq!(m.wss_write_blocks, 4);
        assert_eq!(m.wss_update_blocks, 0);
    }

    #[test]
    fn adjacency_pair_classification() {
        let m = analyze(vec![
            req(OpKind::Write, 0, 4096, 0),
            req(OpKind::Read, 0, 4096, 10),  // RAW, 10 s
            req(OpKind::Read, 0, 4096, 15),  // RAR, 5 s
            req(OpKind::Write, 0, 4096, 75), // WAR, 60 s
            req(OpKind::Write, 0, 4096, 76), // WAW, 1 s
        ]);
        assert_eq!(m.raw_hist.total(), 1);
        assert_eq!(m.rar_hist.total(), 1);
        assert_eq!(m.war_hist.total(), 1);
        assert_eq!(m.waw_hist.total(), 1);
        // RAW time ~10 s (within histogram error)
        let raw = m.raw_hist.quantile(0.5).unwrap() as f64;
        assert!((raw - 10e6).abs() / 10e6 < 0.02, "raw={raw}");
    }

    #[test]
    fn update_interval_allows_reads_between() {
        let m = analyze(vec![
            req(OpKind::Write, 0, 4096, 0),
            req(OpKind::Read, 0, 4096, 50), // read between the writes
            req(OpKind::Write, 0, 4096, 100), // update interval = 100 s
        ]);
        assert_eq!(m.update_interval_hist.total(), 1);
        let ui = m.update_interval_hist.quantile(0.5).unwrap() as f64;
        assert!((ui - 100e6).abs() / 100e6 < 0.02, "ui={ui}");
        // while WAW counts only the adjacent write pair — here none
        assert_eq!(m.waw_hist.total(), 0);
        assert_eq!(m.war_hist.total(), 1);
    }

    #[test]
    fn randomness_window_classification() {
        // first request: no window → random; second at distance 4 KiB:
        // not random; third at 10 MiB: random.
        let m = analyze(vec![
            req(OpKind::Read, 0, 4096, 0),
            req(OpKind::Read, 4096, 4096, 1),
            req(OpKind::Read, 10 << 20, 4096, 2),
        ]);
        assert_eq!(m.random_requests, 2);
        assert!((m.randomness_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn randomness_window_is_bounded() {
        // 40 requests at the same offset, then one far away: the far
        // one is random even though offset 0 left the window long ago.
        let mut reqs: Vec<IoRequest> = (0..40)
            .map(|i| req(OpKind::Read, 4096 * (i % 2), 4096, i))
            .collect();
        reqs.push(req(OpKind::Read, 1 << 30, 4096, 50));
        let m = analyze(reqs);
        // request 0 (no window) + the last one
        assert_eq!(m.random_requests, 2);
    }

    #[test]
    fn peak_and_average_intensity() {
        // 10 requests in minute 0, 1 request in minute 10
        let mut reqs: Vec<IoRequest> = (0..10).map(|i| req(OpKind::Write, 0, 512, i)).collect();
        reqs.push(req(OpKind::Write, 0, 512, 600));
        let m = analyze(reqs);
        let config = AnalysisConfig::default();
        assert_eq!(m.peak_interval_requests, 10);
        assert!((m.avg_intensity() - 11.0 / 600.0).abs() < 1e-9);
        assert!((m.peak_intensity(&config) - 10.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn activeness_intervals_and_days() {
        let m = analyze(vec![
            req(OpKind::Write, 0, 512, 0),          // interval 0, day 0
            req(OpKind::Read, 0, 512, 60),          // interval 0
            req(OpKind::Write, 0, 512, 601),        // interval 1
            req(OpKind::Write, 0, 512, 86_400 + 5), // day 1
        ]);
        assert_eq!(m.active_intervals, vec![0, 1, 144]);
        assert_eq!(m.read_active_intervals, vec![0]);
        assert_eq!(m.write_active_intervals, vec![0, 1, 144]);
        assert_eq!(m.active_days, vec![0, 1]);
    }

    #[test]
    fn epoch_anchors_indices() {
        // volume starting at day 3 of the corpus
        let trace = Trace::from_requests(vec![
            IoRequest::new(
                VolumeId::new(0),
                OpKind::Write,
                0,
                512,
                Timestamp::from_secs(0),
            ),
            IoRequest::new(
                VolumeId::new(1),
                OpKind::Write,
                0,
                512,
                Timestamp::from_days(3),
            ),
        ]);
        let metrics = analyze_trace(&trace, &AnalysisConfig::default()).expect("valid config");
        assert_eq!(metrics[0].active_days, vec![0]);
        assert_eq!(metrics[1].active_days, vec![3]);
    }

    #[test]
    fn read_write_mostly_attribution() {
        // block 0: write-only; block 1: read-only; block 2: mixed 50/50
        let m = analyze(vec![
            req(OpKind::Write, 0, 4096, 0),
            req(OpKind::Read, 4096, 4096, 1),
            req(OpKind::Write, 8192, 4096, 2),
            req(OpKind::Read, 8192, 4096, 3),
        ]);
        assert_eq!(m.write_bytes_to_write_mostly, 4096); // block 0 only
        assert_eq!(m.read_bytes_to_read_mostly, 4096); // block 1 only
    }

    #[test]
    fn top_shares_concentrate_on_hot_blocks() {
        // 100 blocks once + block 0 hammered 100 more times
        let mut reqs: Vec<IoRequest> = (0..100u64)
            .map(|i| req(OpKind::Write, i * 4096, 4096, i))
            .collect();
        for i in 0..100u64 {
            reqs.push(req(OpKind::Write, 0, 4096, 100 + i));
        }
        let m = analyze(reqs);
        let (top1, top10) = m.top_write_shares.unwrap();
        // block 0 carries 101/200 of write traffic
        assert!((top1 - 101.0 / 200.0).abs() < 1e-9, "top1={top1}");
        assert!(top10 > top1);
        assert_eq!(m.top_read_shares, None);
    }

    #[test]
    fn mrc_split_by_op_kind() {
        // writes churn 2 blocks; reads always re-hit block 0
        let m = analyze(vec![
            req(OpKind::Write, 0, 4096, 0),
            req(OpKind::Write, 4096, 4096, 1),
            req(OpKind::Read, 0, 4096, 2), // distance 1
            req(OpKind::Read, 0, 4096, 3), // distance 0
        ]);
        // read MRC: 2 accesses, distances {1, 0} → at capacity 2 all hit
        assert_eq!(m.read_mrc.total_accesses(), 2);
        assert_eq!(m.read_mrc.miss_ratio_at(2), 0.0);
        assert_eq!(m.read_mrc.miss_ratio_at(1), 0.5);
        // write MRC: both cold
        assert_eq!(m.write_mrc.total_accesses(), 2);
        assert_eq!(m.write_mrc.miss_ratio_at(100), 1.0);
    }

    #[test]
    fn interarrival_histogram() {
        let m = analyze(vec![
            req(OpKind::Write, 0, 512, 0),
            req(OpKind::Write, 0, 512, 1),
            req(OpKind::Write, 0, 512, 3),
        ]);
        assert_eq!(m.interarrival_hist.total(), 2);
    }

    #[test]
    fn analyze_trace_orders_by_volume() {
        let trace = Trace::from_requests(vec![
            IoRequest::new(VolumeId::new(5), OpKind::Read, 0, 512, Timestamp::ZERO),
            IoRequest::new(VolumeId::new(1), OpKind::Read, 0, 512, Timestamp::ZERO),
        ]);
        let metrics = analyze_trace(&trace, &AnalysisConfig::default()).expect("valid config");
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].id, VolumeId::new(1));
        assert_eq!(metrics[1].id, VolumeId::new(5));
    }

    #[test]
    fn empty_trace_yields_no_metrics() {
        let metrics =
            analyze_trace(&Trace::new(), &AnalysisConfig::default()).expect("valid config");
        assert!(metrics.is_empty());
    }

    #[test]
    fn observe_batch_equals_per_request_observe() {
        // An irregular single-volume stream exercising every metric:
        // repeats, multi-block requests, far jumps, dense + sparse time.
        let reqs: Vec<IoRequest> = (0..2_000u64)
            .map(|i| {
                let op = if i % 3 == 0 {
                    OpKind::Read
                } else {
                    OpKind::Write
                };
                let offset = (i * i * 7 + i * 13) % 300 * 4096 + (i % 5) * 100;
                let len = 512 * ((i % 17) as u32 + 1);
                req_at(op, offset, len, i * 1100 + i * 37 % 1000)
            })
            .collect();

        let config = AnalysisConfig::default();
        let epoch = reqs[0].ts();
        let mut one_by_one =
            VolumeAnalyzer::new(VolumeId::new(0), epoch, config.clone()).expect("valid");
        for r in &reqs {
            one_by_one.observe(r);
        }

        // Feed the same stream as batches of varying sizes and ranges.
        let batch = RequestBatch::from(reqs.as_slice());
        let mut batched = VolumeAnalyzer::new(VolumeId::new(0), epoch, config).expect("valid");
        let mut start = 0usize;
        for chunk in [1usize, 7, 64, 500, 2000] {
            let end = (start + chunk).min(batch.len());
            batched.observe_batch(&batch, start..end);
            start = end;
            if start == batch.len() {
                break;
            }
        }

        assert_eq!(one_by_one.finish(), batched.finish());
    }

    /// Like [`req`] but with monotone microsecond timestamps.
    fn req_at(op: OpKind, offset: u64, len: u32, micros: u64) -> IoRequest {
        IoRequest::new(
            VolumeId::new(0),
            op,
            offset,
            len,
            Timestamp::from_micros(micros),
        )
    }
}
