//! The workload-characterization engine: a single-pass per-volume
//! analyzer implementing every metric behind the 15 findings of
//! *"An In-Depth Analysis of Cloud Block Storage Workloads in
//! Large-Scale Production"* (IISWC'20).
//!
//! # Architecture
//!
//! [`VolumeAnalyzer`] consumes one volume's time-sorted requests exactly
//! once and feeds all metric collectors simultaneously — counters,
//! log-scale histograms, a per-block state map (shared by the working-set,
//! aggregation, read/write-mostly, update-coverage, adjacency and
//! update-interval metrics), the randomness window, and an exact
//! reuse-distance computation whose miss-ratio curves answer the LRU
//! simulation of Finding 15 at *any* cache size without a second pass.
//! The result is a passive [`VolumeMetrics`] record.
//!
//! [`analyze_trace`] runs the analyzer over every volume of a
//! [`cbs_trace::Trace`] (see `cbs-core` for the parallel driver) and the
//! [`findings`] modules turn `&[VolumeMetrics]` into the exact data
//! series of each paper table and figure.
//!
//! # Example
//!
//! ```
//! use cbs_analysis::{analyze_trace, AnalysisConfig};
//! use cbs_trace::{IoRequest, OpKind, Timestamp, Trace, VolumeId};
//!
//! let trace = Trace::from_requests(vec![
//!     IoRequest::new(VolumeId::new(0), OpKind::Write, 0, 4096, Timestamp::from_secs(0)),
//!     IoRequest::new(VolumeId::new(0), OpKind::Write, 0, 4096, Timestamp::from_secs(60)),
//!     IoRequest::new(VolumeId::new(0), OpKind::Read, 4096, 4096, Timestamp::from_secs(90)),
//! ]);
//! let metrics = analyze_trace(&trace, &AnalysisConfig::default()).unwrap();
//! let v = &metrics[0];
//! assert_eq!(v.writes, 2);
//! assert_eq!(v.wss_blocks, 2);
//! assert_eq!(v.wss_update_blocks, 1); // block 0 written twice
//! ```

// deny (not forbid): the simd module needs a local allow(unsafe_code)
// for its core::arch intrinsics and column slice casts, each carrying a
// SAFETY comment and a scalar reference twin.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyzer;
pub mod config;
pub mod findings;
pub mod metrics;
pub mod recommend;
pub mod simd;
pub mod windowed;

pub use analyzer::{analyze_trace, VolumeAnalyzer};
pub use config::{AnalysisConfig, InvalidConfig};
pub use metrics::VolumeMetrics;
pub use windowed::{WindowStats, WindowedAnalysis};
