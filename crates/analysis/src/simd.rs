//! Runtime-dispatched SIMD column kernels for the batched analyzer.
//!
//! Each kernel has two implementations: a portable scalar loop (the
//! reference semantics, also used on non-x86-64 targets) and an AVX2
//! variant selected at runtime via [`std::arch::is_x86_feature_detected!`]
//! (the detection result is cached by `std`, so dispatch is a predictable
//! load-and-branch). The AVX2 variants are *bit-identical* to the scalar
//! ones — all sums use wrapping arithmetic in both paths, so the pair can
//! be property-tested for equality on arbitrary inputs (see
//! `crates/analysis/tests/proptests.rs`).
//!
//! The kernels operate on the column representations of
//! [`cbs_trace::RequestBatch`]: op codes as bytes (guaranteed by
//! `OpKind`'s `repr(u8)`), timestamps as microsecond `u64`s (guaranteed
//! by `Timestamp`'s `repr(transparent)`).

use cbs_trace::{OpKind, Timestamp};

/// Aggregate op-mix and traffic statistics for one column run, as
/// returned by [`op_len_sums`].
///
/// All sums use wrapping arithmetic, matching release-mode `+=` on the
/// equivalent scalar accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpLenSums {
    /// Number of read records.
    pub reads: u64,
    /// Number of write records.
    pub writes: u64,
    /// Sum of read record lengths, in bytes.
    pub read_bytes: u64,
    /// Sum of write record lengths, in bytes.
    pub write_bytes: u64,
}

/// Returns `true` when the AVX2 kernels are usable on this machine.
#[inline]
fn avx2_enabled() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Views a column of op codes as raw bytes (`Read = 0`, `Write = 1`).
#[inline]
pub fn ops_as_bytes(ops: &[OpKind]) -> &[u8] {
    // SAFETY: `OpKind` is `#[repr(u8)]` with `Read = 0` and `Write = 1`,
    // so a slice of `OpKind` has exactly the size, alignment and bit
    // patterns of a slice of `u8` of the same length.
    #[allow(unsafe_code)]
    unsafe {
        std::slice::from_raw_parts(ops.as_ptr().cast::<u8>(), ops.len())
    }
}

/// Views a column of timestamps as their microsecond counts.
#[inline]
pub fn timestamps_as_micros(timestamps: &[Timestamp]) -> &[u64] {
    // SAFETY: `Timestamp` is `#[repr(transparent)]` over its `u64`
    // microsecond count, so a slice of `Timestamp` has exactly the
    // layout of a slice of `u64` of the same length.
    #[allow(unsafe_code)]
    unsafe {
        std::slice::from_raw_parts(timestamps.as_ptr().cast::<u64>(), timestamps.len())
    }
}

/// Counts reads/writes and sums read/write bytes over one column run.
///
/// # Panics
///
/// Panics if `ops` and `lens` differ in length.
#[inline]
pub fn op_len_sums(ops: &[OpKind], lens: &[u32]) -> OpLenSums {
    assert_eq!(ops.len(), lens.len(), "op and length columns must match");
    #[cfg(target_arch = "x86_64")]
    if avx2_enabled() {
        // SAFETY: AVX2 support was verified at runtime on the line above.
        #[allow(unsafe_code)]
        return unsafe { avx2::op_len_sums(ops_as_bytes(ops), lens) };
    }
    op_len_sums_scalar(ops, lens)
}

/// Scalar reference implementation of [`op_len_sums`].
///
/// # Panics
///
/// Panics if `ops` and `lens` differ in length.
pub fn op_len_sums_scalar(ops: &[OpKind], lens: &[u32]) -> OpLenSums {
    assert_eq!(ops.len(), lens.len(), "op and length columns must match");
    let mut writes = 0u64;
    let mut write_bytes = 0u64;
    let mut total_bytes = 0u64;
    for (&op, &len) in ops.iter().zip(lens) {
        let len = u64::from(len);
        total_bytes = total_bytes.wrapping_add(len);
        if op.is_write() {
            writes = writes.wrapping_add(1);
            write_bytes = write_bytes.wrapping_add(len);
        }
    }
    OpLenSums {
        reads: (ops.len() as u64).wrapping_sub(writes),
        writes,
        read_bytes: total_bytes.wrapping_sub(write_bytes),
        write_bytes,
    }
}

/// Packs the write bits of one op column into LSB-first 64-bit words.
///
/// Bit `i % 64` of `out[i / 64]` is set iff record `i` is a write. The
/// final partial word, if any, has its unused high bits clear. `out` is
/// cleared and resized to exactly `ceil(ops.len() / 64)` words.
#[inline]
pub fn write_mask(ops: &[OpKind], out: &mut Vec<u64>) {
    #[cfg(target_arch = "x86_64")]
    if avx2_enabled() {
        // SAFETY: AVX2 support was verified at runtime on the line above.
        #[allow(unsafe_code)]
        unsafe {
            avx2::write_mask(ops_as_bytes(ops), out);
        }
        return;
    }
    write_mask_scalar(ops, out);
}

/// Scalar reference implementation of [`write_mask`].
pub fn write_mask_scalar(ops: &[OpKind], out: &mut Vec<u64>) {
    out.clear();
    out.resize(ops.len().div_ceil(64), 0);
    for (i, &op) in ops.iter().enumerate() {
        if op.is_write() {
            out[i / 64] |= 1u64 << (i % 64);
        }
    }
}

/// Wrapping first differences: `out[0] = values[0] - prev`,
/// `out[i] = values[i] - values[i - 1]` for `i > 0`.
///
/// `out` is cleared and resized to `values.len()`. For non-decreasing
/// inputs (timestamp columns) the wrapping subtraction never wraps and
/// the results are the plain inter-arrival gaps.
#[inline]
pub fn deltas_u64(values: &[u64], prev: u64, out: &mut Vec<u64>) {
    #[cfg(target_arch = "x86_64")]
    if avx2_enabled() {
        // SAFETY: AVX2 support was verified at runtime on the line above.
        #[allow(unsafe_code)]
        unsafe {
            avx2::deltas_u64(values, prev, out);
        }
        return;
    }
    deltas_u64_scalar(values, prev, out);
}

/// Scalar reference implementation of [`deltas_u64`].
pub fn deltas_u64_scalar(values: &[u64], prev: u64, out: &mut Vec<u64>) {
    out.clear();
    out.reserve(values.len());
    let mut last = prev;
    for &v in values {
        out.push(v.wrapping_sub(last));
        last = v;
    }
}

/// Returns `true` iff any element of `haystack` lies in `[lo, hi]`
/// (inclusive, unsigned).
///
/// An empty haystack or an empty range (`lo > hi`) yields `false`.
#[inline]
pub fn any_within(haystack: &[u64], lo: u64, hi: u64) -> bool {
    #[cfg(target_arch = "x86_64")]
    if avx2_enabled() {
        // SAFETY: AVX2 support was verified at runtime on the line above.
        #[allow(unsafe_code)]
        return unsafe { avx2::any_within(haystack, lo, hi) };
    }
    any_within_scalar(haystack, lo, hi)
}

/// Scalar reference implementation of [`any_within`].
pub fn any_within_scalar(haystack: &[u64], lo: u64, hi: u64) -> bool {
    haystack.iter().any(|&v| lo <= v && v <= hi)
}

/// AVX2 implementations. Every function is `unsafe` because it compiles
/// with `#[target_feature(enable = "avx2")]`: the caller must have
/// verified AVX2 support at runtime (done by the dispatchers above).
//
// allow (not forbid) at module granularity: the whole point of this
// module is `core::arch` intrinsics, each call site carries a SAFETY
// comment and the scalar twins define the reference semantics.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[deny(unsafe_op_in_unsafe_fn)]
mod avx2 {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_castsi256_si128,
        _mm256_cmpeq_epi64, _mm256_cmpeq_epi8, _mm256_cmpgt_epi64, _mm256_cvtepu32_epi64,
        _mm256_cvtepu8_epi64, _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_movemask_epi8,
        _mm256_or_si256, _mm256_set1_epi64x, _mm256_set1_epi8, _mm256_setzero_si256,
        _mm256_storeu_si256, _mm256_sub_epi64, _mm256_xor_si256, _mm_add_epi64, _mm_cvtsi128_si64,
        _mm_cvtsi32_si128, _mm_loadu_si128, _mm_unpackhi_epi64,
    };

    use super::OpLenSums;

    /// Sums the four `u64` lanes of `v` with wrapping adds.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64(v: __m256i) -> u64 {
        // Register-only lane extraction: safe under the avx2 target
        // feature, no memory access involved.
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        let s = _mm_add_epi64(lo, hi);
        let s = _mm_add_epi64(s, _mm_unpackhi_epi64(s, s));
        _mm_cvtsi128_si64(s) as u64
    }

    /// AVX2 twin of [`super::op_len_sums_scalar`]; `ops` are raw op
    /// bytes (`0` read / `1` write), same length as `lens`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn op_len_sums(ops: &[u8], lens: &[u32]) -> OpLenSums {
        debug_assert_eq!(ops.len(), lens.len());
        let n = ops.len();
        let mut i = 0usize;
        // SAFETY: every load below reads 4 op bytes / 4 lengths at
        // offset `i` with `i + 4 <= n`, in bounds of both slices.
        unsafe {
            let ones = _mm256_set1_epi64x(1);
            let mut write_acc = _mm256_setzero_si256();
            let mut write_byte_acc = _mm256_setzero_si256();
            let mut total_byte_acc = _mm256_setzero_si256();
            while i + 4 <= n {
                let op4 = _mm_cvtsi32_si128(i32::from_le_bytes([
                    *ops.get_unchecked(i),
                    *ops.get_unchecked(i + 1),
                    *ops.get_unchecked(i + 2),
                    *ops.get_unchecked(i + 3),
                ]));
                let op_w = _mm256_cvtepu8_epi64(op4);
                let len_w =
                    _mm256_cvtepu32_epi64(_mm_loadu_si128(lens.as_ptr().add(i).cast::<__m128i>()));
                // op bytes are 0/1, so the lane itself is the write count
                // and an all-ones compare mask selects write lengths.
                write_acc = _mm256_add_epi64(write_acc, op_w);
                let is_write = _mm256_cmpeq_epi64(op_w, ones);
                write_byte_acc =
                    _mm256_add_epi64(write_byte_acc, _mm256_and_si256(len_w, is_write));
                total_byte_acc = _mm256_add_epi64(total_byte_acc, len_w);
                i += 4;
            }
            let mut writes = hsum_epi64(write_acc);
            let mut write_bytes = hsum_epi64(write_byte_acc);
            let mut total_bytes = hsum_epi64(total_byte_acc);
            while i < n {
                let len = u64::from(*lens.get_unchecked(i));
                total_bytes = total_bytes.wrapping_add(len);
                if *ops.get_unchecked(i) == 1 {
                    writes = writes.wrapping_add(1);
                    write_bytes = write_bytes.wrapping_add(len);
                }
                i += 1;
            }
            OpLenSums {
                reads: (n as u64).wrapping_sub(writes),
                writes,
                read_bytes: total_bytes.wrapping_sub(write_bytes),
                write_bytes,
            }
        }
    }

    /// AVX2 twin of [`super::write_mask_scalar`]; `ops` are raw op bytes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn write_mask(ops: &[u8], out: &mut Vec<u64>) {
        let n = ops.len();
        out.clear();
        out.resize(n.div_ceil(64), 0);
        let mut i = 0usize;
        // SAFETY: each 32-byte load reads `ops[i..i + 32]` with
        // `i + 32 <= n`; each store writes word `i / 64`, in bounds
        // because `i < n` and `out` holds `ceil(n / 64)` words.
        unsafe {
            let ones = _mm256_set1_epi8(1);
            while i + 32 <= n {
                let bytes = _mm256_loadu_si256(ops.as_ptr().add(i).cast::<__m256i>());
                let mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(bytes, ones)) as u32;
                *out.get_unchecked_mut(i / 64) |= u64::from(mask) << (i % 64);
                i += 32;
            }
        }
        for (j, &b) in ops.iter().enumerate().skip(i) {
            if b == 1 {
                out[j / 64] |= 1u64 << (j % 64);
            }
        }
    }

    /// AVX2 twin of [`super::deltas_u64_scalar`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn deltas_u64(values: &[u64], prev: u64, out: &mut Vec<u64>) {
        let n = values.len();
        out.clear();
        out.resize(n, 0);
        if n == 0 {
            return;
        }
        out[0] = values[0].wrapping_sub(prev);
        let mut i = 1usize;
        // SAFETY: loads read `values[i - 1..i + 3]` and `values[i..i + 4]`
        // and the store writes `out[i..i + 4]`, all in bounds while
        // `i + 4 <= n`; `out` was resized to `n` above.
        unsafe {
            while i + 4 <= n {
                let cur = _mm256_loadu_si256(values.as_ptr().add(i).cast::<__m256i>());
                let before = _mm256_loadu_si256(values.as_ptr().add(i - 1).cast::<__m256i>());
                _mm256_storeu_si256(
                    out.as_mut_ptr().add(i).cast::<__m256i>(),
                    _mm256_sub_epi64(cur, before),
                );
                i += 4;
            }
        }
        while i < n {
            out[i] = values[i].wrapping_sub(values[i - 1]);
            i += 1;
        }
    }

    /// AVX2 twin of [`super::any_within_scalar`].
    ///
    /// AVX2 has no unsigned 64-bit compare, so lanes are biased by the
    /// sign bit (an order-preserving map from unsigned to signed) and
    /// compared with `cmpgt_epi64`; a lane is in `[lo, hi]` iff neither
    /// `lo > v` nor `v > hi`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn any_within(haystack: &[u64], lo: u64, hi: u64) -> bool {
        let n = haystack.len();
        let mut i = 0usize;
        // SAFETY: each 32-byte load reads `haystack[i..i + 4]` with
        // `i + 4 <= n`, in bounds.
        unsafe {
            let bias = _mm256_set1_epi64x(i64::MIN);
            let lo_b = _mm256_xor_si256(_mm256_set1_epi64x(lo as i64), bias);
            let hi_b = _mm256_xor_si256(_mm256_set1_epi64x(hi as i64), bias);
            while i + 4 <= n {
                let v = _mm256_loadu_si256(haystack.as_ptr().add(i).cast::<__m256i>());
                let v_b = _mm256_xor_si256(v, bias);
                let below = _mm256_cmpgt_epi64(lo_b, v_b);
                let above = _mm256_cmpgt_epi64(v_b, hi_b);
                if _mm256_movemask_epi8(_mm256_or_si256(below, above)) != -1 {
                    return true;
                }
                i += 4;
            }
        }
        haystack[i..].iter().any(|&v| lo <= v && v <= hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_of(bits: &[u8]) -> Vec<OpKind> {
        bits.iter()
            .map(|&b| if b == 1 { OpKind::Write } else { OpKind::Read })
            .collect()
    }

    #[test]
    fn column_casts_preserve_values() {
        let ops = ops_of(&[0, 1, 1, 0, 1]);
        assert_eq!(ops_as_bytes(&ops), &[0, 1, 1, 0, 1]);
        let ts: Vec<Timestamp> = [5u64, 0, u64::MAX]
            .iter()
            .map(|&m| Timestamp::from_micros(m))
            .collect();
        assert_eq!(timestamps_as_micros(&ts), &[5, 0, u64::MAX]);
        assert!(ops_as_bytes(&[]).is_empty());
        assert!(timestamps_as_micros(&[]).is_empty());
    }

    #[test]
    fn op_len_sums_matches_scalar_on_odd_lengths() {
        // Lengths straddling every tail case of the 4-wide kernel.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 31, 32, 33, 100] {
            let ops = ops_of(&(0..n).map(|i| (i % 3 == 0) as u8).collect::<Vec<_>>());
            let lens: Vec<u32> = (0..n)
                .map(|i| (i as u32).wrapping_mul(0x9e37) | 1)
                .collect();
            let fast = op_len_sums(&ops, &lens);
            let slow = op_len_sums_scalar(&ops, &lens);
            assert_eq!(fast, slow, "n={n}");
            assert_eq!(fast.reads + fast.writes, n as u64);
        }
    }

    #[test]
    fn write_mask_matches_scalar_and_packs_lsb_first() {
        for n in [0usize, 1, 63, 64, 65, 96, 128, 200] {
            let ops = ops_of(&(0..n).map(|i| (i % 5 == 0) as u8).collect::<Vec<_>>());
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            write_mask(&ops, &mut fast);
            write_mask_scalar(&ops, &mut slow);
            assert_eq!(fast, slow, "n={n}");
            assert_eq!(fast.len(), n.div_ceil(64));
            if n > 0 {
                assert_eq!(fast[0] & 1, 1, "record 0 is a write");
            }
        }
    }

    #[test]
    fn deltas_match_scalar_including_wraparound() {
        let values: Vec<u64> = vec![10, 10, 25, u64::MAX, 3, 1 << 50, 7, 7, 7, 9];
        for n in 0..=values.len() {
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            deltas_u64(&values[..n], 4, &mut fast);
            deltas_u64_scalar(&values[..n], 4, &mut slow);
            assert_eq!(fast, slow, "n={n}");
        }
        let mut d = Vec::new();
        deltas_u64(&[100, 160], 40, &mut d);
        assert_eq!(d, vec![60, 60]);
    }

    #[test]
    fn any_within_matches_scalar_on_boundaries() {
        let hay: Vec<u64> = vec![0, 5, 17, 1 << 40, u64::MAX - 1, 9, 9, 9];
        let probes = [
            (0u64, 0u64),
            (1, 4),
            (5, 5),
            (18, 1 << 39),
            (u64::MAX, u64::MAX),
            (0, u64::MAX),
            (6, 3), // empty range
        ];
        for n in 0..=hay.len() {
            for &(lo, hi) in &probes {
                assert_eq!(
                    any_within(&hay[..n], lo, hi),
                    any_within_scalar(&hay[..n], lo, hi),
                    "n={n} lo={lo} hi={hi}"
                );
            }
        }
        assert!(!any_within(&[], 0, u64::MAX));
        assert!(any_within(&[7], 7, 7));
    }
}
