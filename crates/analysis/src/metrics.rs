//! Per-volume analysis results: [`VolumeMetrics`].

use cbs_cache::MissRatioCurve;
use cbs_stats::LogHistogram;
use cbs_trace::{TimeDelta, Timestamp, VolumeId};

use crate::config::AnalysisConfig;

/// Everything the analyzer measured about one volume — a passive record
/// consumed by the [`crate::findings`] modules.
///
/// Fields are public (this is a result record, not an invariant-bearing
/// type); the derived paper metrics (intensities, ratios, coverage) are
/// provided as methods.
///
/// MERGEABLE: same-volume partials form a commutative monoid under
/// [`merge`](VolumeMetrics::merge) with **partition-scoped** semantics:
/// counters, traffic and histograms add exactly; time bounds take
/// min/max; active interval/day sets union; peak intensity takes the
/// max of per-partition peaks (a peak straddling a partition boundary
/// is undercounted); WSS block counts add (exact only when partitions
/// cover disjoint block ranges, as the CBT block-range partitioner
/// guarantees); top-share percentages combine as traffic-weighted
/// means (exact in real arithmetic, approximately associative in
/// floating point); miss-ratio curves merge per [`MissRatioCurve`].
/// Cross-partition effects the per-partition analyzers never saw
/// (boundary inter-arrivals, cross-partition reuse) are not
/// reconstructed — the corpus driver partitions by volume precisely so
/// this merge is only needed for the documented block-range mode.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeMetrics {
    /// The volume.
    pub id: VolumeId,
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Total bytes read.
    pub read_bytes: u64,
    /// Total bytes written.
    pub write_bytes: u64,
    /// Bytes written to blocks that had already been written
    /// (overwrite/update traffic).
    pub updated_bytes: u64,
    /// Timestamp of the first request.
    pub first_ts: Timestamp,
    /// Timestamp of the last request.
    pub last_ts: Timestamp,
    /// Maximum number of requests in any peak interval (1 minute).
    pub peak_interval_requests: u64,
    /// Distribution of read request sizes (bytes).
    pub read_size_hist: LogHistogram,
    /// Distribution of write request sizes (bytes).
    pub write_size_hist: LogHistogram,
    /// Distribution of inter-arrival times (µs).
    pub interarrival_hist: LogHistogram,
    /// Sorted indices of 10-minute intervals with ≥ 1 request
    /// (relative to the corpus epoch).
    pub active_intervals: Vec<u32>,
    /// Sorted indices of intervals with ≥ 1 read.
    pub read_active_intervals: Vec<u32>,
    /// Sorted indices of intervals with ≥ 1 write.
    pub write_active_intervals: Vec<u32>,
    /// Sorted indices of days with ≥ 1 request.
    pub active_days: Vec<u32>,
    /// Number of requests classified random (min distance to the
    /// previous 32 request offsets > 128 KiB).
    pub random_requests: u64,
    /// Unique blocks touched.
    pub wss_blocks: u64,
    /// Unique blocks read.
    pub wss_read_blocks: u64,
    /// Unique blocks written.
    pub wss_write_blocks: u64,
    /// Unique blocks written at least twice.
    pub wss_update_blocks: u64,
    /// Share of read traffic landing in the top-1 % / top-10 % read
    /// blocks (`None` if the volume has no reads).
    pub top_read_shares: Option<(f64, f64)>,
    /// Share of write traffic landing in the top-1 % / top-10 % write
    /// blocks (`None` if the volume has no writes).
    pub top_write_shares: Option<(f64, f64)>,
    /// Bytes read from read-mostly blocks.
    pub read_bytes_to_read_mostly: u64,
    /// Bytes written to write-mostly blocks.
    pub write_bytes_to_write_mostly: u64,
    /// Elapsed-time distribution of read-after-write pairs (µs).
    pub raw_hist: LogHistogram,
    /// Elapsed-time distribution of write-after-write pairs (µs).
    pub waw_hist: LogHistogram,
    /// Elapsed-time distribution of read-after-read pairs (µs).
    pub rar_hist: LogHistogram,
    /// Elapsed-time distribution of write-after-read pairs (µs).
    pub war_hist: LogHistogram,
    /// Elapsed-time distribution of update intervals (consecutive
    /// writes to the same block, reads allowed between; µs).
    pub update_interval_hist: LogHistogram,
    /// LRU miss-ratio curve of read block-accesses (exact, from reuse
    /// distances over the unified read/write stream).
    pub read_mrc: MissRatioCurve,
    /// LRU miss-ratio curve of write block-accesses.
    pub write_mrc: MissRatioCurve,
}

impl VolumeMetrics {
    /// Total requests.
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Elapsed time between the first and last request.
    pub fn span(&self) -> TimeDelta {
        self.last_ts - self.first_ts
    }

    /// Average intensity in requests/second: total requests over the
    /// elapsed time between first and last request (Finding 1). A
    /// single-request volume (zero span) counts its requests against
    /// one second.
    pub fn avg_intensity(&self) -> f64 {
        let secs = self.span().as_secs_f64().max(1.0);
        self.requests() as f64 / secs
    }

    /// Peak intensity in requests/second: the busiest peak interval's
    /// request count, normalized to seconds (Finding 1).
    pub fn peak_intensity(&self, config: &AnalysisConfig) -> f64 {
        self.peak_interval_requests as f64 / config.peak_interval.as_secs_f64()
    }

    /// Burstiness ratio: peak over average intensity (Finding 2).
    pub fn burstiness_ratio(&self, config: &AnalysisConfig) -> f64 {
        self.peak_intensity(config) / self.avg_intensity()
    }

    /// Write-to-read request ratio; `None` when the volume has no
    /// reads (an infinite ratio — callers decide how to bin it).
    pub fn write_read_ratio(&self) -> Option<f64> {
        (self.reads > 0).then(|| self.writes as f64 / self.reads as f64)
    }

    /// Returns `true` if writes outnumber reads.
    pub fn is_write_dominant(&self) -> bool {
        self.writes > self.reads
    }

    /// Fraction of requests classified random (Finding 8).
    pub fn randomness_ratio(&self) -> f64 {
        if self.requests() == 0 {
            return 0.0;
        }
        self.random_requests as f64 / self.requests() as f64
    }

    /// Update coverage: update WSS over total WSS (Finding 11).
    pub fn update_coverage(&self) -> f64 {
        if self.wss_blocks == 0 {
            return 0.0;
        }
        self.wss_update_blocks as f64 / self.wss_blocks as f64
    }

    /// Total active time (number of active intervals × interval
    /// length).
    pub fn active_period(&self, config: &AnalysisConfig) -> TimeDelta {
        TimeDelta::from_micros(
            self.active_intervals.len() as u64 * config.active_interval.as_micros(),
        )
    }

    /// Read-active time.
    pub fn read_active_period(&self, config: &AnalysisConfig) -> TimeDelta {
        TimeDelta::from_micros(
            self.read_active_intervals.len() as u64 * config.active_interval.as_micros(),
        )
    }

    /// Write-active time.
    pub fn write_active_period(&self, config: &AnalysisConfig) -> TimeDelta {
        TimeDelta::from_micros(
            self.write_active_intervals.len() as u64 * config.active_interval.as_micros(),
        )
    }

    /// Mean read request size in bytes; `None` without reads.
    pub fn mean_read_size(&self) -> Option<f64> {
        (self.reads > 0).then(|| self.read_bytes as f64 / self.reads as f64)
    }

    /// Mean write request size in bytes; `None` without writes.
    pub fn mean_write_size(&self) -> Option<f64> {
        (self.writes > 0).then(|| self.write_bytes as f64 / self.writes as f64)
    }

    /// Fraction of read traffic going to read-mostly blocks
    /// (Finding 10); `None` without read traffic.
    pub fn read_mostly_share(&self) -> Option<f64> {
        (self.read_bytes > 0)
            .then(|| self.read_bytes_to_read_mostly as f64 / self.read_bytes as f64)
    }

    /// Fraction of write traffic going to write-mostly blocks
    /// (Finding 10); `None` without write traffic.
    pub fn write_mostly_share(&self) -> Option<f64> {
        (self.write_bytes > 0)
            .then(|| self.write_bytes_to_write_mostly as f64 / self.write_bytes as f64)
    }

    /// The LRU cache capacity (blocks) corresponding to a WSS
    /// fraction, at least one block (Finding 15).
    pub fn cache_blocks_for_fraction(&self, fraction: f64) -> usize {
        ((self.wss_blocks as f64 * fraction).ceil() as usize).max(1)
    }

    /// Read miss ratio under LRU with a cache of `fraction` × WSS;
    /// `None` if the volume has no read block-accesses.
    pub fn read_miss_ratio(&self, fraction: f64) -> Option<f64> {
        (self.read_mrc.total_accesses() > 0).then(|| {
            self.read_mrc
                .miss_ratio_at(self.cache_blocks_for_fraction(fraction))
        })
    }

    /// Write miss ratio under LRU with a cache of `fraction` × WSS;
    /// `None` if the volume has no write block-accesses.
    pub fn write_miss_ratio(&self, fraction: f64) -> Option<f64> {
        (self.write_mrc.total_accesses() > 0).then(|| {
            self.write_mrc
                .miss_ratio_at(self.cache_blocks_for_fraction(fraction))
        })
    }

    /// Folds another partition's metrics **for the same volume** into
    /// `self` (see the type docs for the per-field laws and which are
    /// exact vs partition-scoped).
    ///
    /// # Panics
    ///
    /// Panics if the volume ids differ or the histograms disagree on
    /// precision (partials must come from the same
    /// [`AnalysisConfig`]).
    pub fn merge(&mut self, other: &VolumeMetrics) {
        assert_eq!(self.id, other.id, "merge requires the same volume");

        // Top shares combine as traffic-weighted means; weigh by each
        // side's pre-merge traffic before the byte counters add.
        self.top_read_shares = merge_weighted_shares(
            self.top_read_shares,
            self.read_bytes,
            other.top_read_shares,
            other.read_bytes,
        );
        self.top_write_shares = merge_weighted_shares(
            self.top_write_shares,
            self.write_bytes,
            other.top_write_shares,
            other.write_bytes,
        );

        // Time bounds: an empty partial (the identity) spans
        // `[epoch, epoch]` and must not drag the bounds around.
        if other.requests() > 0 {
            if self.requests() == 0 {
                self.first_ts = other.first_ts;
                self.last_ts = other.last_ts;
            } else {
                self.first_ts = self.first_ts.min(other.first_ts);
                self.last_ts = self.last_ts.max(other.last_ts);
            }
        }

        self.reads += other.reads;
        self.writes += other.writes;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.updated_bytes += other.updated_bytes;
        self.peak_interval_requests = self
            .peak_interval_requests
            .max(other.peak_interval_requests);

        self.read_size_hist.merge(&other.read_size_hist);
        self.write_size_hist.merge(&other.write_size_hist);
        self.interarrival_hist.merge(&other.interarrival_hist);
        self.raw_hist.merge(&other.raw_hist);
        self.waw_hist.merge(&other.waw_hist);
        self.rar_hist.merge(&other.rar_hist);
        self.war_hist.merge(&other.war_hist);
        self.update_interval_hist.merge(&other.update_interval_hist);

        merge_sorted_unique(&mut self.active_intervals, &other.active_intervals);
        merge_sorted_unique(
            &mut self.read_active_intervals,
            &other.read_active_intervals,
        );
        merge_sorted_unique(
            &mut self.write_active_intervals,
            &other.write_active_intervals,
        );
        merge_sorted_unique(&mut self.active_days, &other.active_days);

        self.random_requests += other.random_requests;
        self.wss_blocks += other.wss_blocks;
        self.wss_read_blocks += other.wss_read_blocks;
        self.wss_write_blocks += other.wss_write_blocks;
        self.wss_update_blocks += other.wss_update_blocks;
        self.read_bytes_to_read_mostly += other.read_bytes_to_read_mostly;
        self.write_bytes_to_write_mostly += other.write_bytes_to_write_mostly;

        self.read_mrc.merge(&other.read_mrc);
        self.write_mrc.merge(&other.write_mrc);
    }
}

/// Merges two sorted-unique index vectors into one (set union).
pub(crate) fn merge_sorted_unique(mine: &mut Vec<u32>, theirs: &[u32]) {
    if theirs.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(mine.len() + theirs.len());
    let (mut i, mut j) = (0, 0);
    while i < mine.len() && j < theirs.len() {
        match mine[i].cmp(&theirs[j]) {
            std::cmp::Ordering::Less => {
                out.push(mine[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(theirs[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(mine[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&mine[i..]);
    out.extend_from_slice(&theirs[j..]);
    *mine = out;
}

/// Traffic-weighted mean of two optional top-share pairs. A `None`
/// side carries zero traffic of that kind (shares are `None` iff the
/// partition moved no such bytes), so it acts as the identity.
fn merge_weighted_shares(
    a: Option<(f64, f64)>,
    wa: u64,
    b: Option<(f64, f64)>,
    wb: u64,
) -> Option<(f64, f64)> {
    match (a, b) {
        (None, other) => other,
        (some, None) => some,
        (Some((a1, a10)), Some((b1, b10))) => {
            let (wa, wb) = (wa as f64, wb as f64);
            let total = wa + wb;
            Some(((a1 * wa + b1 * wb) / total, (a10 * wa + b10 * wb) / total))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> VolumeMetrics {
        VolumeMetrics {
            id: VolumeId::new(1),
            reads: 100,
            writes: 300,
            read_bytes: 100 * 8192,
            write_bytes: 300 * 4096,
            updated_bytes: 200 * 4096,
            first_ts: Timestamp::from_secs(0),
            last_ts: Timestamp::from_secs(400),
            peak_interval_requests: 120,
            read_size_hist: LogHistogram::default(),
            write_size_hist: LogHistogram::default(),
            interarrival_hist: LogHistogram::default(),
            active_intervals: vec![0, 1, 5],
            read_active_intervals: vec![0],
            write_active_intervals: vec![0, 1, 5],
            active_days: vec![0],
            random_requests: 100,
            wss_blocks: 1000,
            wss_read_blocks: 300,
            wss_write_blocks: 800,
            wss_update_blocks: 400,
            top_read_shares: Some((0.2, 0.5)),
            top_write_shares: Some((0.3, 0.6)),
            read_bytes_to_read_mostly: 50 * 8192,
            write_bytes_to_write_mostly: 250 * 4096,
            raw_hist: LogHistogram::default(),
            waw_hist: LogHistogram::default(),
            rar_hist: LogHistogram::default(),
            war_hist: LogHistogram::default(),
            update_interval_hist: LogHistogram::default(),
            read_mrc: MissRatioCurve::from_histogram(vec![10, 10], 5),
            write_mrc: MissRatioCurve::from_histogram(vec![40], 10),
        }
    }

    #[test]
    fn derived_intensities() {
        let m = dummy();
        let config = AnalysisConfig::default();
        assert_eq!(m.requests(), 400);
        assert_eq!(m.span(), TimeDelta::from_secs(400));
        assert_eq!(m.avg_intensity(), 1.0);
        assert_eq!(m.peak_intensity(&config), 2.0);
        assert_eq!(m.burstiness_ratio(&config), 2.0);
    }

    #[test]
    fn ratios_and_coverage() {
        let m = dummy();
        assert_eq!(m.write_read_ratio(), Some(3.0));
        assert!(m.is_write_dominant());
        assert_eq!(m.randomness_ratio(), 0.25);
        assert_eq!(m.update_coverage(), 0.4);
        assert_eq!(m.read_mostly_share(), Some(0.5));
        assert!((m.write_mostly_share().unwrap() - 250.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn active_periods() {
        let m = dummy();
        let config = AnalysisConfig::default();
        assert_eq!(m.active_period(&config), TimeDelta::from_mins(30));
        assert_eq!(m.read_active_period(&config), TimeDelta::from_mins(10));
        assert_eq!(m.write_active_period(&config), TimeDelta::from_mins(30));
    }

    #[test]
    fn mean_sizes() {
        let m = dummy();
        assert_eq!(m.mean_read_size(), Some(8192.0));
        assert_eq!(m.mean_write_size(), Some(4096.0));
        let mut no_reads = dummy();
        no_reads.reads = 0;
        assert_eq!(no_reads.mean_read_size(), None);
        assert_eq!(no_reads.write_read_ratio(), None);
    }

    #[test]
    fn cache_fractions_floor_at_one_block() {
        let mut m = dummy();
        m.wss_blocks = 10;
        assert_eq!(m.cache_blocks_for_fraction(0.01), 1);
        assert_eq!(m.cache_blocks_for_fraction(0.10), 1);
        m.wss_blocks = 1000;
        assert_eq!(m.cache_blocks_for_fraction(0.01), 10);
        assert_eq!(m.cache_blocks_for_fraction(0.10), 100);
    }

    #[test]
    fn miss_ratio_accessors() {
        let m = dummy();
        // read mrc: hits at capacity 10 = 20, total 25 → miss 0.2
        assert!((m.read_miss_ratio(0.01).unwrap() - 0.2).abs() < 1e-12);
        // write mrc: capacity 100 ≥ 1 → hits 40 of 50 → miss 0.2
        assert!((m.write_miss_ratio(0.10).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_span_guard() {
        let mut m = dummy();
        m.last_ts = m.first_ts;
        m.reads = 5;
        m.writes = 0;
        assert_eq!(m.avg_intensity(), 5.0); // counted against one second
    }
}
