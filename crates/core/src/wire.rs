//! Hand-rolled, dependency-free wire codec for the `cbs-ctl` /
//! `cbs-agent` process fan-out.
//!
//! The corpus-parallel driver ([`crate::PartitionedWorkbench`]) scales
//! across threads; these frames scale the same merge algebra across
//! *processes*: the controller partitions a corpus by volume, each
//! agent analyzes its share whole and streams the partial records
//! back, and the controller folds them with the MERGEABLE `merge`
//! laws — byte-identical to a single-process run because every volume
//! is analyzed whole under the corpus epoch.
//!
//! # Frame format
//!
//! Every message is one length-prefixed frame (all integers
//! little-endian, no external serializer):
//!
//! ```text
//! [payload_len: u32] [tag: u8] [payload: payload_len bytes]
//! ```
//!
//! | tag | name    | direction   | payload                              |
//! |-----|---------|-------------|--------------------------------------|
//! | 1   | JOB     | ctl → agent | version u8, epoch µs u64, flags u8   |
//! | 2   | VOLUME  | ctl → agent | volume id u32, n u64, n × request    |
//! | 3   | FIN     | both        | empty — end of stream                |
//! | 4   | METRICS | agent → ctl | one encoded [`VolumeMetrics`]        |
//! | 5   | SWEEP   | agent → ctl | one encoded [`SweepReport`]          |
//!
//! A request is `op u8, offset u64, len u32, ts µs u64` (the volume id
//! rides on the enclosing VOLUME frame). Composite values encode
//! field-by-field: `Option` as a `u8` flag, `f64` as IEEE-754 bits
//! (`to_bits`), strings and vectors as `u64` count + elements,
//! histograms as precision bits + non-empty `(bucket_lower, count)`
//! pairs (re-recorded on decode — bucket lower bounds land back in
//! their own buckets, so the roundtrip is bit-exact), miss-ratio
//! curves as their cumulative-hits prefix sums + total.
//!
//! The encoding is asserted roundtrip-exact by tests here and
//! end-to-end by the `agent-smoke` gate in `scripts/check.sh`.

use std::io::{Read, Write};

use cbs_analysis::VolumeMetrics;
use cbs_cache::{CacheStats, LaneReport, MissRatioCurve, SweepReport, SweepReportParts};
use cbs_stats::LogHistogram;
use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};

/// Wire protocol version carried in the JOB frame; agents reject
/// mismatches instead of mis-decoding.
pub const WIRE_VERSION: u8 = 1;

/// Largest accepted frame payload (guards against corrupt or hostile
/// length prefixes before allocating).
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// JOB frame: ctl announces version, corpus epoch and flags.
pub const TAG_JOB: u8 = 1;
/// VOLUME frame: one volume's full request stream.
pub const TAG_VOLUME: u8 = 2;
/// FIN frame: end of stream in either direction.
pub const TAG_FIN: u8 = 3;
/// METRICS frame: one per-volume partial record.
pub const TAG_METRICS: u8 = 4;
/// SWEEP frame: the agent's partial cache-sweep report.
pub const TAG_SWEEP: u8 = 5;

/// JOB flag bit: the controller also wants a cache sweep per agent.
pub const JOB_FLAG_SWEEP: u8 = 1;

/// Decode/transport failure.
#[derive(Debug)]
pub enum WireError {
    /// The payload ended before the value it was declared to hold.
    UnexpectedEof,
    /// A frame carried an unknown tag.
    BadTag(u8),
    /// A value failed validation (context in the message).
    Invalid(&'static str),
    /// The underlying socket/pipe failed.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "frame payload ended early"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            WireError::Invalid(what) => write!(f, "invalid wire value: {what}"),
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One decoded frame: tag plus raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame tag (`TAG_*`).
    pub tag: u8,
    /// The undecoded payload bytes.
    pub payload: Vec<u8>,
}

/// Writes one `[len][tag][payload]` frame.
///
/// # Errors
///
/// Returns [`WireError::Invalid`] if the payload exceeds
/// [`MAX_FRAME_LEN`], or the underlying I/O error.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or(WireError::Invalid("frame payload too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame, validating the length prefix before allocating.
///
/// # Errors
///
/// Returns the underlying I/O error (including `UnexpectedEof` from a
/// peer that hung up mid-frame) or [`WireError::Invalid`] on an
/// oversized length prefix.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Invalid("frame length prefix too large"));
    }
    let mut tag_buf = [0u8; 1];
    r.read_exact(&mut tag_buf)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame {
        tag: tag_buf[0],
        payload,
    })
}

// ---------------------------------------------------------------------------
// Primitive encoders: a growable byte sink and a bounds-checked cursor.
// ---------------------------------------------------------------------------

/// Append-only encoder over a byte vector.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact,
    /// including NaN payloads and signed zeros).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u32(x);
        }
    }
}

/// Bounds-checked decoder over a payload slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Returns an error unless every byte was consumed — a
    /// trailing-garbage guard for fixed-shape payloads.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Invalid("trailing bytes after payload"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(WireError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool byte out of range")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.len_prefix()?;
        let s = self.take(len)?;
        String::from_utf8(s.to_vec()).map_err(|_| WireError::Invalid("non-utf8 string"))
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let len = self.len_prefix()?;
        (0..len).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, WireError> {
        let len = self.len_prefix()?;
        (0..len).map(|_| self.u32()).collect()
    }

    /// Reads a `u64` length prefix, bounded by the bytes actually
    /// remaining so a corrupt prefix cannot trigger a huge allocation.
    fn len_prefix(&mut self) -> Result<usize, WireError> {
        let len = self.u64()?;
        if len > (self.buf.len() - self.pos) as u64 {
            return Err(WireError::Invalid("length prefix exceeds payload"));
        }
        Ok(len as usize)
    }
}

// ---------------------------------------------------------------------------
// Composite codecs.
// ---------------------------------------------------------------------------

fn enc_option_shares(e: &mut Enc, v: Option<(f64, f64)>) {
    match v {
        Some((a, b)) => {
            e.bool(true);
            e.f64(a);
            e.f64(b);
        }
        None => e.bool(false),
    }
}

fn dec_option_shares(d: &mut Dec<'_>) -> Result<Option<(f64, f64)>, WireError> {
    Ok(if d.bool()? {
        Some((d.f64()?, d.f64()?))
    } else {
        None
    })
}

/// Encodes a [`LogHistogram`] as precision bits + non-empty buckets.
pub fn enc_histogram(e: &mut Enc, h: &LogHistogram) {
    e.u32(h.precision_bits());
    let buckets: Vec<(u64, u64)> = h.iter_buckets().map(|(lo, _w, c)| (lo, c)).collect();
    e.u64(buckets.len() as u64);
    for (lo, c) in buckets {
        e.u64(lo);
        e.u64(c);
    }
}

/// Decodes a [`LogHistogram`]; bit-exact because each bucket's lower
/// bound indexes back into the same bucket.
pub fn dec_histogram(d: &mut Dec<'_>) -> Result<LogHistogram, WireError> {
    let bits = d.u32()?;
    if bits > 16 {
        return Err(WireError::Invalid("histogram precision out of range"));
    }
    let mut h = LogHistogram::new(bits);
    let n = d.u64()?;
    for _ in 0..n {
        let lo = d.u64()?;
        let c = d.u64()?;
        h.record_n(lo, c);
    }
    Ok(h)
}

/// Encodes a [`MissRatioCurve`] as its cumulative-hits prefix sums and
/// total access count.
pub fn enc_mrc(e: &mut Enc, mrc: &MissRatioCurve) {
    e.u64_slice(mrc.cumulative_hits());
    e.u64(mrc.total_accesses());
}

/// Decodes a [`MissRatioCurve`].
pub fn dec_mrc(d: &mut Dec<'_>) -> Result<MissRatioCurve, WireError> {
    let hits = d.u64_vec()?;
    let total = d.u64()?;
    Ok(MissRatioCurve::from_parts(hits, total))
}

/// Encodes a complete [`VolumeMetrics`] record, field by field in
/// declaration order.
pub fn enc_volume_metrics(e: &mut Enc, m: &VolumeMetrics) {
    e.u32(m.id.get());
    e.u64(m.reads);
    e.u64(m.writes);
    e.u64(m.read_bytes);
    e.u64(m.write_bytes);
    e.u64(m.updated_bytes);
    e.u64(m.first_ts.as_micros());
    e.u64(m.last_ts.as_micros());
    e.u64(m.peak_interval_requests);
    enc_histogram(e, &m.read_size_hist);
    enc_histogram(e, &m.write_size_hist);
    enc_histogram(e, &m.interarrival_hist);
    e.u32_slice(&m.active_intervals);
    e.u32_slice(&m.read_active_intervals);
    e.u32_slice(&m.write_active_intervals);
    e.u32_slice(&m.active_days);
    e.u64(m.random_requests);
    e.u64(m.wss_blocks);
    e.u64(m.wss_read_blocks);
    e.u64(m.wss_write_blocks);
    e.u64(m.wss_update_blocks);
    enc_option_shares(e, m.top_read_shares);
    enc_option_shares(e, m.top_write_shares);
    e.u64(m.read_bytes_to_read_mostly);
    e.u64(m.write_bytes_to_write_mostly);
    enc_histogram(e, &m.raw_hist);
    enc_histogram(e, &m.waw_hist);
    enc_histogram(e, &m.rar_hist);
    enc_histogram(e, &m.war_hist);
    enc_histogram(e, &m.update_interval_hist);
    enc_mrc(e, &m.read_mrc);
    enc_mrc(e, &m.write_mrc);
}

/// Decodes a [`VolumeMetrics`] record.
pub fn dec_volume_metrics(d: &mut Dec<'_>) -> Result<VolumeMetrics, WireError> {
    Ok(VolumeMetrics {
        id: VolumeId::new(d.u32()?),
        reads: d.u64()?,
        writes: d.u64()?,
        read_bytes: d.u64()?,
        write_bytes: d.u64()?,
        updated_bytes: d.u64()?,
        first_ts: Timestamp::from_micros(d.u64()?),
        last_ts: Timestamp::from_micros(d.u64()?),
        peak_interval_requests: d.u64()?,
        read_size_hist: dec_histogram(d)?,
        write_size_hist: dec_histogram(d)?,
        interarrival_hist: dec_histogram(d)?,
        active_intervals: d.u32_vec()?,
        read_active_intervals: d.u32_vec()?,
        write_active_intervals: d.u32_vec()?,
        active_days: d.u32_vec()?,
        random_requests: d.u64()?,
        wss_blocks: d.u64()?,
        wss_read_blocks: d.u64()?,
        wss_write_blocks: d.u64()?,
        wss_update_blocks: d.u64()?,
        top_read_shares: dec_option_shares(d)?,
        top_write_shares: dec_option_shares(d)?,
        read_bytes_to_read_mostly: d.u64()?,
        write_bytes_to_write_mostly: d.u64()?,
        raw_hist: dec_histogram(d)?,
        waw_hist: dec_histogram(d)?,
        rar_hist: dec_histogram(d)?,
        war_hist: dec_histogram(d)?,
        update_interval_hist: dec_histogram(d)?,
        read_mrc: dec_mrc(d)?,
        write_mrc: dec_mrc(d)?,
    })
}

fn enc_cache_stats(e: &mut Enc, s: &CacheStats) {
    e.u64(s.read_accesses());
    e.u64(s.read_hits());
    e.u64(s.write_accesses());
    e.u64(s.write_hits());
}

fn dec_cache_stats(d: &mut Dec<'_>) -> Result<CacheStats, WireError> {
    let (ra, rh) = (d.u64()?, d.u64()?);
    let (wa, wh) = (d.u64()?, d.u64()?);
    if rh > ra || wh > wa {
        return Err(WireError::Invalid("cache hits exceed accesses"));
    }
    Ok(CacheStats::from_counts(ra, rh, wa, wh))
}

fn enc_option_mrc(e: &mut Enc, v: &Option<MissRatioCurve>) {
    match v {
        Some(mrc) => {
            e.bool(true);
            enc_mrc(e, mrc);
        }
        None => e.bool(false),
    }
}

fn dec_option_mrc(d: &mut Dec<'_>) -> Result<Option<MissRatioCurve>, WireError> {
    Ok(if d.bool()? { Some(dec_mrc(d)?) } else { None })
}

/// Encodes a [`SweepReport`] via its [`SweepReportParts`].
pub fn enc_sweep_report(e: &mut Enc, report: &SweepReport) {
    let parts = report.clone().into_parts();
    e.u64(parts.lanes.len() as u64);
    for lane in &parts.lanes {
        e.str(&lane.policy);
        e.u64(lane.capacity as u64);
        e.bool(lane.sampled);
        enc_cache_stats(e, &lane.stats);
        e.u64(lane.nanos);
        e.u64(lane.accesses);
    }
    enc_option_mrc(e, &parts.lru_mrc);
    enc_option_mrc(e, &parts.sampled_mrc);
    e.u64(parts.requests);
    e.u64(parts.accesses);
    e.u64(parts.sampled_accesses);
    e.u64(parts.expand_nanos);
    e.f64(parts.sample_rate);
}

/// Decodes a [`SweepReport`].
pub fn dec_sweep_report(d: &mut Dec<'_>) -> Result<SweepReport, WireError> {
    let n = d.u64()?;
    let mut lanes = Vec::new();
    for _ in 0..n {
        lanes.push(LaneReport {
            policy: d.str()?,
            capacity: usize::try_from(d.u64()?)
                .map_err(|_| WireError::Invalid("lane capacity overflows usize"))?,
            sampled: d.bool()?,
            stats: dec_cache_stats(d)?,
            nanos: d.u64()?,
            accesses: d.u64()?,
        });
    }
    Ok(SweepReport::from_parts(SweepReportParts {
        lanes,
        lru_mrc: dec_option_mrc(d)?,
        sampled_mrc: dec_option_mrc(d)?,
        requests: d.u64()?,
        accesses: d.u64()?,
        sampled_accesses: d.u64()?,
        expand_nanos: d.u64()?,
        sample_rate: d.f64()?,
    }))
}

/// Encodes one volume's request stream as a VOLUME payload.
pub fn enc_volume_stream(e: &mut Enc, id: VolumeId, requests: &[IoRequest]) {
    e.u32(id.get());
    e.u64(requests.len() as u64);
    for r in requests {
        e.u8(match r.op() {
            OpKind::Read => 0,
            OpKind::Write => 1,
        });
        e.u64(r.offset());
        e.u32(r.len());
        e.u64(r.ts().as_micros());
    }
}

/// Decodes a VOLUME payload back into `(volume, requests)`.
pub fn dec_volume_stream(d: &mut Dec<'_>) -> Result<(VolumeId, Vec<IoRequest>), WireError> {
    let id = VolumeId::new(d.u32()?);
    let n = d.u64()?;
    // Each request occupies 21 payload bytes; bound the allocation by
    // what the payload can actually hold.
    if n > (d.buf.len() as u64) / 21 + 1 {
        return Err(WireError::Invalid("request count exceeds payload"));
    }
    let mut reqs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let op = match d.u8()? {
            0 => OpKind::Read,
            1 => OpKind::Write,
            _ => return Err(WireError::Invalid("op byte out of range")),
        };
        let offset = d.u64()?;
        let len = d.u32()?;
        let ts = Timestamp::from_micros(d.u64()?);
        reqs.push(IoRequest::new(id, op, offset, len, ts));
    }
    Ok((id, reqs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_analysis::{analyze_trace, AnalysisConfig};
    use cbs_trace::Trace;

    fn sample_metrics() -> Vec<VolumeMetrics> {
        let reqs: Vec<IoRequest> = (0..900u64)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new((i % 2) as u32),
                    if i % 3 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    ((i * 13) % 96) * 4096,
                    (((i % 4) + 1) * 4096) as u32,
                    Timestamp::from_micros(i * 50_000),
                )
            })
            .collect();
        analyze_trace(&Trace::from_requests(reqs), &AnalysisConfig::default())
            .expect("valid config")
    }

    #[test]
    fn volume_metrics_roundtrip_is_bit_exact() {
        for m in sample_metrics() {
            let mut e = Enc::new();
            enc_volume_metrics(&mut e, &m);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            let back = dec_volume_metrics(&mut d).expect("decodes");
            d.finish().expect("no trailing bytes");
            assert_eq!(back, m);
        }
    }

    #[test]
    fn volume_stream_roundtrip() {
        let reqs: Vec<IoRequest> = (0..64u64)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new(7),
                    if i % 2 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    i * 512,
                    4096,
                    Timestamp::from_micros(i),
                )
            })
            .collect();
        let mut e = Enc::new();
        enc_volume_stream(&mut e, VolumeId::new(7), &reqs);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let (id, back) = dec_volume_stream(&mut d).expect("decodes");
        d.finish().expect("no trailing bytes");
        assert_eq!(id, VolumeId::new(7));
        assert_eq!(back, reqs);
    }

    #[test]
    fn frame_roundtrip_over_a_pipe() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_JOB, &[WIRE_VERSION, 0, 0]).expect("writes");
        write_frame(&mut buf, TAG_FIN, &[]).expect("writes");
        let mut cursor = &buf[..];
        let job = read_frame(&mut cursor).expect("reads");
        assert_eq!(
            (job.tag, job.payload.as_slice()),
            (TAG_JOB, &[1u8, 0, 0][..])
        );
        let fin = read_frame(&mut cursor).expect("reads");
        assert_eq!((fin.tag, fin.payload.len()), (TAG_FIN, 0));
        assert!(cursor.is_empty());
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let m = &sample_metrics()[0];
        let mut e = Enc::new();
        enc_volume_metrics(&mut e, m);
        let bytes = e.into_bytes();
        for cut in [0, 1, 4, bytes.len() / 2, bytes.len() - 1] {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(dec_volume_metrics(&mut d).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_length_prefixes_are_rejected() {
        // Oversized frame length.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.push(TAG_JOB);
        assert!(read_frame(&mut &buf[..]).is_err());

        // Vector length prefix larger than the remaining payload.
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(d.u64_vec().is_err());
    }
}
