//! The high-level API: [`Workbench`] and [`Analysis`].

use cbs_analysis::findings::{
    activeness::{ActiveDays, ActivePeriods, ActivenessSeries},
    adjacency::AdjacencyTimes,
    aggregation::AggregationBoxplots,
    basic::TraceTotals,
    cache::LruMissRatios,
    intensity::{BurstinessDistribution, IntensitySeries, OverallIntensity},
    interarrival::InterarrivalBoxplots,
    randomness::{top_traffic_volumes, RandomnessDistribution, TrafficRandomnessPoint},
    request_size::{MeanSizeDistribution, RequestSizeDistribution},
    rw_mostly::RwMostly,
    rw_ratio::WriteReadRatios,
    update_coverage::UpdateCoverage,
    update_interval::{IntervalGroupProportions, OverallUpdateIntervals, UpdateIntervalBoxplots},
};
use cbs_analysis::{AnalysisConfig, InvalidConfig, VolumeMetrics};
use cbs_cache::{SweepGrid, SweepReport};
use cbs_trace::{Trace, VolumeId};

use crate::parallel::{analyze_trace_parallel, default_threads};

/// A trace plus an analysis configuration — the session object of the
/// workbench.
///
/// # Example
///
/// ```
/// use cbs_core::Workbench;
/// use cbs_trace::{IoRequest, OpKind, Timestamp, Trace, VolumeId};
///
/// let trace = Trace::from_requests(vec![IoRequest::new(
///     VolumeId::new(0), OpKind::Write, 0, 4096, Timestamp::ZERO,
/// )]);
/// let analysis = Workbench::new(trace).analyze();
/// assert_eq!(analysis.totals().writes, 1);
/// ```
#[derive(Debug)]
pub struct Workbench {
    trace: Trace,
    config: AnalysisConfig,
}

impl Workbench {
    /// Creates a workbench with the paper's default analysis
    /// parameters.
    pub fn new(trace: Trace) -> Self {
        Workbench {
            trace,
            config: AnalysisConfig::default(),
        }
    }

    /// Creates a workbench with custom parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if the config fails validation.
    pub fn with_config(trace: Trace, config: AnalysisConfig) -> Result<Self, InvalidConfig> {
        config.validate()?;
        Ok(Workbench { trace, config })
    }

    /// The trace under analysis.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The analysis parameters.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Characterizes every volume, fanning out across all available
    /// cores.
    pub fn analyze(self) -> Analysis {
        self.analyze_with_threads(default_threads())
    }

    /// Characterizes every volume with an explicit worker count
    /// (clamped to at least one).
    pub fn analyze_with_threads(self, threads: usize) -> Analysis {
        let metrics = match analyze_trace_parallel(&self.trace, &self.config, threads) {
            Ok(metrics) => metrics,
            // cbs-lint: allow(no-panic-in-lib) -- both constructors validate the config, so rejection is unreachable
            Err(e) => unreachable!("validated config rejected: {e}"),
        };
        Analysis {
            trace: self.trace,
            config: self.config,
            metrics,
        }
    }
}

/// A completed analysis: the per-volume metrics plus accessors building
/// every table/figure data set of the paper.
///
/// MERGEABLE: analyses with equal configs form a commutative monoid
/// under [`merge`](Analysis::merge) — traces union via
/// [`Trace::merge`], per-volume records of disjoint volumes
/// concatenate, and same-volume records fold via
/// [`VolumeMetrics::merge`] (partition-scoped; see that type's docs);
/// an empty analysis is the identity. For by-volume corpus partitions
/// every volume is analyzed whole, so the merged analysis — and every
/// finding verdict derived from it — is bit-identical to the
/// sequential whole-corpus run. This is the reduction the
/// [`crate::PartitionedWorkbench`] driver and the `cbs-ctl` process
/// fan-out fold with.
#[derive(Debug, Clone)]
pub struct Analysis {
    trace: Trace,
    config: AnalysisConfig,
    metrics: Vec<VolumeMetrics>,
}

impl Analysis {
    /// Assembles an analysis from already-computed parts — the
    /// constructor the partitioned driver and the agent/controller
    /// fan-out use once partial metrics have been merged. `metrics`
    /// is re-sorted into ascending volume-id order.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if `config` fails validation.
    pub fn from_parts(
        trace: Trace,
        config: AnalysisConfig,
        mut metrics: Vec<VolumeMetrics>,
    ) -> Result<Self, InvalidConfig> {
        config.validate()?;
        metrics.sort_by_key(|m| m.id);
        Ok(Analysis {
            trace,
            config,
            metrics,
        })
    }

    /// Folds another partition's analysis into `self` (see the type
    /// docs for the merge laws).
    ///
    /// # Panics
    ///
    /// Panics if the configs differ — partials merged across
    /// configurations would silently mix incompatible histograms.
    pub fn merge(&mut self, other: Analysis) {
        assert_eq!(
            self.config, other.config,
            "merge requires identical analysis configs"
        );
        let mine = std::mem::replace(&mut self.trace, Trace::new());
        self.trace = mine.merge(other.trace);
        merge_metrics_by_id(&mut self.metrics, other.metrics);
    }

    /// The per-volume metric records, ascending by volume id.
    pub fn metrics(&self) -> &[VolumeMetrics] {
        &self.metrics
    }

    /// The analyzed trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The analysis parameters used.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Table I — corpus totals.
    pub fn totals(&self) -> TraceTotals {
        TraceTotals::from_metrics(&self.metrics, u64::from(self.config.block_size.bytes()))
    }

    /// Fig. 2(a) — corpus-wide request-size distributions.
    pub fn request_sizes(&self) -> RequestSizeDistribution {
        RequestSizeDistribution::from_metrics(&self.metrics)
    }

    /// Fig. 2(b) — per-volume mean request-size distributions.
    pub fn mean_sizes(&self) -> MeanSizeDistribution {
        MeanSizeDistribution::from_metrics(&self.metrics)
    }

    /// Fig. 3 — active-day distribution.
    pub fn active_days(&self) -> ActiveDays {
        ActiveDays::from_metrics(&self.metrics)
    }

    /// Fig. 4 — write-to-read ratios.
    pub fn write_read_ratios(&self) -> WriteReadRatios {
        WriteReadRatios::from_metrics(&self.metrics)
    }

    /// Fig. 5 — sorted per-volume intensities.
    pub fn intensity_series(&self) -> IntensitySeries {
        IntensitySeries::from_metrics(&self.metrics, &self.config)
    }

    /// Table II — aggregate intensities (one extra pass over the
    /// trace).
    pub fn overall_intensity(&self) -> Option<OverallIntensity> {
        OverallIntensity::from_trace(&self.trace, &self.config)
    }

    /// Fig. 6 — burstiness-ratio distribution.
    pub fn burstiness(&self) -> BurstinessDistribution {
        BurstinessDistribution::from_metrics(&self.metrics, &self.config)
    }

    /// Fig. 7 — inter-arrival percentile boxplots.
    pub fn interarrival_boxplots(&self) -> InterarrivalBoxplots {
        InterarrivalBoxplots::from_metrics(&self.metrics)
    }

    /// Fig. 8 — active-volume time series.
    pub fn activeness_series(&self) -> ActivenessSeries {
        ActivenessSeries::from_metrics(&self.metrics)
    }

    /// Fig. 9 — active-period distributions.
    pub fn active_periods(&self) -> ActivePeriods {
        ActivePeriods::from_metrics(&self.metrics, &self.config)
    }

    /// Fig. 10(a) — randomness-ratio distribution.
    pub fn randomness(&self) -> RandomnessDistribution {
        RandomnessDistribution::from_metrics(&self.metrics)
    }

    /// Fig. 10(b) — the top-`k` traffic volumes with their randomness.
    pub fn top_traffic(&self, k: usize) -> Vec<TrafficRandomnessPoint> {
        top_traffic_volumes(&self.metrics, k)
    }

    /// Fig. 11 — traffic-aggregation boxplots.
    pub fn aggregation(&self) -> AggregationBoxplots {
        AggregationBoxplots::from_metrics(&self.metrics)
    }

    /// Table III + Fig. 12 — read-/write-mostly traffic shares.
    pub fn rw_mostly(&self) -> RwMostly {
        RwMostly::from_metrics(&self.metrics)
    }

    /// Table IV + Fig. 13 — update coverage.
    pub fn update_coverage(&self) -> UpdateCoverage {
        UpdateCoverage::from_metrics(&self.metrics)
    }

    /// Figs. 14-15 + Table V — adjacency times and counts.
    pub fn adjacency(&self) -> AdjacencyTimes {
        AdjacencyTimes::from_metrics(&self.metrics)
    }

    /// Table VI — overall update-interval percentiles.
    pub fn update_intervals(&self) -> OverallUpdateIntervals {
        OverallUpdateIntervals::from_metrics(&self.metrics)
    }

    /// Fig. 16 — per-volume update-interval percentile boxplots.
    pub fn update_interval_boxplots(&self) -> UpdateIntervalBoxplots {
        UpdateIntervalBoxplots::from_metrics(&self.metrics)
    }

    /// Fig. 17 — update-interval duration-group proportions.
    pub fn interval_groups(&self) -> IntervalGroupProportions {
        IntervalGroupProportions::from_metrics(&self.metrics)
    }

    /// Fig. 18 — LRU miss-ratio boxplots.
    pub fn lru_miss_ratios(&self) -> LruMissRatios {
        LruMissRatios::from_metrics(&self.metrics, &self.config)
    }

    /// Section V — per-volume design recommendations with default
    /// thresholds.
    pub fn assessments(&self) -> Vec<cbs_analysis::recommend::VolumeAssessment> {
        cbs_analysis::recommend::assess_all(&self.metrics, &self.config)
    }

    /// Runs a single-pass policy × capacity sweep over one volume's
    /// request stream (the Fig. 18 grid, generalized to arbitrary
    /// policies and capacities — see [`cbs_cache::sweep`]). The grid's
    /// block size is overridden by this analysis's configured block
    /// size so sweep results line up with
    /// [`lru_miss_ratios`](Analysis::lru_miss_ratios). Returns `None`
    /// for an unknown volume.
    pub fn sweep_volume(&self, volume: VolumeId, grid: SweepGrid) -> Option<SweepReport> {
        let view = self.trace.volume(volume)?;
        let report = grid
            .with_block_size(self.config.block_size)
            .sweep(view.requests().iter().copied());
        Some(report)
    }
}

/// Folds a list of per-volume records into a sorted-by-id list:
/// unseen volumes insert, already-present volumes merge via
/// [`VolumeMetrics::merge`]. The single merge path shared by the
/// inline fallback, the threaded partitioner, and [`Analysis::merge`].
pub(crate) fn merge_metrics_by_id(mine: &mut Vec<VolumeMetrics>, theirs: Vec<VolumeMetrics>) {
    for m in theirs {
        match mine.binary_search_by_key(&m.id, |x| x.id) {
            Ok(i) => mine[i].merge(&m),
            Err(i) => mine.insert(i, m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};

    fn workbench() -> Workbench {
        let mut reqs = Vec::new();
        for v in 0..4u32 {
            for i in 0..100u64 {
                reqs.push(IoRequest::new(
                    VolumeId::new(v),
                    if i % 4 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    (i % 20) * 4096,
                    4096,
                    Timestamp::from_secs(i * 30),
                ));
            }
        }
        Workbench::new(Trace::from_requests(reqs))
    }

    #[test]
    fn end_to_end_accessors() {
        let analysis = workbench().analyze_with_threads(2);
        assert_eq!(analysis.metrics().len(), 4);
        let totals = analysis.totals();
        assert_eq!(totals.volumes, 4);
        assert_eq!(totals.requests(), 400);
        assert!(analysis.overall_intensity().is_some());
        assert_eq!(analysis.intensity_series().avg.len(), 4);
        assert_eq!(analysis.burstiness().cdf.len(), 4);
        assert_eq!(analysis.active_days().cdf.len(), 4);
        assert!(analysis.write_read_ratios().fraction_write_dominant() > 0.9);
        assert_eq!(analysis.randomness().cdf.len(), 4);
        assert_eq!(analysis.top_traffic(2).len(), 2);
        assert!(analysis.update_coverage().median().is_some());
        assert!(
            analysis
                .adjacency()
                .count(cbs_analysis::findings::adjacency::PairKind::Waw)
                > 0
        );
        assert!(analysis.update_intervals().percentiles_hours().is_some());
        assert!(!analysis.lru_miss_ratios().write_small.is_empty());
        assert!(!analysis.aggregation().write_top1.is_empty());
        assert!(analysis.rw_mostly().overall_write_share.is_some());
        assert!(!analysis.activeness_series().active.is_empty());
        assert_eq!(analysis.active_periods().active_days.len(), 4);
        assert!(analysis.interarrival_boxplots().boxplots[0].is_some());
        assert!(analysis.request_sizes().write_p75().is_some());
        assert_eq!(analysis.mean_sizes().write_means.len(), 4);
        assert!(analysis.update_interval_boxplots().boxplots[0].is_some());
        assert!(analysis
            .interval_groups()
            .median(cbs_analysis::findings::update_interval::IntervalGroup::Under5Min)
            .is_some());
        assert_eq!(analysis.config().randomness_window, 32);
        assert_eq!(analysis.trace().volume_count(), 4);
        assert_eq!(analysis.assessments().len(), 4);
    }

    #[test]
    fn sweep_volume_runs_grid_over_one_volume() {
        let analysis = workbench().analyze();
        let grid = SweepGrid::new()
            .with_workers(0)
            .grid(&["lru", "fifo"], &[4, 32])
            .expect("valid grid");
        let report = analysis
            .sweep_volume(VolumeId::new(1), grid)
            .expect("volume 1 exists");
        // Each volume has 100 single-block requests over 20 blocks.
        assert_eq!(report.requests(), 100);
        assert_eq!(report.accesses(), 100);
        assert_eq!(report.lanes().len(), 4);
        // 20 distinct blocks per volume: capacity 32 holds the whole
        // working set, so everything past the cold misses hits.
        let warm = report.stats("lru", 32).expect("lane present");
        assert_eq!(warm.total_accesses(), 100);
        assert_eq!(warm.read_hits() + warm.write_hits(), 80);
        // Unknown volumes report None rather than an empty sweep.
        let grid = SweepGrid::new().with_workers(0);
        assert!(analysis.sweep_volume(VolumeId::new(99), grid).is_none());
    }

    #[test]
    fn with_config_validates() {
        let config = AnalysisConfig {
            rw_mostly_threshold: 2.0,
            ..AnalysisConfig::default()
        };
        let err = Workbench::with_config(Trace::new(), config).unwrap_err();
        assert!(err.message().contains("rw_mostly_threshold"));

        let ok = Workbench::with_config(Trace::new(), AnalysisConfig::default());
        assert!(ok.is_ok());
    }
}
