//! High-level facade of the *cbs-workbench*: load or synthesize a
//! block-level I/O trace, characterize it, and read out every metric of
//! the IISWC'20 cloud block storage study.
//!
//! This crate ties the substrates together:
//!
//! * [`cbs_trace`] — the data model and codecs;
//! * [`cbs_synth`] — synthetic AliCloud-like / MSRC-like corpora;
//! * [`cbs_analysis`] — the single-pass characterization engine;
//! * [`cbs_cache`] / [`cbs_stats`] — the simulation and statistics
//!   substrates.
//!
//! The entry point is [`Workbench`]:
//!
//! ```
//! use cbs_core::prelude::*;
//!
//! // Synthesize a miniature AliCloud-like corpus...
//! let config = CorpusConfig::new(12, 2, 7).with_intensity_scale(0.002);
//! let trace = cbs_synth::presets::alicloud_like(&config).generate();
//!
//! // ...and characterize it (in parallel across volumes).
//! let analysis = Workbench::new(trace).analyze();
//! assert!(analysis.metrics().len() > 0);
//!
//! // Finding 4-style question: write-dominance across volumes.
//! let ratios = analysis.write_read_ratios();
//! assert!(ratios.fraction_write_dominant() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod parallel;
pub mod partitioned;
pub mod streaming;
pub mod wire;
pub mod workbench;

pub use cbs_cache::{
    policy_by_name, CacheSweep, LaneReport, SweepError, SweepGrid, SweepReport, POLICY_NAMES,
};
pub use partitioned::PartitionedWorkbench;
pub use streaming::{StreamingSession, StreamingWorkbench};
pub use workbench::{Analysis, Workbench};

/// Convenient glob-import surface: the types almost every user of the
/// workbench touches.
pub mod prelude {
    pub use cbs_analysis::{AnalysisConfig, VolumeMetrics};
    pub use cbs_synth::presets::CorpusConfig;
    pub use cbs_trace::{
        BlockId, BlockSize, IoRequest, OpKind, TimeDelta, Timestamp, Trace, VolumeId,
    };

    pub use cbs_cache::{SweepGrid, SweepReport};

    pub use cbs_replay::{
        DirectFileBackend, FileBackend, LaneSet, MemBackend, MultiLaneReport, NullBackend, Remap,
        ReplayLaneReport, ReplayReport, Replayer, StorageBackend, Timing,
    };

    pub use crate::partitioned::PartitionedWorkbench;
    pub use crate::streaming::{StreamingSession, StreamingWorkbench};
    pub use crate::workbench::{Analysis, Workbench};
}
