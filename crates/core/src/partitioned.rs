//! The corpus-partitioned multi-core driver: [`PartitionedWorkbench`].
//!
//! [`crate::Workbench`] fans out per-volume analyzers but reduces their
//! results on one thread with plain collection; this driver is the
//! merge-algebra counterpart: workers produce *partial* per-volume
//! records and the reducer folds them through the MERGEABLE laws
//! ([`VolumeMetrics::merge`] / [`cbs_analysis::VolumeAnalyzer::merge`])
//! — the same reduction `cbs-ctl` applies across processes, exercised
//! here across threads.
//!
//! ```text
//! corpus ──► partition by volume ──► W workers ──► bounded channel ──► merge fold
//!            (each volume whole:      analyze      (partials stream     Analysis
//!             merge is exact)         volumes       back; panic ⇒
//!                                                   poison, no partial
//!                                                   Analysis escapes)
//! ```
//!
//! # Exactness
//!
//! Partitioning is **by volume**: every volume's stream is analyzed
//! whole by exactly one worker, so merged records are bit-identical to
//! the sequential path — the `workers = 0` inline fallback, any worker
//! count, and [`crate::Workbench::analyze`] all produce byte-equal
//! [`Analysis`] results and finding verdicts.
//!
//! Single-volume traces cannot be split by volume; with
//! [`with_block_split`](PartitionedWorkbench::with_block_split) the
//! driver instead partitions the volume's **block range** (CBT block
//! ids striped into contiguous ranges, requests routed by their first
//! block) and folds the per-range analyzers with
//! [`cbs_analysis::VolumeAnalyzer::merge`]. Per-block metrics stay
//! exact; stream-order state (peaks, inter-arrivals, randomness, reuse
//! distances) is partition-scoped as documented on the merge — this
//! mode trades those metrics' exactness for parallelism and is
//! therefore opt-in.
//!
//! # Failure model
//!
//! Poison parity with [`crate::StreamingSession`]: a worker panic
//! closes the results channel, the reducer drains, joins, and re-raises
//! the worker's panic — a panic-interrupted run never yields a partial
//! [`Analysis`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;

use cbs_analysis::{AnalysisConfig, InvalidConfig, VolumeAnalyzer, VolumeMetrics};
use cbs_trace::{Timestamp, Trace};

use crate::workbench::{merge_metrics_by_id, Analysis};

/// Default in-flight partial records per results channel; bounds the
/// reducer's lag behind the workers.
pub const DEFAULT_PARTIAL_DEPTH: usize = 4;

/// Builder for a corpus-partitioned analysis — see the [module
/// docs](self).
///
/// # Example
///
/// ```
/// use cbs_core::PartitionedWorkbench;
/// use cbs_trace::{IoRequest, OpKind, Timestamp, Trace, VolumeId};
///
/// let trace = Trace::from_requests((0..600u64).map(|i| {
///     IoRequest::new(
///         VolumeId::new((i % 3) as u32),
///         if i % 4 == 0 { OpKind::Read } else { OpKind::Write },
///         (i % 32) * 4096,
///         4096,
///         Timestamp::from_micros(i * 700),
///     )
/// }).collect());
/// let parallel = PartitionedWorkbench::new().with_workers(2).analyze(trace.clone());
/// let inline = PartitionedWorkbench::new().with_workers(0).analyze(trace);
/// assert_eq!(parallel.metrics(), inline.metrics());
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedWorkbench {
    config: AnalysisConfig,
    workers: usize,
    channel_depth: usize,
    block_split: bool,
}

impl Default for PartitionedWorkbench {
    fn default() -> Self {
        Self::new()
    }
}

impl PartitionedWorkbench {
    /// Creates a driver with the paper's default analysis parameters
    /// and one worker per available core.
    pub fn new() -> Self {
        PartitionedWorkbench {
            config: AnalysisConfig::default(),
            workers: crate::parallel::default_threads(),
            channel_depth: DEFAULT_PARTIAL_DEPTH,
            block_split: false,
        }
    }

    /// Uses custom analysis parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if the config fails validation.
    pub fn with_config(mut self, config: AnalysisConfig) -> Result<Self, InvalidConfig> {
        config.validate()?;
        self.config = config;
        Ok(self)
    }

    /// Sets the worker thread count. `0` selects the inline fallback:
    /// no threads, but the identical partition/merge code path — the
    /// reference the threaded runs are compared against.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets how many partial per-volume records may be in flight on
    /// the results channel (min 1) before workers block.
    #[must_use]
    pub fn with_channel_depth(mut self, depth: usize) -> Self {
        self.channel_depth = depth.max(1);
        self
    }

    /// Enables block-range partitioning for single-volume traces (see
    /// the [module docs](self) for the exactness trade-off). Off by
    /// default; has no effect on multi-volume corpora.
    #[must_use]
    pub fn with_block_split(mut self, block_split: bool) -> Self {
        self.block_split = block_split;
        self
    }

    /// Configured worker count (`0` = inline fallback).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Characterizes the corpus, partitioning across the configured
    /// workers and merging partials — bit-identical to
    /// [`crate::Workbench::analyze`] (by-volume mode).
    ///
    /// # Panics
    ///
    /// Propagates worker panics (poison parity: no partial
    /// [`Analysis`] is ever returned).
    pub fn analyze(self, trace: Trace) -> Analysis {
        let epoch = trace.start().unwrap_or(Timestamp::ZERO);
        let metrics = if self.block_split && trace.volume_count() == 1 && self.workers >= 2 {
            self.analyze_block_split(&trace, epoch)
        } else {
            self.analyze_by_volume(&trace, epoch)
        };
        match Analysis::from_parts(trace, self.config, metrics) {
            Ok(analysis) => analysis,
            // cbs-lint: allow(no-panic-in-lib) -- with_config validated the config, so rejection is unreachable
            Err(e) => unreachable!("validated config rejected: {e}"),
        }
    }

    /// By-volume partitioning: workers steal volume indices from a
    /// shared cursor, analyze each volume whole, and stream the
    /// finished record over a bounded channel to the reducer, which
    /// folds arrivals through [`merge_metrics_by_id`] as they land.
    fn analyze_by_volume(&self, trace: &Trace, epoch: Timestamp) -> Vec<VolumeMetrics> {
        let views: Vec<_> = trace.volumes().collect();
        if views.is_empty() {
            return Vec::new();
        }
        if self.workers == 0 {
            // Inline fallback: same per-volume analysis, same merge
            // fold, no threads.
            let mut merged = Vec::new();
            for view in views {
                let record = analyze_one(view, epoch, &self.config);
                merge_metrics_by_id(&mut merged, vec![record]);
            }
            return merged;
        }
        let workers = self.workers.min(views.len());
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = sync_channel::<VolumeMetrics>(self.channel_depth);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let tx = tx.clone();
                    let (views, cursor, config) = (&views, &cursor, &self.config);
                    scope.spawn(move || loop {
                        // ORDERING: the ticket counter only partitions
                        // indices; fetch_add is exact under Relaxed and
                        // the views were published before the spawn.
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= views.len() {
                            break;
                        }
                        let record = analyze_one(views[idx], epoch, config);
                        if tx.send(record).is_err() {
                            // The reducer is gone — only possible while
                            // this scope is already unwinding.
                            break;
                        }
                    })
                })
                .collect();
            drop(tx); // the reducer's rx closes once every worker exits
            let mut merged = Vec::new();
            let mut received = 0usize;
            for record in rx {
                merge_metrics_by_id(&mut merged, vec![record]);
                received += 1;
            }
            // Poison: a worker that died mid-volume closed its sender
            // without delivering; surface its panic instead of
            // returning a partial corpus.
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
            assert_eq!(received, views.len(), "a worker dropped a volume");
            merged
        })
    }

    /// Block-range partitioning for a single-volume trace: stripe the
    /// volume's CBT block-id space into `workers` contiguous ranges,
    /// route each request by its first block, analyze every range
    /// partition on its own thread, and fold the partial analyzers
    /// with [`VolumeAnalyzer::merge`].
    fn analyze_block_split(&self, trace: &Trace, epoch: Timestamp) -> Vec<VolumeMetrics> {
        let Some(view) = trace.volumes().next() else {
            return Vec::new();
        };
        let block_bytes = u64::from(self.config.block_size.bytes());
        let max_block = view
            .requests()
            .iter()
            .map(|r| (r.offset() + u64::from(r.len()).saturating_sub(1)) / block_bytes)
            .max()
            .unwrap_or(0);
        let parts = self.workers;
        let width = ((max_block + 1).div_ceil(parts as u64)).max(1);

        let mut streams: Vec<Vec<cbs_trace::IoRequest>> = vec![Vec::new(); parts];
        for req in view.requests() {
            let p = (((req.offset() / block_bytes) / width) as usize).min(parts - 1);
            streams[p].push(*req);
        }

        let partials: Vec<VolumeAnalyzer> = std::thread::scope(|scope| {
            let handles: Vec<_> = streams
                .iter()
                .map(|stream| {
                    let config = &self.config;
                    let id = view.id();
                    scope.spawn(move || {
                        let mut analyzer = match VolumeAnalyzer::new(id, epoch, config.clone()) {
                            Ok(a) => a,
                            // cbs-lint: allow(no-panic-in-lib) -- with_config validated the config, so rejection is unreachable
                            Err(e) => unreachable!("validated config rejected: {e}"),
                        };
                        for req in stream {
                            analyzer.observe(req);
                        }
                        analyzer
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(analyzer) => analyzer,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        let mut iter = partials.into_iter();
        // `parts >= 2`, so there is always a first partial.
        let Some(mut folded) = iter.next() else {
            return Vec::new();
        };
        for partial in iter {
            folded.merge(partial);
        }
        vec![folded.finish()]
    }
}

/// Analyzes one volume whole; the config was validated by the builder,
/// so rejection is unreachable.
fn analyze_one(
    view: cbs_trace::VolumeView<'_>,
    epoch: Timestamp,
    config: &AnalysisConfig,
) -> VolumeMetrics {
    match VolumeAnalyzer::analyze_volume(view, epoch, config) {
        Ok(record) => record,
        // cbs-lint: allow(no-panic-in-lib) -- with_config validated the config, so rejection is unreachable
        Err(e) => unreachable!("validated config rejected: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workbench;
    use cbs_trace::{IoRequest, OpKind, VolumeId};

    fn corpus(volumes: u32, per_volume: u64) -> Trace {
        let mut reqs = Vec::new();
        for v in 0..volumes {
            for i in 0..per_volume {
                reqs.push(IoRequest::new(
                    VolumeId::new(v),
                    if (i + u64::from(v)) % 3 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    (i % 40) * 4096,
                    ((i % 3) as u32 + 1) * 4096,
                    Timestamp::from_secs(i * 11 + u64::from(v)),
                ));
            }
        }
        Trace::from_requests(reqs)
    }

    #[test]
    fn matches_sequential_workbench_exactly() {
        let trace = corpus(7, 150);
        let sequential = Workbench::new(trace.clone()).analyze_with_threads(1);
        for workers in [0, 1, 2, 5, 16] {
            let partitioned = PartitionedWorkbench::new()
                .with_workers(workers)
                .analyze(trace.clone());
            assert_eq!(
                partitioned.metrics(),
                sequential.metrics(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn empty_trace_yields_empty_analysis() {
        let analysis = PartitionedWorkbench::new().analyze(Trace::new());
        assert!(analysis.metrics().is_empty());
        let inline = PartitionedWorkbench::new()
            .with_workers(0)
            .analyze(Trace::new());
        assert!(inline.metrics().is_empty());
    }

    #[test]
    fn block_split_keeps_per_block_metrics_exact() {
        // One volume, many blocks: block-range mode must keep every
        // per-block metric identical to sequential; stream-order
        // metrics are partition-scoped by contract.
        let reqs: Vec<IoRequest> = (0..4_000u64)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new(0),
                    if i % 5 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    ((i * 17) % 256) * 4096,
                    4096,
                    Timestamp::from_micros(i * 900),
                )
            })
            .collect();
        let trace = Trace::from_requests(reqs);
        let sequential = Workbench::new(trace.clone()).analyze_with_threads(1);
        let split = PartitionedWorkbench::new()
            .with_workers(4)
            .with_block_split(true)
            .analyze(trace);
        let (s, p) = (&sequential.metrics()[0], &split.metrics()[0]);
        assert_eq!(p.reads, s.reads);
        assert_eq!(p.writes, s.writes);
        assert_eq!(p.read_bytes, s.read_bytes);
        assert_eq!(p.write_bytes, s.write_bytes);
        assert_eq!(p.updated_bytes, s.updated_bytes);
        assert_eq!(p.first_ts, s.first_ts);
        assert_eq!(p.last_ts, s.last_ts);
        assert_eq!(p.wss_blocks, s.wss_blocks);
        assert_eq!(p.wss_read_blocks, s.wss_read_blocks);
        assert_eq!(p.wss_write_blocks, s.wss_write_blocks);
        assert_eq!(p.wss_update_blocks, s.wss_update_blocks);
        assert_eq!(p.read_size_hist, s.read_size_hist);
        assert_eq!(p.write_size_hist, s.write_size_hist);
        assert_eq!(p.raw_hist, s.raw_hist);
        assert_eq!(p.waw_hist, s.waw_hist);
        assert_eq!(p.rar_hist, s.rar_hist);
        assert_eq!(p.war_hist, s.war_hist);
        assert_eq!(p.update_interval_hist, s.update_interval_hist);
        assert_eq!(p.top_read_shares, s.top_read_shares);
        assert_eq!(p.top_write_shares, s.top_write_shares);
        assert_eq!(p.active_intervals, s.active_intervals);
        assert_eq!(p.active_days, s.active_days);
    }

    #[test]
    fn block_split_ignored_for_multi_volume_corpora() {
        let trace = corpus(3, 60);
        let sequential = Workbench::new(trace.clone()).analyze_with_threads(1);
        let partitioned = PartitionedWorkbench::new()
            .with_workers(4)
            .with_block_split(true)
            .analyze(trace);
        assert_eq!(partitioned.metrics(), sequential.metrics());
    }

    #[test]
    fn channel_depth_does_not_change_results() {
        let trace = corpus(5, 80);
        let a = PartitionedWorkbench::new()
            .with_workers(3)
            .with_channel_depth(1)
            .analyze(trace.clone());
        let b = PartitionedWorkbench::new()
            .with_workers(3)
            .with_channel_depth(64)
            .analyze(trace);
        assert_eq!(a.metrics(), b.metrics());
    }
}
