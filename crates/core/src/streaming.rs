//! Sharded streaming analysis: [`StreamingWorkbench`] and
//! [`StreamingSession`].
//!
//! The batch [`crate::Workbench`] materializes the whole trace before
//! fanning out per-volume analyzers. This module provides the one-pass
//! alternative: requests flow from any producer (a
//! [`cbs_trace::ParallelDecoder`] sink, a lazy synthetic corpus stream,
//! a custom reader) straight into per-volume [`VolumeAnalyzer`]s that
//! live on shard worker threads, so peak memory is bounded by the
//! analyzers' own per-volume state (O(volumes + working-set blocks)),
//! independent of trace length.
//!
//! ```text
//! producer (caller thread)        S shard workers
//! ┌────────────────────────┐  bounded  ┌──────────────────────────┐
//! │ observe(req)           │  channels │ HashMap<VolumeId,        │
//! │  route: volume → shard │ ────────► │         VolumeAnalyzer>  │
//! │  buffer per shard,     │ (batches) │ observe() each record    │
//! │  flush at batch_size   │           │ finish() on close        │
//! └────────────────────────┘           └──────────────────────────┘
//! ```
//!
//! # Ordering contract
//!
//! Each volume's requests must be **observed in non-decreasing
//! timestamp order**. Requests of different volumes may interleave
//! arbitrarily — routing assigns every volume to exactly one shard and
//! each shard consumes its bounded channel in send order, so per-volume
//! order is preserved end to end (violations panic in debug builds, in
//! the analyzer's `observe`). Both supported producers satisfy the
//! contract by construction: decoded AliCloud/MSRC traces are globally
//! time-sorted on disk, and [`cbs_synth`]'s corpus streams are emitted
//! in global time order.
//!
//! # Equivalence with the batch path
//!
//! With the same epoch, the per-volume metrics are **identical** to
//! [`crate::Workbench::analyze`] — the same `VolumeAnalyzer` runs over
//! the same per-volume sequences; only the driving loop differs. The
//! batch path anchors interval/day indices at `trace.start()`, so the
//! session uses the first observed timestamp as the epoch by default
//! (correct for any globally time-ordered stream) and offers
//! [`StreamingWorkbench::with_epoch`] for producers that interleave
//! volumes without global time order.

use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use cbs_analysis::{AnalysisConfig, InvalidConfig, VolumeAnalyzer, VolumeMetrics};
use cbs_trace::{IoRequest, Timestamp, VolumeId};

/// Default number of requests buffered per shard before a batch is
/// sent to the worker.
pub const DEFAULT_BATCH_SIZE: usize = 8192;

/// In-flight batches allowed per shard channel; combined with
/// `batch_size` this bounds the pipeline's buffered requests at
/// `shards × (CHANNEL_DEPTH + 1) × batch_size`.
const CHANNEL_DEPTH: usize = 4;

/// Builder for a sharded streaming analysis.
///
/// # Example
///
/// ```
/// use cbs_core::StreamingWorkbench;
/// use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};
///
/// let metrics = StreamingWorkbench::new().analyze((0..1000u64).map(|i| {
///     IoRequest::new(
///         VolumeId::new((i % 7) as u32),
///         if i % 3 == 0 { OpKind::Read } else { OpKind::Write },
///         (i % 40) * 4096,
///         4096,
///         Timestamp::from_micros(i * 500),
///     )
/// }));
/// assert_eq!(metrics.len(), 7);
/// assert_eq!(metrics.iter().map(|m| m.requests()).sum::<u64>(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingWorkbench {
    config: AnalysisConfig,
    shards: usize,
    batch_size: usize,
    epoch: Option<Timestamp>,
}

impl Default for StreamingWorkbench {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingWorkbench {
    /// Creates a builder with the paper's default analysis parameters,
    /// one shard per available core, and the default batch size.
    pub fn new() -> Self {
        StreamingWorkbench {
            config: AnalysisConfig::default(),
            shards: crate::parallel::default_threads(),
            batch_size: DEFAULT_BATCH_SIZE,
            epoch: None,
        }
    }

    /// Uses custom analysis parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if the config fails validation.
    pub fn with_config(mut self, config: AnalysisConfig) -> Result<Self, InvalidConfig> {
        config.validate()?;
        self.config = config;
        Ok(self)
    }

    /// Sets the number of shard worker threads (min 1). Volumes are
    /// routed to shards by `volume id mod shards`.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets how many requests are buffered per shard before a batch is
    /// flushed to the worker (min 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Anchors interval/day indices at an explicit epoch instead of the
    /// first observed timestamp. Required for batch-equivalent metrics
    /// when the stream is *not* globally time-ordered (e.g. volume-major
    /// feeding): pass the batch trace's `start()`.
    #[must_use]
    pub fn with_epoch(mut self, epoch: Timestamp) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Spawns the shard workers and returns the push-style session.
    pub fn start(self) -> StreamingSession {
        let mut senders = Vec::with_capacity(self.shards);
        let mut handles = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let (tx, rx) = sync_channel::<Batch>(CHANNEL_DEPTH);
            let config = self.config.clone();
            senders.push(tx);
            handles.push(std::thread::spawn(move || shard_worker(rx, config)));
        }
        StreamingSession {
            buffers: senders.iter().map(|_| Vec::new()).collect(),
            senders,
            handles,
            batch_size: self.batch_size,
            epoch: self.epoch,
            observed: 0,
        }
    }

    /// Convenience: runs a whole request stream through a session and
    /// returns the per-volume metrics in ascending volume-id order.
    pub fn analyze<I>(self, stream: I) -> Vec<VolumeMetrics>
    where
        I: IntoIterator<Item = IoRequest>,
    {
        let mut session = self.start();
        for req in stream {
            session.observe(req);
        }
        session.finish()
    }
}

/// One routed unit of work: the epoch every lazily-created analyzer in
/// the batch must anchor to, plus the records.
type Batch = (Timestamp, Vec<IoRequest>);

/// A running sharded analysis accepting pushed requests — see
/// [`StreamingWorkbench::start`].
///
/// Dropping a session without calling
/// [`finish`](StreamingSession::finish) abandons the workers' results
/// but does not leak threads (channels close, workers drain and exit).
#[derive(Debug)]
pub struct StreamingSession {
    senders: Vec<SyncSender<Batch>>,
    buffers: Vec<Vec<IoRequest>>,
    handles: Vec<JoinHandle<Vec<VolumeMetrics>>>,
    batch_size: usize,
    epoch: Option<Timestamp>,
    observed: u64,
}

impl StreamingSession {
    /// Routes one request to its volume's shard. Blocks (backpressure)
    /// when the shard's channel is full.
    pub fn observe(&mut self, req: IoRequest) {
        if self.epoch.is_none() {
            // First record of a globally time-ordered stream = the
            // batch path's `trace.start()`.
            self.epoch = Some(req.ts());
        }
        let shard = req.volume().as_usize() % self.senders.len();
        self.observed += 1;
        self.buffers[shard].push(req);
        if self.buffers[shard].len() >= self.batch_size {
            self.flush(shard);
        }
    }

    /// Observes every request of a batch (e.g. a decoded chunk from
    /// [`cbs_trace::ParallelDecoder`]).
    pub fn observe_batch(&mut self, batch: Vec<IoRequest>) {
        for req in batch {
            self.observe(req);
        }
    }

    /// Number of requests observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    fn flush(&mut self, shard: usize) {
        if self.buffers[shard].is_empty() {
            return;
        }
        // `observe` sets the epoch before buffering anything, so a
        // non-empty buffer implies the epoch is known.
        let Some(epoch) = self.epoch else { return };
        let batch = std::mem::take(&mut self.buffers[shard]);
        // A send fails only when the worker is gone, i.e. it panicked;
        // the panic is re-raised when `finish` joins the worker, so the
        // lost batch is irrelevant here.
        let _ = self.senders[shard].send((epoch, batch));
    }

    /// Flushes all buffers, waits for the shard workers, and returns
    /// the per-volume metrics in ascending volume-id order.
    ///
    /// # Panics
    ///
    /// Propagates panics from shard workers (e.g. the analyzer's
    /// debug-build ordering assertions).
    pub fn finish(mut self) -> Vec<VolumeMetrics> {
        for shard in 0..self.senders.len() {
            self.flush(shard);
        }
        drop(std::mem::take(&mut self.senders)); // close channels
        let mut metrics: Vec<VolumeMetrics> = Vec::new();
        for handle in self.handles.drain(..) {
            match handle.join() {
                Ok(shard_metrics) => metrics.extend(shard_metrics),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        metrics.sort_by_key(|m| m.id);
        metrics
    }
}

/// Shard worker loop: lazily create one analyzer per volume, feed it
/// every routed record, and emit the finished metrics when the channel
/// closes.
fn shard_worker(rx: Receiver<Batch>, config: AnalysisConfig) -> Vec<VolumeMetrics> {
    let mut analyzers: HashMap<VolumeId, VolumeAnalyzer> = HashMap::new();
    for (epoch, batch) in rx {
        for req in batch {
            match analyzers.get_mut(&req.volume()) {
                Some(analyzer) => analyzer.observe(&req),
                // `with_config` validated the config, so the
                // constructor cannot be rejected here.
                None => {
                    if let Ok(mut analyzer) =
                        VolumeAnalyzer::new(req.volume(), epoch, config.clone())
                    {
                        analyzer.observe(&req);
                        analyzers.insert(req.volume(), analyzer);
                    }
                }
            }
        }
    }
    analyzers
        .into_values()
        .map(VolumeAnalyzer::finish)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workbench;
    use cbs_trace::{OpKind, Trace};

    fn time_ordered_requests(volumes: u32, per_volume: u64) -> Vec<IoRequest> {
        let mut reqs = Vec::new();
        for i in 0..per_volume {
            for v in 0..volumes {
                reqs.push(IoRequest::new(
                    VolumeId::new(v),
                    if (i + u64::from(v)) % 3 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    (i % 50) * 4096,
                    4096,
                    Timestamp::from_secs(i * 7 + u64::from(v)),
                ));
            }
        }
        reqs
    }

    #[test]
    fn matches_batch_workbench() {
        let reqs = time_ordered_requests(9, 300);
        let batch = Workbench::new(Trace::from_requests(reqs.clone())).analyze();
        for shards in [1, 3, 8] {
            let streaming = StreamingWorkbench::new()
                .with_shards(shards)
                .with_batch_size(64)
                .analyze(reqs.iter().copied());
            assert_eq!(streaming, batch.metrics(), "shards={shards}");
        }
    }

    #[test]
    fn volume_major_feed_with_explicit_epoch() {
        // Feeding volume-major (all of volume 0, then volume 1, ...)
        // breaks the first-timestamp epoch inference; with the batch
        // trace's start as the explicit epoch the metrics still match.
        let trace = Trace::from_requests(time_ordered_requests(5, 100));
        let epoch = trace.start().unwrap();
        let volume_major: Vec<IoRequest> = trace.requests().to_vec();
        let streaming = StreamingWorkbench::new()
            .with_shards(2)
            .with_epoch(epoch)
            .analyze(volume_major);
        let batch = Workbench::new(trace).analyze();
        assert_eq!(streaming, batch.metrics());
    }

    #[test]
    fn empty_stream() {
        let metrics = StreamingWorkbench::new().analyze(std::iter::empty());
        assert!(metrics.is_empty());
    }

    #[test]
    fn observe_batch_counts() {
        let reqs = time_ordered_requests(3, 10);
        let mut session = StreamingWorkbench::new().with_shards(2).start();
        session.observe_batch(reqs.clone());
        assert_eq!(session.observed(), 30);
        let metrics = session.finish();
        assert_eq!(metrics.iter().map(|m| m.requests()).sum::<u64>(), 30);
        // ascending volume-id order
        assert!(metrics.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn single_shard_single_request() {
        let metrics = StreamingWorkbench::new()
            .with_shards(1)
            .with_batch_size(1)
            .analyze(std::iter::once(IoRequest::new(
                VolumeId::new(3),
                OpKind::Write,
                0,
                4096,
                Timestamp::from_secs(1),
            )));
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].writes, 1);
    }
}
