//! Sharded streaming analysis: [`StreamingWorkbench`] and
//! [`StreamingSession`].
//!
//! The batch [`crate::Workbench`] materializes the whole trace before
//! fanning out per-volume analyzers. This module provides the one-pass
//! alternative: requests flow from any producer (a
//! [`cbs_trace::ParallelDecoder`] sink, a lazy synthetic corpus stream,
//! a CBT reader, a custom source) straight into per-volume
//! [`VolumeAnalyzer`]s that live on shard worker threads, so peak
//! memory is bounded by the analyzers' own per-volume state
//! (O(volumes + working-set blocks)), independent of trace length.
//!
//! ```text
//! producer (caller thread)        S shard workers
//! ┌────────────────────────┐  bounded  ┌──────────────────────────┐
//! │ observe(req)           │  channels │ FxHashMap<VolumeId,      │
//! │  route: volume → shard │ ────────► │         VolumeAnalyzer>  │
//! │  SoA buffer per shard, │ (Request- │ observe_batch() over     │
//! │  flush at batch_size   │  Batches) │ per-volume runs          │
//! └────────────────────────┘           └──────────────────────────┘
//! ```
//!
//! Shard channels carry [`RequestBatch`]es (struct-of-arrays), so a
//! batch handoff moves five dense columns instead of an array of
//! request structs, and workers can feed analyzers through the
//! [`VolumeAnalyzer::observe_batch`] fast path one per-volume run at a
//! time.
//!
//! # Ordering contract
//!
//! Each volume's requests must be **observed in non-decreasing
//! timestamp order**. Requests of different volumes may interleave
//! arbitrarily — routing assigns every volume to exactly one shard and
//! each shard consumes its bounded channel in send order, so per-volume
//! order is preserved end to end (violations panic in debug builds, in
//! the analyzer's `observe`). Both supported producers satisfy the
//! contract by construction: decoded AliCloud/MSRC traces are globally
//! time-sorted on disk, and [`cbs_synth`]'s corpus streams are emitted
//! in global time order.
//!
//! # Equivalence with the batch path
//!
//! With the same epoch, the per-volume metrics are **identical** to
//! [`crate::Workbench::analyze`] — the same `VolumeAnalyzer` runs over
//! the same per-volume sequences; only the driving loop differs
//! (`observe_batch` is bit-equivalent to per-request `observe`). The
//! batch path anchors interval/day indices at `trace.start()`, so the
//! session uses the first observed timestamp as the epoch by default
//! (correct for any globally time-ordered stream) and offers
//! [`StreamingWorkbench::with_epoch`] for producers that interleave
//! volumes without global time order.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;

use cbs_analysis::{AnalysisConfig, InvalidConfig, VolumeAnalyzer, VolumeMetrics};
use cbs_obs::{Counter, Gauge, Registry, Stopwatch};
use cbs_trace::hash::FxHashMap;
use cbs_trace::{IoRequest, RequestBatch, Timestamp, VolumeId};

/// Default number of requests buffered per shard before a batch is
/// sent to the worker.
///
/// Chosen from the `streaming_tuning` bench in `cbs-bench`: on the
/// synthetic AliCloud-like corpus, throughput is flat from 4 Ki to
/// 32 Ki and degrades below 1 Ki (per-batch handoff overhead) — 8 Ki
/// keeps the pipeline's buffered footprint small without measurable
/// cost.
pub const DEFAULT_BATCH_SIZE: usize = 8192;

/// Default in-flight batches allowed per shard channel; combined with
/// `batch_size` this bounds the pipeline's buffered requests at
/// `shards × (channel_depth + 1) × batch_size`.
///
/// Also picked from the `streaming_tuning` bench: depth 2–8 measures
/// identically (the pipeline is compute-bound, not handoff-bound);
/// 4 leaves slack for scheduling hiccups without hoarding memory.
pub const DEFAULT_CHANNEL_DEPTH: usize = 4;

/// Builder for a sharded streaming analysis.
///
/// # Example
///
/// ```
/// use cbs_core::StreamingWorkbench;
/// use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};
///
/// let metrics = StreamingWorkbench::new().analyze((0..1000u64).map(|i| {
///     IoRequest::new(
///         VolumeId::new((i % 7) as u32),
///         if i % 3 == 0 { OpKind::Read } else { OpKind::Write },
///         (i % 40) * 4096,
///         4096,
///         Timestamp::from_micros(i * 500),
///     )
/// }));
/// assert_eq!(metrics.len(), 7);
/// assert_eq!(metrics.iter().map(|m| m.requests()).sum::<u64>(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingWorkbench {
    config: AnalysisConfig,
    shards: usize,
    batch_size: usize,
    channel_depth: usize,
    epoch: Option<Timestamp>,
    registry: Option<Registry>,
}

impl Default for StreamingWorkbench {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingWorkbench {
    /// Creates a builder with the paper's default analysis parameters,
    /// one shard per available core, and the default batch size and
    /// channel depth.
    pub fn new() -> Self {
        StreamingWorkbench {
            config: AnalysisConfig::default(),
            shards: crate::parallel::default_threads(),
            batch_size: DEFAULT_BATCH_SIZE,
            channel_depth: DEFAULT_CHANNEL_DEPTH,
            epoch: None,
            registry: None,
        }
    }

    /// Uses custom analysis parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if the config fails validation.
    pub fn with_config(mut self, config: AnalysisConfig) -> Result<Self, InvalidConfig> {
        config.validate()?;
        self.config = config;
        Ok(self)
    }

    /// Sets the number of shard worker threads (min 1). Volumes are
    /// assigned to shards on first touch, each new volume joining the
    /// shard with the least routed traffic so far (skew-aware: one hot
    /// volume no longer drags every volume sharing its residue class
    /// onto the same worker, as the old `id mod shards` routing did).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets how many requests are buffered per shard before a batch is
    /// flushed to the worker (min 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Sets how many flushed batches may be in flight per shard channel
    /// (min 1) before the producer blocks on backpressure.
    #[must_use]
    pub fn with_channel_depth(mut self, depth: usize) -> Self {
        self.channel_depth = depth.max(1);
        self
    }

    /// Anchors interval/day indices at an explicit epoch instead of the
    /// first observed timestamp. Required for batch-equivalent metrics
    /// when the stream is *not* globally time-ordered (e.g. volume-major
    /// feeding): pass the batch trace's `start()`.
    #[must_use]
    pub fn with_epoch(mut self, epoch: Timestamp) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Publishes pipeline metrics into `registry`: per session
    /// `stream.observed`, `stream.batches`,
    /// `stream.backpressure_nanos` (time the producer spent blocked on
    /// full shard channels), and the `stream.shards` gauge (the
    /// configured shard count, so exported metric sets are
    /// self-describing), plus per shard `stream.shard<i>.requests`,
    /// `.batches`, `.analyze_nanos` (worker time spent feeding
    /// analyzers), `.inflight` (current channel depth), and
    /// `.inflight_hwm` (its high-water mark).
    ///
    /// All recording happens at *batch* granularity (one flushed batch =
    /// a handful of relaxed atomic adds and, only when the channel is
    /// actually full, one stopwatch), so attaching a registry has no
    /// measurable throughput cost — see `EXPERIMENTS.md`.
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Configured per-shard flush threshold.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Configured per-shard channel depth.
    pub fn channel_depth(&self) -> usize {
        self.channel_depth
    }

    /// Spawns the shard workers and returns the push-style session.
    pub fn start(self) -> StreamingSession {
        let metrics = self
            .registry
            .as_ref()
            .map(|r| SessionMetrics::new(r, self.shards));
        let mut senders = Vec::with_capacity(self.shards);
        let mut handles = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (tx, rx) = sync_channel::<Batch>(self.channel_depth);
            let config = self.config.clone();
            let worker_metrics = metrics.as_ref().map(|m| m.worker(shard));
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                shard_worker(rx, config, worker_metrics)
            }));
        }
        StreamingSession {
            buffers: senders.iter().map(|_| RequestBatch::new()).collect(),
            shard_loads: vec![0; senders.len()],
            senders,
            handles,
            batch_size: self.batch_size,
            epoch: self.epoch,
            observed: 0,
            poisoned: false,
            route: FxHashMap::default(),
            last_route: None,
            metrics,
        }
    }

    /// Convenience: runs a whole request stream through a session and
    /// returns the per-volume metrics in ascending volume-id order.
    pub fn analyze<I>(self, stream: I) -> Vec<VolumeMetrics>
    where
        I: IntoIterator<Item = IoRequest>,
    {
        let mut session = self.start();
        for req in stream {
            session.observe(req);
        }
        session.finish()
    }
}

/// One routed unit of work: the epoch every lazily-created analyzer in
/// the batch must anchor to, plus the records as dense columns.
type Batch = (Timestamp, RequestBatch);

/// Producer-side handles into the session's registry (see
/// [`StreamingWorkbench::with_registry`] for the metric names).
#[derive(Debug)]
struct SessionMetrics {
    observed: Counter,
    batches: Counter,
    backpressure_nanos: Counter,
    registry: Registry,
    inflight: Vec<Gauge>,
    inflight_hwm: Vec<Gauge>,
}

impl SessionMetrics {
    fn new(registry: &Registry, shards: usize) -> Self {
        registry.gauge("stream.shards").set(shards as u64);
        SessionMetrics {
            observed: registry.counter("stream.observed"),
            batches: registry.counter("stream.batches"),
            backpressure_nanos: registry.counter("stream.backpressure_nanos"),
            registry: registry.clone(),
            inflight: (0..shards)
                .map(|s| registry.gauge(&format!("stream.shard{s}.inflight")))
                .collect(),
            inflight_hwm: (0..shards)
                .map(|s| registry.gauge(&format!("stream.shard{s}.inflight_hwm")))
                .collect(),
        }
    }

    /// Handles for one shard worker thread.
    fn worker(&self, shard: usize) -> WorkerMetrics {
        WorkerMetrics {
            requests: self
                .registry
                .counter(&format!("stream.shard{shard}.requests")),
            batches: self
                .registry
                .counter(&format!("stream.shard{shard}.batches")),
            analyze_nanos: self
                .registry
                .counter(&format!("stream.shard{shard}.analyze_nanos")),
            inflight: self.inflight[shard].clone(),
        }
    }
}

/// Worker-side handles; cloned into the shard thread.
#[derive(Debug)]
struct WorkerMetrics {
    requests: Counter,
    batches: Counter,
    analyze_nanos: Counter,
    inflight: Gauge,
}

/// A running sharded analysis accepting pushed requests — see
/// [`StreamingWorkbench::start`].
///
/// Dropping a session without calling
/// [`finish`](StreamingSession::finish) abandons the workers' results
/// but does not leak threads (channels close, workers drain and exit).
#[derive(Debug)]
pub struct StreamingSession {
    senders: Vec<SyncSender<Batch>>,
    buffers: Vec<RequestBatch>,
    handles: Vec<JoinHandle<Vec<VolumeMetrics>>>,
    batch_size: usize,
    epoch: Option<Timestamp>,
    observed: u64,
    poisoned: bool,
    /// Sticky volume → shard assignment built on first touch (see
    /// [`route_volume`](Self::route_volume)).
    route: FxHashMap<VolumeId, u32>,
    /// Requests routed to each shard so far — the load signal driving
    /// first-touch assignment.
    shard_loads: Vec<u64>,
    /// One-entry route cache: consecutive requests overwhelmingly share
    /// a volume, so most routes skip the hash lookup entirely.
    last_route: Option<(VolumeId, u32)>,
    metrics: Option<SessionMetrics>,
}

impl StreamingSession {
    /// Routes one request to its volume's shard. Blocks (backpressure)
    /// when the shard's channel is full.
    ///
    /// # Panics
    ///
    /// If a shard worker has died, the flush that discovers it re-raises
    /// the worker's panic on this thread (see
    /// [`is_poisoned`](StreamingSession::is_poisoned)); observing on an
    /// already-poisoned session panics immediately.
    pub fn observe(&mut self, req: IoRequest) {
        assert!(
            !self.poisoned,
            "streaming session is poisoned: a shard worker panicked"
        );
        if self.epoch.is_none() {
            // First record of a globally time-ordered stream = the
            // batch path's `trace.start()`.
            self.epoch = Some(req.ts());
        }
        let shard = self.route_volume(req.volume());
        self.observed += 1;
        self.buffers[shard].push(&req);
        if self.buffers[shard].len() >= self.batch_size {
            self.flush(shard);
        }
    }

    /// Observes every request of a decoded chunk (e.g. a
    /// [`cbs_trace::ParallelDecoder`] sink batch).
    pub fn observe_batch(&mut self, batch: Vec<IoRequest>) {
        for req in batch {
            self.observe(req);
        }
    }

    /// Observes every record of a columnar batch (e.g. straight from a
    /// [`cbs_trace::CbtReader`] block), routing by the volume column
    /// without materializing per-request structs.
    pub fn observe_request_batch(&mut self, batch: &RequestBatch) {
        self.observe_request_batch_ref(batch.as_ref());
    }

    /// Observes every record of a *borrowed* columnar batch (e.g. a
    /// [`cbs_trace::CbtSliceReader`] lending slices decoded in place) —
    /// the zero-copy ingest path: records flow from the mapped file
    /// into the per-shard buffers without an intermediate owned batch.
    pub fn observe_request_batch_ref(&mut self, batch: cbs_trace::RequestBatchRef<'_>) {
        assert!(
            !self.poisoned,
            "streaming session is poisoned: a shard worker panicked"
        );
        if batch.is_empty() {
            return;
        }
        if self.epoch.is_none() {
            self.epoch = Some(batch.timestamps()[0]);
        }
        let volumes = batch.volumes();
        let ops = batch.ops();
        let offsets = batch.offsets();
        let lens = batch.lens();
        let timestamps = batch.timestamps();
        for i in 0..batch.len() {
            let shard = self.route_volume(volumes[i]);
            self.observed += 1;
            self.buffers[shard].push_fields(volumes[i], ops[i], offsets[i], lens[i], timestamps[i]);
            if self.buffers[shard].len() >= self.batch_size {
                self.flush(shard);
            }
        }
    }

    /// Number of requests observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Returns the shard owning `volume`, assigning one on first touch.
    ///
    /// Assignment is **skew-aware**: a newly seen volume joins the
    /// shard with the least traffic routed so far (ties to the lowest
    /// shard id), so a hot volume fills its shard's load counter and
    /// pushes later arrivals elsewhere — unlike static `id mod shards`
    /// routing, which pinned every volume of a residue class to the
    /// hot volume's worker. The assignment is sticky for the whole
    /// session, so each volume's full stream still reaches exactly one
    /// worker in send order: the per-volume in-order guarantee — and
    /// with it bit-identical metrics — is unchanged.
    #[inline]
    fn route_volume(&mut self, volume: VolumeId) -> usize {
        if let Some((v, s)) = self.last_route {
            if v == volume {
                self.shard_loads[s as usize] += 1;
                return s as usize;
            }
        }
        let shard = match self.route.entry(volume) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let lightest = self
                    .shard_loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &load)| load)
                    .map_or(0, |(s, _)| s);
                *e.insert(lightest as u32)
            }
        };
        self.last_route = Some((volume, shard));
        self.shard_loads[shard as usize] += 1;
        shard as usize
    }

    /// `true` once a shard worker's death has been detected. A poisoned
    /// session re-raised the worker's panic already (observable only if
    /// the caller caught it); every further `observe*`/`finish` call
    /// panics rather than computing on a partial stream.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn flush(&mut self, shard: usize) {
        if self.buffers[shard].is_empty() {
            return;
        }
        // `observe` sets the epoch before buffering anything, so a
        // non-empty buffer implies the epoch is known.
        let Some(epoch) = self.epoch else { return };
        let batch = std::mem::take(&mut self.buffers[shard]);
        let sent = match &self.metrics {
            None => self.senders[shard].send((epoch, batch)).is_ok(),
            Some(m) => {
                m.observed.add(batch.len() as u64);
                m.batches.inc();
                let depth = m.inflight[shard].inc();
                m.inflight_hwm[shard].record_max(depth);
                // Only a full channel pays for a stopwatch: try first,
                // and time just the blocking retry.
                match self.senders[shard].try_send((epoch, batch)) {
                    Ok(()) => true,
                    Err(TrySendError::Disconnected(_)) => false,
                    Err(TrySendError::Full(batch)) => {
                        let clock = Stopwatch::start();
                        let sent = self.senders[shard].send(batch).is_ok();
                        m.backpressure_nanos.add(clock.elapsed_nanos());
                        sent
                    }
                }
            }
        };
        if !sent {
            self.poison(shard);
        }
    }

    /// A send failed, which can only mean the shard's receiver is gone:
    /// the worker died (it never drops the receiver before draining the
    /// channel). Surface its panic on the producer thread *now* — within
    /// one batch flush of the death — instead of analyzing the rest of
    /// the stream against dead shards and only failing at `finish`.
    #[cold]
    fn poison(&mut self, shard: usize) -> ! {
        self.poisoned = true;
        // Closing every channel lets the surviving workers drain and
        // exit; their results are abandoned (all-or-error).
        self.senders.clear();
        let handle = self.handles.swap_remove(shard);
        match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            // cbs-lint: allow(no-panic-in-lib) -- a worker exiting cleanly while its channel is open is impossible by construction
            Ok(_) => panic!("shard worker {shard} exited before its channel closed"),
        }
    }

    /// Flushes all buffers, waits for the shard workers, and returns
    /// the per-volume metrics in ascending volume-id order.
    ///
    /// # Panics
    ///
    /// Propagates panics from shard workers (e.g. the analyzer's
    /// debug-build ordering assertions), and panics on a poisoned
    /// session — a panic-interrupted stream never yields partial
    /// metrics.
    pub fn finish(mut self) -> Vec<VolumeMetrics> {
        assert!(
            !self.poisoned,
            "streaming session is poisoned: a shard worker panicked; \
             its metrics would be partial"
        );
        for shard in 0..self.senders.len() {
            self.flush(shard);
        }
        drop(std::mem::take(&mut self.senders)); // close channels
        let mut metrics: Vec<VolumeMetrics> = Vec::new();
        for handle in self.handles.drain(..) {
            match handle.join() {
                Ok(shard_metrics) => metrics.extend(shard_metrics),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        metrics.sort_by_key(|m| m.id);
        metrics
    }
}

/// Shard worker loop: lazily create one analyzer per volume and feed
/// it through [`VolumeAnalyzer::observe_batch`], one consecutive
/// same-volume run at a time (one hash lookup per run); emit the
/// finished metrics when the channel closes.
fn shard_worker(
    rx: Receiver<Batch>,
    config: AnalysisConfig,
    metrics: Option<WorkerMetrics>,
) -> Vec<VolumeMetrics> {
    let mut analyzers: FxHashMap<VolumeId, VolumeAnalyzer> = FxHashMap::default();
    for (epoch, batch) in rx {
        let clock = metrics.as_ref().map(|m| {
            m.inflight.dec();
            m.batches.inc();
            m.requests.add(batch.len() as u64);
            Stopwatch::start()
        });
        let volumes = batch.volumes();
        let mut start = 0usize;
        for i in 1..=volumes.len() {
            if i != volumes.len() && volumes[i] == volumes[start] {
                continue;
            }
            let volume = volumes[start];
            match analyzers.get_mut(&volume) {
                Some(analyzer) => analyzer.observe_batch(&batch, start..i),
                // `with_config` validated the config, so the
                // constructor cannot be rejected here.
                None => {
                    if let Ok(mut analyzer) = VolumeAnalyzer::new(volume, epoch, config.clone()) {
                        analyzer.observe_batch(&batch, start..i);
                        analyzers.insert(volume, analyzer);
                    }
                }
            }
            start = i;
        }
        if let (Some(m), Some(clock)) = (&metrics, clock) {
            m.analyze_nanos.add(clock.elapsed_nanos());
        }
    }
    analyzers
        .into_values()
        .map(VolumeAnalyzer::finish)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workbench;
    use cbs_trace::{OpKind, Trace};

    fn time_ordered_requests(volumes: u32, per_volume: u64) -> Vec<IoRequest> {
        let mut reqs = Vec::new();
        for i in 0..per_volume {
            for v in 0..volumes {
                reqs.push(IoRequest::new(
                    VolumeId::new(v),
                    if (i + u64::from(v)) % 3 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    (i % 50) * 4096,
                    4096,
                    Timestamp::from_secs(i * 7 + u64::from(v)),
                ));
            }
        }
        reqs
    }

    #[test]
    fn matches_batch_workbench() {
        let reqs = time_ordered_requests(9, 300);
        let batch = Workbench::new(Trace::from_requests(reqs.clone())).analyze();
        for shards in [1, 3, 8] {
            let streaming = StreamingWorkbench::new()
                .with_shards(shards)
                .with_batch_size(64)
                .analyze(reqs.iter().copied());
            assert_eq!(streaming, batch.metrics(), "shards={shards}");
        }
    }

    #[test]
    fn matches_batch_workbench_via_request_batches() {
        // Feeding whole RequestBatches (the CBT re-ingest path) must
        // yield the same metrics as per-request feeding and as the
        // batch workbench.
        let reqs = time_ordered_requests(7, 200);
        let batch = Workbench::new(Trace::from_requests(reqs.clone())).analyze();
        for chunk in [1usize, 97, 1000, 5000] {
            let mut session = StreamingWorkbench::new()
                .with_shards(3)
                .with_batch_size(128)
                .start();
            for piece in reqs.chunks(chunk) {
                session.observe_request_batch(&RequestBatch::from(piece));
            }
            let streaming = session.finish();
            assert_eq!(streaming, batch.metrics(), "chunk={chunk}");
        }
    }

    #[test]
    fn tuning_knobs_are_applied_and_clamped() {
        let wb = StreamingWorkbench::new()
            .with_batch_size(0)
            .with_channel_depth(0);
        assert_eq!(wb.batch_size(), 1);
        assert_eq!(wb.channel_depth(), 1);
        let wb = StreamingWorkbench::new()
            .with_batch_size(1024)
            .with_channel_depth(2);
        assert_eq!(wb.batch_size(), 1024);
        assert_eq!(wb.channel_depth(), 2);
        // And the configuration must not change the results.
        let reqs = time_ordered_requests(4, 64);
        let baseline = StreamingWorkbench::new().analyze(reqs.iter().copied());
        let tuned = StreamingWorkbench::new()
            .with_batch_size(7)
            .with_channel_depth(1)
            .analyze(reqs.iter().copied());
        assert_eq!(baseline, tuned);
    }

    #[test]
    fn volume_major_feed_with_explicit_epoch() {
        // Feeding volume-major (all of volume 0, then volume 1, ...)
        // breaks the first-timestamp epoch inference; with the batch
        // trace's start as the explicit epoch the metrics still match.
        let trace = Trace::from_requests(time_ordered_requests(5, 100));
        let epoch = trace.start().unwrap();
        let volume_major: Vec<IoRequest> = trace.requests().to_vec();
        let streaming = StreamingWorkbench::new()
            .with_shards(2)
            .with_epoch(epoch)
            .analyze(volume_major);
        let batch = Workbench::new(trace).analyze();
        assert_eq!(streaming, batch.metrics());
    }

    #[test]
    fn empty_stream() {
        let metrics = StreamingWorkbench::new().analyze(std::iter::empty());
        assert!(metrics.is_empty());
    }

    #[test]
    fn observe_batch_counts() {
        let reqs = time_ordered_requests(3, 10);
        let mut session = StreamingWorkbench::new().with_shards(2).start();
        session.observe_batch(reqs.clone());
        assert_eq!(session.observed(), 30);
        let metrics = session.finish();
        assert_eq!(metrics.iter().map(|m| m.requests()).sum::<u64>(), 30);
        // ascending volume-id order
        assert!(metrics.windows(2).all(|w| w[0].id < w[1].id));
    }

    /// A config that panics the worker mid-stream: the analyzer's
    /// per-volume ordering `debug_assert` trips on an out-of-order
    /// timestamp, so this scenario only exists in debug builds.
    #[test]
    #[cfg(debug_assertions)]
    fn worker_panic_surfaces_within_one_batch_flush() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let depth = 1usize;
        let mut session = StreamingWorkbench::new()
            .with_shards(1)
            .with_batch_size(1)
            .with_channel_depth(depth)
            .start();
        let req = |secs| {
            IoRequest::new(
                VolumeId::new(0),
                OpKind::Write,
                0,
                4096,
                Timestamp::from_secs(secs),
            )
        };
        session.observe(req(100));
        // Out of order for the same volume: the worker panics while
        // processing this batch and drops its receiver.
        session.observe(req(1));
        // Every observe flushes (batch_size = 1). At most `depth`
        // flushes can be buffered after the fatal batch, and one more
        // may be mid-send when the receiver drops — so the worker's
        // panic must resurface on the producer within `depth + 2`
        // flushes, long before `finish`.
        let poisoned_feed = catch_unwind(AssertUnwindSafe(|| {
            for i in 0..(depth as u64 + 2) {
                session.observe(req(200 + i));
            }
        }));
        assert!(
            poisoned_feed.is_err(),
            "worker panic must surface within channel_depth + 2 flushes"
        );
        assert!(session.is_poisoned());
        // All-or-error: a poisoned session never returns partial
        // metrics, and further feeding is rejected.
        let observe_after = catch_unwind(AssertUnwindSafe(|| session.observe(req(300))));
        assert!(observe_after.is_err());
        let finish = catch_unwind(AssertUnwindSafe(|| session.finish()));
        assert!(finish.is_err(), "finish on a poisoned session must panic");
    }

    #[test]
    fn registry_reconciles_with_observed() {
        use cbs_obs::Registry;
        let registry = Registry::new();
        let reqs = time_ordered_requests(5, 200);
        let mut session = StreamingWorkbench::new()
            .with_shards(2)
            .with_batch_size(64)
            .with_registry(&registry)
            .start();
        for req in &reqs {
            session.observe(*req);
        }
        let observed = session.observed();
        let metrics = session.finish();
        assert_eq!(observed, 1000);
        assert_eq!(registry.counter("stream.observed").get(), observed);
        let per_shard: u64 = (0..2)
            .map(|s| registry.counter(&format!("stream.shard{s}.requests")).get())
            .sum();
        assert_eq!(per_shard, observed, "shard counters reconcile");
        assert_eq!(
            registry.counter("stream.batches").get(),
            (0..2)
                .map(|s| registry.counter(&format!("stream.shard{s}.batches")).get())
                .sum::<u64>()
        );
        for s in 0..2 {
            assert_eq!(
                registry.gauge(&format!("stream.shard{s}.inflight")).get(),
                0,
                "all batches drained"
            );
            assert!(
                registry
                    .gauge(&format!("stream.shard{s}.inflight_hwm"))
                    .get()
                    >= 1
            );
        }
        // And the instrumented run still computes the right answer.
        assert_eq!(metrics.iter().map(|m| m.requests()).sum::<u64>(), observed);
    }

    #[test]
    fn skewed_volumes_spread_across_shards() {
        // One hot volume (90% of traffic) plus seven cold ones, all
        // sharing residue class 0 mod 4 — the old modulus routing put
        // every one of them on shard 0. First-touch least-loaded
        // assignment must give each cold volume its own lightly-loaded
        // shard instead.
        use cbs_obs::Registry;
        let registry = Registry::new();
        let mut reqs = Vec::new();
        for i in 0..9_000u64 {
            reqs.push(IoRequest::new(
                VolumeId::new(0), // hot volume
                OpKind::Write,
                (i % 64) * 4096,
                4096,
                Timestamp::from_micros(i * 10),
            ));
        }
        for (j, v) in (1..8u32).map(|v| v * 4).enumerate() {
            for i in 0..140u64 {
                reqs.push(IoRequest::new(
                    VolumeId::new(v),
                    OpKind::Read,
                    (i % 16) * 4096,
                    4096,
                    Timestamp::from_micros(90_000 + (j as u64) * 2_000 + i * 10),
                ));
            }
        }
        let mut session = StreamingWorkbench::new()
            .with_shards(4)
            .with_batch_size(32)
            .with_registry(&registry)
            .start();
        for req in &reqs {
            session.observe(*req);
        }
        let metrics = session.finish();
        assert_eq!(metrics.len(), 8);
        assert_eq!(registry.gauge("stream.shards").get(), 4);
        // The hot volume saturates its shard; the seven cold volumes
        // must land on the other three shards, so every shard sees
        // traffic (modulus routing would leave shards 1-3 at zero).
        for s in 0..4u32 {
            let routed = registry.counter(&format!("stream.shard{s}.requests")).get();
            assert!(routed > 0, "shard {s} received no requests");
        }
        let shard0 = registry.counter("stream.shard0.requests").get();
        assert!(
            shard0 < reqs.len() as u64,
            "shard 0 must not own the whole stream"
        );
    }

    #[test]
    fn single_shard_single_request() {
        let metrics = StreamingWorkbench::new()
            .with_shards(1)
            .with_batch_size(1)
            .analyze(std::iter::once(IoRequest::new(
                VolumeId::new(3),
                OpKind::Write,
                0,
                4096,
                Timestamp::from_secs(1),
            )));
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].writes, 1);
    }
}
