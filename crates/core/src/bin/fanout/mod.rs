//! Shared pieces of the `cbs-agent` / `cbs-ctl` pair: the fixed
//! reference sweep grid and the deterministic verdict report.
//!
//! Included via `#[path]` from both binaries — the grid must be
//! *identical* on both sides of the wire, and the report must be
//! byte-identical between `--local` and `--agents` runs (the
//! `agent-smoke` gate diffs the two outputs).

use cbs_core::{Analysis, SweepGrid, SweepReport};

/// The fixed cache grid every fan-out participant simulates: an LRU
/// ladder plus one FIFO/CLOCK lane each, per-volume caches merged into
/// the corpus verdict (the paper's Fig. 18 setting).
pub fn sweep_grid() -> SweepGrid {
    // The builder only rejects duplicates/zero capacities; this grid is
    // static, so failures are programmer error.
    SweepGrid::new()
        .lru_capacity(64)
        .and_then(|g| g.lru_capacity(512))
        .and_then(|g| g.lru_capacity(4096))
        .and_then(|g| g.policy("fifo", 512))
        .and_then(|g| g.policy("clock", 512))
        .expect("static grid is valid")
        .with_workers(1)
}

/// Prints the deterministic verdict report for an analysis (and the
/// merged sweep, if one ran) to `out`.
///
/// Everything printed is a pure function of the corpus: per-volume
/// metric records, the finding verdicts, and the sweep's tallies.
/// Timing fields (lane nanos, expansion nanos) are deliberately
/// excluded — they differ run to run and would break the
/// byte-for-byte smoke diff.
pub fn print_report(
    out: &mut impl std::io::Write,
    analysis: &Analysis,
    sweep: Option<&SweepReport>,
) -> std::io::Result<()> {
    writeln!(out, "# cbs verdict report v1")?;
    writeln!(out, "volumes: {}", analysis.metrics().len())?;
    for m in analysis.metrics() {
        writeln!(out, "metric {:?}", m)?;
    }
    writeln!(out, "totals {:?}", analysis.totals())?;
    writeln!(out, "request_sizes {:?}", analysis.request_sizes())?;
    writeln!(out, "mean_sizes {:?}", analysis.mean_sizes())?;
    writeln!(out, "active_days {:?}", analysis.active_days())?;
    writeln!(out, "write_read_ratios {:?}", analysis.write_read_ratios())?;
    writeln!(out, "burstiness {:?}", analysis.burstiness())?;
    writeln!(out, "randomness {:?}", analysis.randomness())?;
    writeln!(out, "aggregation {:?}", analysis.aggregation())?;
    writeln!(out, "rw_mostly {:?}", analysis.rw_mostly())?;
    writeln!(out, "update_coverage {:?}", analysis.update_coverage())?;
    writeln!(out, "adjacency {:?}", analysis.adjacency())?;
    writeln!(out, "update_intervals {:?}", analysis.update_intervals())?;
    writeln!(out, "interval_groups {:?}", analysis.interval_groups())?;
    writeln!(out, "lru_miss_ratios {:?}", analysis.lru_miss_ratios())?;
    for a in analysis.assessments() {
        writeln!(out, "assessment {:?}", a)?;
    }
    if let Some(report) = sweep {
        writeln!(
            out,
            "sweep requests={} accesses={} sampled_accesses={}",
            report.requests(),
            report.accesses(),
            report.sampled_accesses()
        )?;
        for lane in report.lanes() {
            writeln!(
                out,
                "lane policy={} capacity={} sampled={} stats={:?}",
                lane.policy, lane.capacity, lane.sampled, lane.stats
            )?;
        }
        if let Some(mrc) = report.lru_mrc() {
            let ratios: Vec<String> = [64usize, 512, 4096]
                .iter()
                .map(|&c| format!("{}:{:?}", c, mrc.miss_ratio_at(c)))
                .collect();
            writeln!(out, "lru_mrc {}", ratios.join(" "))?;
        }
    }
    Ok(())
}
