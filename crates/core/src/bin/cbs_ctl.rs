//! `cbs-ctl` — the controller half of the process fan-out.
//!
//! Synthesizes a deterministic corpus, partitions it **by volume**
//! across a set of `cbs-agent` processes (round-robin), streams each
//! agent its share over the length-prefixed wire protocol
//! ([`cbs_core::wire`]), folds the partial records back together, and
//! prints the deterministic verdict report. Because every volume is
//! analyzed whole under the shared corpus epoch, the merged report is
//! byte-identical to the single-process `--local` run:
//!
//! ```text
//! cbs-ctl --local                > local.txt
//! cbs-agent --listen 127.0.0.1:4801 &
//! cbs-agent --listen 127.0.0.1:4802 &
//! cbs-ctl --agents 127.0.0.1:4801,127.0.0.1:4802 > dist.txt
//! diff local.txt dist.txt   # empty
//! ```

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use cbs_analysis::{AnalysisConfig, VolumeMetrics};
use cbs_core::wire::{
    self, WireError, JOB_FLAG_SWEEP, TAG_FIN, TAG_JOB, TAG_METRICS, TAG_SWEEP, TAG_VOLUME,
    WIRE_VERSION,
};
use cbs_core::{Analysis, SweepReport, Workbench};
use cbs_synth::presets::{alicloud_like, CorpusConfig};
use cbs_trace::{Timestamp, Trace};

#[path = "fanout/mod.rs"]
mod fanout;

struct Options {
    agents: Vec<String>,
    local: bool,
    volumes: usize,
    days: u64,
    seed: u64,
    sweep: bool,
}

const USAGE: &str = "usage: cbs-ctl (--local | --agents HOST:PORT[,HOST:PORT...]) \
[--volumes N] [--days D] [--seed S] [--sweep]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        agents: Vec::new(),
        local: false,
        volumes: 6,
        days: 2,
        seed: 7,
        sweep: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--agents" => {
                opts.agents = value(&mut args, "--agents")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--local" => opts.local = true,
            "--volumes" => {
                opts.volumes = value(&mut args, "--volumes")?
                    .parse()
                    .map_err(|e| format!("--volumes: {e}"))?;
            }
            "--days" => {
                opts.days = value(&mut args, "--days")?
                    .parse()
                    .map_err(|e| format!("--days: {e}"))?;
            }
            "--seed" => {
                opts.seed = value(&mut args, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--sweep" => opts.sweep = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if opts.local != opts.agents.is_empty() {
        return Err(format!("pick exactly one of --local / --agents\n{USAGE}"));
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("cbs-ctl: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let corpus = alicloud_like(
        &CorpusConfig::new(opts.volumes, opts.days, opts.seed).with_intensity_scale(0.002),
    )
    .generate();
    eprintln!(
        "cbs-ctl: corpus of {} volume(s), {} request(s)",
        corpus.volume_count(),
        corpus.requests().len()
    );

    let result = if opts.local {
        Ok(run_local(corpus, opts.sweep))
    } else {
        run_distributed(corpus, &opts.agents, opts.sweep)
    };
    let (analysis, sweep) = match result {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("cbs-ctl: {e}");
            return ExitCode::FAILURE;
        }
    };

    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    if let Err(e) = fanout::print_report(&mut out, &analysis, sweep.as_ref()) {
        eprintln!("cbs-ctl: cannot write report: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = out.flush() {
        eprintln!("cbs-ctl: cannot write report: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Single-process reference: the same per-volume algebra the agents
/// run, folded in one address space.
fn run_local(corpus: Trace, sweep: bool) -> (Analysis, Option<SweepReport>) {
    let report = sweep.then(|| {
        // Per-volume caches merged — the same corpus-verdict
        // definition the agents use, so the fold is grouping-invariant.
        let mut total: Option<SweepReport> = None;
        for view in corpus.volumes() {
            let report = fanout::sweep_grid().sweep(view.requests().iter().copied());
            match &mut total {
                Some(t) => t.merge(&report),
                None => total = Some(report),
            }
        }
        total.unwrap_or_else(|| fanout::sweep_grid().sweep(std::iter::empty()))
    });
    (Workbench::new(corpus).analyze(), report)
}

/// One agent's haul: its per-volume partial records plus the merged
/// sweep report when the job requested one.
type AgentHaul = (Vec<VolumeMetrics>, Option<SweepReport>);

/// Fans the corpus out: round-robin volumes over the agents, one
/// connection-driving thread per agent, partial records folded back
/// into one [`Analysis`].
fn run_distributed(
    corpus: Trace,
    agents: &[String],
    sweep: bool,
) -> Result<(Analysis, Option<SweepReport>), String> {
    let epoch = corpus.start().unwrap_or(Timestamp::ZERO);

    // Encode each agent's share up front: VOLUME payloads, round-robin
    // by volume index (volumes are disjoint, so the merged analysis is
    // exactly the sequential one).
    let mut shares: Vec<Vec<Vec<u8>>> = vec![Vec::new(); agents.len()];
    for (i, view) in corpus.volumes().enumerate() {
        let mut e = wire::Enc::new();
        wire::enc_volume_stream(&mut e, view.id(), view.requests());
        shares[i % agents.len()].push(e.into_bytes());
    }

    let results: Vec<Result<AgentHaul, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = agents
            .iter()
            .zip(shares.iter())
            .map(|(addr, share)| {
                scope.spawn(move || {
                    drive_agent(addr, share, epoch, sweep).map_err(|e| format!("agent {addr}: {e}"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut metrics = Vec::new();
    let mut merged_sweep: Option<SweepReport> = None;
    for result in results {
        let (partial, partial_sweep) = result?;
        metrics.extend(partial);
        match (&mut merged_sweep, partial_sweep) {
            (Some(total), Some(p)) => total.merge(&p),
            (slot @ None, Some(p)) => *slot = Some(p),
            _ => {}
        }
    }
    let expected = corpus.volume_count();
    if metrics.len() != expected {
        return Err(format!(
            "agents returned {} volume record(s), expected {expected}",
            metrics.len()
        ));
    }
    let analysis = Analysis::from_parts(corpus, AnalysisConfig::default(), metrics)
        .map_err(|e| format!("invalid config: {e}"))?;
    Ok((analysis, merged_sweep))
}

/// Connects to one agent (with retries while it binds), streams its
/// share, and collects the partial records.
fn drive_agent(
    addr: &str,
    share: &[Vec<u8>],
    epoch: Timestamp,
    sweep: bool,
) -> Result<AgentHaul, WireError> {
    let stream = connect_with_retry(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    let mut job = wire::Enc::new();
    job.u8(WIRE_VERSION);
    job.u64(epoch.as_micros());
    job.u8(if sweep { JOB_FLAG_SWEEP } else { 0 });
    wire::write_frame(&mut writer, TAG_JOB, &job.into_bytes())?;
    for payload in share {
        wire::write_frame(&mut writer, TAG_VOLUME, payload)?;
    }
    wire::write_frame(&mut writer, TAG_FIN, &[])?;
    writer.flush()?;

    let mut metrics = Vec::new();
    let mut report = None;
    loop {
        let frame = wire::read_frame(&mut reader)?;
        match frame.tag {
            TAG_METRICS => {
                let mut d = wire::Dec::new(&frame.payload);
                metrics.push(wire::dec_volume_metrics(&mut d)?);
                d.finish()?;
            }
            TAG_SWEEP => {
                let mut d = wire::Dec::new(&frame.payload);
                report = Some(wire::dec_sweep_report(&mut d)?);
                d.finish()?;
            }
            TAG_FIN => break,
            other => return Err(WireError::BadTag(other)),
        }
    }
    if metrics.len() != share.len() {
        return Err(WireError::Invalid("agent dropped a volume record"));
    }
    Ok((metrics, report))
}

/// Dials the agent, retrying briefly so the smoke harness does not
/// need to sequence binds and connects.
fn connect_with_retry(addr: &str) -> Result<TcpStream, WireError> {
    let mut last_err = None;
    for _ in 0..40 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(250));
            }
        }
    }
    Err(WireError::Io(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::TimedOut, "connect retries exhausted")
    })))
}
