//! `cbs-agent` — the worker half of the process fan-out.
//!
//! Binds a loopback address, accepts one controller connection, and
//! serves one job: receive a JOB frame (version, corpus epoch, flags),
//! then VOLUME frames until FIN, analyzing each volume *whole* under
//! the corpus epoch; reply with one METRICS frame per volume (arrival
//! order), a SWEEP frame if the job requested one, and FIN.
//!
//! ```text
//! cbs-agent --listen 127.0.0.1:4801
//! ```
//!
//! Because each volume is analyzed whole with the same epoch and
//! config as a single-process run, the controller's merged verdicts
//! are byte-identical to `cbs-ctl --local` (the `agent-smoke` gate in
//! `scripts/check.sh` asserts this).

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::process::ExitCode;

use cbs_analysis::{AnalysisConfig, VolumeAnalyzer};
use cbs_core::wire::{
    self, Frame, WireError, JOB_FLAG_SWEEP, TAG_FIN, TAG_JOB, TAG_METRICS, TAG_SWEEP, TAG_VOLUME,
    WIRE_VERSION,
};
use cbs_core::SweepReport;
use cbs_trace::{Timestamp, VolumeView};

// The shared module also carries the controller's report printer.
#[path = "fanout/mod.rs"]
#[allow(dead_code)]
mod fanout;

fn main() -> ExitCode {
    let mut listen = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next(),
            "--help" | "-h" => {
                println!("usage: cbs-agent --listen HOST:PORT");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cbs-agent: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(listen) = listen else {
        eprintln!("cbs-agent: --listen HOST:PORT is required");
        return ExitCode::FAILURE;
    };

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cbs-agent: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Announce readiness on stdout so a harness can wait for the bind
    // instead of sleeping.
    match listener.local_addr() {
        Ok(addr) => println!("cbs-agent listening on {addr}"),
        Err(_) => println!("cbs-agent listening on {listen}"),
    }
    let _ = std::io::stdout().flush();

    let stream = match listener.accept() {
        Ok((s, _peer)) => s,
        Err(e) => {
            eprintln!("cbs-agent: accept failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match serve(stream) {
        Ok(volumes) => {
            eprintln!("cbs-agent: served {volumes} volume(s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cbs-agent: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Serves one controller connection; returns the number of volumes
/// analyzed.
fn serve(stream: std::net::TcpStream) -> Result<usize, WireError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    let job = wire::read_frame(&mut reader)?;
    if job.tag != TAG_JOB {
        return Err(WireError::BadTag(job.tag));
    }
    let mut d = wire::Dec::new(&job.payload);
    let version = d.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::Invalid("wire version mismatch"));
    }
    let epoch = Timestamp::from_micros(d.u64()?);
    let flags = d.u8()?;
    d.finish()?;
    let want_sweep = flags & JOB_FLAG_SWEEP != 0;

    let config = AnalysisConfig::default();
    let mut metric_frames: Vec<Vec<u8>> = Vec::new();
    let mut sweep: Option<SweepReport> = None;
    let mut volumes = 0usize;

    loop {
        let Frame { tag, payload } = wire::read_frame(&mut reader)?;
        match tag {
            TAG_VOLUME => {
                let mut d = wire::Dec::new(&payload);
                let (id, requests) = wire::dec_volume_stream(&mut d)?;
                d.finish()?;
                let view = VolumeView::new(id, &requests);
                let metrics = VolumeAnalyzer::analyze_volume(view, epoch, &config)
                    .map_err(|_| WireError::Invalid("controller sent an invalid config"))?;
                let mut e = wire::Enc::new();
                wire::enc_volume_metrics(&mut e, &metrics);
                metric_frames.push(e.into_bytes());
                if want_sweep {
                    // Per-volume cache, merged: the corpus verdict is
                    // the union of per-volume simulations.
                    let report = fanout::sweep_grid().sweep(requests.iter().copied());
                    match &mut sweep {
                        Some(total) => total.merge(&report),
                        None => sweep = Some(report),
                    }
                }
                volumes += 1;
            }
            TAG_FIN => break,
            other => return Err(WireError::BadTag(other)),
        }
    }

    for frame in &metric_frames {
        wire::write_frame(&mut writer, TAG_METRICS, frame)?;
    }
    if want_sweep {
        // An agent with no volumes still reports the grid's identity
        // (an empty-stream sweep) so the controller's fold sees a
        // uniform lane layout.
        let report = sweep.unwrap_or_else(|| fanout::sweep_grid().sweep(std::iter::empty()));
        let mut e = wire::Enc::new();
        wire::enc_sweep_report(&mut e, &report);
        wire::write_frame(&mut writer, TAG_SWEEP, &e.into_bytes())?;
    }
    wire::write_frame(&mut writer, TAG_FIN, &[])?;
    writer.flush()?;
    Ok(volumes)
}
