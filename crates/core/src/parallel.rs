//! Parallel per-volume analysis driver.

use cbs_analysis::{AnalysisConfig, InvalidConfig, VolumeAnalyzer, VolumeMetrics};
use cbs_trace::{Timestamp, Trace};

/// Analyzes every volume of `trace` using up to `threads` worker
/// threads (volumes are independent, so the fan-out is embarrassingly
/// parallel; results are returned in volume-id order regardless of
/// scheduling). `threads` is clamped to at least one worker.
///
/// Workers steal volume indices from a shared atomic cursor and keep
/// their finished `(index, metrics)` pairs thread-local; results are
/// scattered into ordered slots only after the workers join, so no lock
/// is taken per volume.
///
/// # Errors
///
/// Returns [`InvalidConfig`] if `config` fails validation.
///
/// # Panics
///
/// Propagates panics from worker threads (e.g. the analyzer's
/// debug-build ordering assertions).
pub fn analyze_trace_parallel(
    trace: &Trace,
    config: &AnalysisConfig,
    threads: usize,
) -> Result<Vec<VolumeMetrics>, InvalidConfig> {
    config.validate()?;
    let epoch = trace.start().unwrap_or(Timestamp::ZERO);
    let views: Vec<_> = trace.volumes().collect();
    if views.is_empty() {
        return Ok(Vec::new());
    }
    let threads = threads.clamp(1, views.len());

    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, VolumeMetrics)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        // ORDERING: the ticket counter only partitions
                        // indices — fetch_add is exact under Relaxed,
                        // and the volume data it indexes was published
                        // before the threads spawned.
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if idx >= views.len() {
                            break;
                        }
                        // The config was validated at entry, so the
                        // per-volume run cannot be rejected.
                        if let Ok(metrics) =
                            VolumeAnalyzer::analyze_volume(views[idx], epoch, config)
                        {
                            local.push((idx, metrics));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<VolumeMetrics>> = (0..views.len()).map(|_| None).collect();
    for (idx, metrics) in per_worker.drain(..).flatten() {
        slots[idx] = Some(metrics);
    }
    debug_assert!(
        slots.iter().all(Option::is_some),
        "a cursor slot was skipped"
    );
    Ok(slots.into_iter().flatten().collect())
}

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_analysis::analyze_trace;
    use cbs_trace::{IoRequest, OpKind, VolumeId};

    fn sample_trace(volumes: u32, per_volume: u64) -> Trace {
        let mut reqs = Vec::new();
        for v in 0..volumes {
            for i in 0..per_volume {
                reqs.push(IoRequest::new(
                    VolumeId::new(v),
                    if (i + u64::from(v)) % 3 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    (i % 50) * 4096,
                    4096,
                    Timestamp::from_secs(i * (u64::from(v) + 1)),
                ));
            }
        }
        Trace::from_requests(reqs)
    }

    #[test]
    fn parallel_matches_sequential() {
        let trace = sample_trace(8, 200);
        let config = AnalysisConfig::default();
        let seq = analyze_trace(&trace, &config).expect("valid config");
        let par = analyze_trace_parallel(&trace, &config, 4).expect("valid config");
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.id, p.id);
            assert_eq!(s.reads, p.reads);
            assert_eq!(s.writes, p.writes);
            assert_eq!(s.wss_blocks, p.wss_blocks);
            assert_eq!(s.random_requests, p.random_requests);
            assert_eq!(s.active_intervals, p.active_intervals);
            assert_eq!(s.raw_hist, p.raw_hist);
            assert_eq!(s.waw_hist, p.waw_hist);
            assert_eq!(s.update_interval_hist, p.update_interval_hist);
        }
    }

    #[test]
    fn more_threads_than_volumes() {
        let trace = sample_trace(2, 10);
        let out = analyze_trace_parallel(&trace, &AnalysisConfig::default(), 16).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_trace() {
        let out = analyze_trace_parallel(&Trace::new(), &AnalysisConfig::default(), 4).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let trace = sample_trace(2, 5);
        let out = analyze_trace_parallel(&trace, &AnalysisConfig::default(), 0).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let config = AnalysisConfig {
            randomness_window: 0,
            ..AnalysisConfig::default()
        };
        let err = analyze_trace_parallel(&Trace::new(), &config, 4).unwrap_err();
        assert!(err.message().contains("randomness_window"));
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
