//! Deterministic channel-interleaving stress test for the streaming
//! fan-out.
//!
//! The per-volume ordering guarantee ("each volume's stream reaches
//! exactly one worker, in send order") must make the final metrics
//! independent of *every* channel-level degree of freedom: shard
//! count, batch size, channel depth (and with it how often the
//! producer blocks on backpressure), and how observations are chopped
//! into `observe`/`observe_batch` calls. This test fixes one seeded
//! request stream and sweeps those knobs across their nastiest
//! settings — depth 1 with batch size 1 maximizes producer/worker
//! interleaving and exercises the backpressure path on nearly every
//! send — asserting bit-identical results every time.
//!
//! Determinism: the stream comes from a fixed-seed LCG, so every run
//! of this test replays the same requests; what varies between runs is
//! only the thread interleaving, which is exactly what must not leak
//! into the output.

use cbs_analysis::VolumeMetrics;
use cbs_core::StreamingWorkbench;
use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};

/// A deterministic skewed request stream: timestamps globally
/// ascending, volume choice LCG-driven with volume 0 hot (roughly a
/// third of all traffic), mixed reads/writes, varied offsets/lengths.
fn seeded_stream(n: u64) -> Vec<IoRequest> {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..n)
        .map(|i| {
            let r = lcg();
            // Volume 0 is hot; the rest spread over the residues of
            // r % 12 not divisible by 3 (the hot branch absorbs those),
            // i.e. 8 distinct cold volumes.
            let volume = if r % 3 == 0 { 0 } else { 1 + (r % 12) as u32 };
            IoRequest::new(
                VolumeId::new(volume),
                if r % 5 < 2 {
                    OpKind::Read
                } else {
                    OpKind::Write
                },
                (r % 4000) * 512,
                ((r % 16) as u32 + 1) * 512,
                Timestamp::from_micros(i * 13),
            )
        })
        .collect()
}

/// Runs the stream through a session with the given channel knobs.
fn run(reqs: &[IoRequest], shards: usize, batch: usize, depth: usize) -> Vec<VolumeMetrics> {
    let mut session = StreamingWorkbench::new()
        .with_shards(shards)
        .with_batch_size(batch)
        .with_channel_depth(depth)
        .start();
    for req in reqs {
        session.observe(*req);
    }
    session.finish()
}

#[test]
fn metrics_are_invariant_across_channel_interleavings() {
    let reqs = seeded_stream(6_000);
    let baseline = run(&reqs, 1, 1024, 64);
    assert_eq!(baseline.len(), 9, "hot volume plus 8 cold ones");
    assert_eq!(baseline.iter().map(|m| m.requests()).sum::<u64>(), 6_000);

    for &(shards, batch, depth) in &[
        (1usize, 1usize, 1usize), // fully serialized, every send blocks
        (2, 1, 1),                // tiny batches, constant backpressure
        (3, 7, 1),                // odd batch size, minimal depth
        (4, 64, 2),
        (8, 1, 4),    // almost one shard per cold volume
        (9, 256, 64), // one shard per volume, roomy channels
    ] {
        let got = run(&reqs, shards, batch, depth);
        assert_eq!(
            got, baseline,
            "metrics diverged at shards={shards} batch={batch} depth={depth}"
        );
    }
}

#[test]
fn call_granularity_does_not_leak_into_metrics() {
    let reqs = seeded_stream(3_000);
    let baseline = run(&reqs, 4, 32, 2);

    // Same stream, chopped into uneven observe_batch calls (1, 2, 3, …
    // requests per call) — flush points shift against batch boundaries.
    let mut session = StreamingWorkbench::new()
        .with_shards(4)
        .with_batch_size(32)
        .with_channel_depth(2)
        .start();
    let mut rest = &reqs[..];
    let mut step = 1usize;
    while !rest.is_empty() {
        let take = step.min(rest.len());
        session.observe_batch(rest[..take].to_vec());
        rest = &rest[take..];
        step = step % 97 + 1;
    }
    assert_eq!(session.observed(), 3_000);
    assert_eq!(session.finish(), baseline);
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Three end-to-end runs under the most interleaving-prone knobs:
    // any nondeterminism in routing or batching shows up as a diff.
    let reqs = seeded_stream(2_000);
    let first = run(&reqs, 5, 1, 1);
    for _ in 0..2 {
        assert_eq!(run(&reqs, 5, 1, 1), first);
    }
}
