//! Property tests for the MERGEABLE cache-simulation algebra.
//!
//! The corpus-parallel driver folds per-partition cache state with
//! `merge`; these tests pin the monoid laws — associativity,
//! commutativity, identity — and the partition homomorphism
//! `sweep(a ++ b) == merge(sweep(a), sweep(b))` for disjoint volumes,
//! for [`CacheStats`], [`MissRatioCurve`], and [`SweepReport`]. They
//! are the associativity evidence `cbs-lint`'s `mergeable-audit` rule
//! (CBS-L13) requires.

use proptest::prelude::*;

use cbs_cache::{CacheStats, MissRatioCurve, SweepGrid, SweepReport};
use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};

prop_compose! {
    /// Access/hit tallies with hits never exceeding accesses.
    fn arb_stats()(
        ra in 0u64..1_000_000,
        rh_frac in 0u64..=100,
        wa in 0u64..1_000_000,
        wh_frac in 0u64..=100,
    ) -> CacheStats {
        CacheStats::from_counts(ra, ra * rh_frac / 100, wa, wa * wh_frac / 100)
    }
}

prop_compose! {
    /// A reuse-distance histogram plus cold misses.
    fn arb_mrc()(
        hist in proptest::collection::vec(0u64..1_000, 0..20),
        cold in 0u64..1_000,
    ) -> MissRatioCurve {
        MissRatioCurve::from_histogram(hist, cold)
    }
}

/// A small per-volume request stream with some block reuse.
fn stream(volume: u32, n: u64, blocks: u64) -> Vec<IoRequest> {
    (0..n)
        .map(|i| {
            IoRequest::new(
                VolumeId::new(volume),
                if i % 3 == 0 {
                    OpKind::Read
                } else {
                    OpKind::Write
                },
                ((i * 7 + i * i * 3) % blocks) * 4096,
                (i % 3) as u32 * 4096 + 2048,
                Timestamp::from_micros(i),
            )
        })
        .collect()
}

fn sweep(reqs: &[IoRequest]) -> SweepReport {
    SweepGrid::new()
        .with_workers(0)
        .grid(&["lru", "fifo"], &[16, 64])
        .expect("valid grid")
        .sweep(reqs.iter().copied())
}

/// Everything but the wall-clock timing fields, for comparing reports.
fn untimed(report: &SweepReport) -> Vec<(String, usize, bool, CacheStats, u64)> {
    report
        .lanes()
        .iter()
        .map(|l| (l.policy.clone(), l.capacity, l.sampled, l.stats, l.accesses))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `CacheStats::merge` is associative, commutes, and has zeroed
    /// stats as identity.
    #[test]
    fn cache_stats_merge_is_associative(
        a in arb_stats(),
        b in arb_stats(),
        c in arb_stats(),
    ) {
        let mut left = a;
        left.merge(&b);
        left.merge(&c);

        let mut right_tail = b;
        right_tail.merge(&c);
        let mut right = a;
        right.merge(&right_tail);
        prop_assert_eq!(left, right);

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);

        let mut with_identity = a;
        with_identity.merge(&CacheStats::new());
        prop_assert_eq!(with_identity, a);
    }

    /// `MissRatioCurve::merge` is associative, commutes, has the empty
    /// curve as identity, and equals building one curve from the
    /// summed reuse-distance histograms.
    #[test]
    fn miss_ratio_curve_merge_is_associative(
        a in arb_mrc(),
        b in arb_mrc(),
        c in arb_mrc(),
        hist_a in proptest::collection::vec(0u64..1_000, 0..20),
        hist_b in proptest::collection::vec(0u64..1_000, 0..20),
        cold_a in 0u64..1_000,
        cold_b in 0u64..1_000,
    ) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut with_identity = a.clone();
        with_identity.merge(&MissRatioCurve::from_histogram(Vec::new(), 0));
        prop_assert_eq!(with_identity.total_accesses(), a.total_accesses());
        for cap in 0..30usize {
            prop_assert_eq!(with_identity.miss_ratio_at(cap).to_bits(), a.miss_ratio_at(cap).to_bits());
        }

        // Homomorphism: merge of curves == curve of summed histograms.
        let mut merged = MissRatioCurve::from_histogram(hist_a.clone(), cold_a);
        merged.merge(&MissRatioCurve::from_histogram(hist_b.clone(), cold_b));
        let mut summed = vec![0u64; hist_a.len().max(hist_b.len())];
        for (i, &v) in hist_a.iter().enumerate() {
            summed[i] += v;
        }
        for (i, &v) in hist_b.iter().enumerate() {
            summed[i] += v;
        }
        let direct = MissRatioCurve::from_histogram(summed, cold_a + cold_b);
        prop_assert_eq!(merged.total_accesses(), direct.total_accesses());
        for cap in 0..25usize {
            prop_assert_eq!(merged.miss_ratio_at(cap).to_bits(), direct.miss_ratio_at(cap).to_bits(), "cap={}", cap);
        }
    }

    /// `SweepReport::merge` over disjoint volumes is associative and
    /// equals sweeping each volume separately — the partition-by-volume
    /// law the corpus-parallel driver relies on.
    #[test]
    fn sweep_report_merge_is_associative(
        na in 1u64..400,
        nb in 1u64..400,
        nc in 1u64..400,
        blocks in 10u64..200,
    ) {
        let (sa, sb, sc) = (
            stream(1, na, blocks),
            stream(2, nb, blocks),
            stream(3, nc, blocks),
        );

        let mut left = sweep(&sa);
        left.merge(&sweep(&sb));
        left.merge(&sweep(&sc));

        let mut right_tail = sweep(&sb);
        right_tail.merge(&sweep(&sc));
        let mut right = sweep(&sa);
        right.merge(&right_tail);
        prop_assert_eq!(untimed(&left), untimed(&right));
        prop_assert_eq!(left.requests(), right.requests());
        prop_assert_eq!(left.accesses(), right.accesses());

        let mut ab = sweep(&sa);
        ab.merge(&sweep(&sb));
        let mut ba = sweep(&sb);
        ba.merge(&sweep(&sa));
        prop_assert_eq!(ab.requests(), ba.requests());
        for (l, r) in ab.lanes().iter().zip(ba.lanes()) {
            prop_assert_eq!(&l.stats, &r.stats, "{}@{}", &l.policy, l.capacity);
        }

        // Identity: merging an empty-stream sweep changes nothing.
        let mut with_identity = sweep(&sa);
        let solo = sweep(&sa);
        with_identity.merge(&sweep(&[]));
        prop_assert_eq!(untimed(&with_identity), untimed(&solo));

        // The merged MRC answers like the per-volume curves combined.
        let (ml, mr) = (left.lru_mrc(), right.lru_mrc());
        match (ml, mr) {
            (Some(l), Some(r)) => {
                prop_assert_eq!(l.total_accesses(), r.total_accesses());
                for cap in [0usize, 1, 16, 64, 100_000] {
                    prop_assert_eq!(l.miss_ratio_at(cap).to_bits(), r.miss_ratio_at(cap).to_bits());
                }
            }
            (None, None) => {}
            other => prop_assert!(false, "MRC presence differs: {:?}", other.0.is_some()),
        }
    }

    /// Round-trip: `from_parts(into_parts(r))` preserves every
    /// observable of a sweep report.
    #[test]
    fn sweep_report_parts_roundtrip(n in 1u64..300, blocks in 10u64..100) {
        let report = sweep(&stream(7, n, blocks));
        let rebuilt = SweepReport::from_parts(report.clone().into_parts());
        prop_assert_eq!(untimed(&report), untimed(&rebuilt));
        prop_assert_eq!(report.requests(), rebuilt.requests());
        prop_assert_eq!(report.accesses(), rebuilt.accesses());
        prop_assert_eq!(report.sampled_accesses(), rebuilt.sampled_accesses());
        prop_assert_eq!(report.expand_nanos(), rebuilt.expand_nanos());
        prop_assert_eq!(
            report.lru_mrc().map(|m| m.cumulative_hits().to_vec()),
            rebuilt.lru_mrc().map(|m| m.cumulative_hits().to_vec())
        );
    }
}
