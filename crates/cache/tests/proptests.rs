//! Property-based tests for the cache substrate.

use proptest::prelude::*;

use cbs_cache::{
    policy_by_name, Arc, CachePolicy, CacheSim, Clock, Fifo, Lfu, Lru, MissRatioCurve,
    ReuseDistances, ShardsSampler, Slru, SweepGrid, TwoQ, POLICY_NAMES,
};
use cbs_trace::{BlockId, BlockSize, IoRequest, OpKind, Timestamp, VolumeId};

fn arb_stream() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..48, 1..400)
}

/// Arbitrary request traces for the sweep engine: offsets spanning a
/// small block range (with unaligned straddlers), mixed lengths
/// (including zero-length no-ops), mixed read/write ops, and
/// occasionally empty traces.
fn arb_requests() -> impl Strategy<Value = Vec<IoRequest>> {
    proptest::strategy::FnStrategy(|rng: &mut proptest::test_runner::TestRng| {
        let len = rng.below(300) as usize;
        (0..len)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new(0),
                    if rng.below(2) == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    rng.below(40 * 4096),
                    rng.below(3 * 4096) as u32,
                    Timestamp::from_micros(i as u64),
                )
            })
            .collect()
    })
}

/// Arbitrary span-shaped access batches for `touch_batch`: each batch
/// covers `span` consecutive blocks starting at `start` (distinct
/// within the batch, arbitrarily warm or cold across batches).
fn arb_spans() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::strategy::FnStrategy(|rng: &mut proptest::test_runner::TestRng| {
        let len = 1 + rng.below(80) as usize;
        (0..len)
            .map(|_| (rng.below(120), 1 + rng.below(9)))
            .collect()
    })
}

/// Replays `stream` through `cache`, asserting the universal policy
/// invariants at every step, and returns the number of hits.
fn replay<P: CachePolicy>(mut cache: P, stream: &[u64]) -> u64 {
    let mut resident = std::collections::HashSet::new();
    let mut hits = 0u64;
    for &x in stream {
        let block = BlockId::new(x);
        let was_resident = resident.contains(&block);
        let out = cache.access(block);
        assert_eq!(out.hit, was_resident);
        hits += u64::from(out.hit);
        if let Some(v) = out.evicted {
            assert!(resident.remove(&v));
        }
        resident.insert(block);
        assert!(cache.len() <= cache.capacity());
        assert_eq!(cache.len(), resident.len());
        assert!(cache.contains(block));
    }
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy upholds residency/eviction/capacity invariants on
    /// arbitrary streams.
    #[test]
    fn policies_uphold_invariants(stream in arb_stream(), cap in 1usize..32) {
        replay(Lru::new(cap), &stream);
        replay(Fifo::new(cap), &stream);
        replay(Lfu::new(cap), &stream);
        replay(Clock::new(cap), &stream);
        replay(Arc::new(cap), &stream);
        replay(Slru::new(cap), &stream);
        replay(TwoQ::new(cap), &stream);
    }

    /// LRU hit counts predicted by reuse distances match simulation
    /// exactly (the stack property).
    #[test]
    fn reuse_distances_predict_lru(stream in arb_stream(), cap in 1usize..32) {
        let mut rd = ReuseDistances::new();
        let mut predicted_hits = 0u64;
        for &x in &stream {
            if let Some(d) = rd.access(BlockId::new(x)) {
                if (d as usize) < cap {
                    predicted_hits += 1;
                }
            }
        }
        let actual_hits = replay(Lru::new(cap), &stream);
        prop_assert_eq!(predicted_hits, actual_hits);
        // and the MRC agrees at this capacity
        let mrc = rd.to_mrc();
        let expected_ratio = 1.0 - actual_hits as f64 / stream.len() as f64;
        prop_assert!((mrc.miss_ratio_at(cap) - expected_ratio).abs() < 1e-12);
    }

    /// The LRU inclusion property: a larger cache always hits at least
    /// as often as a smaller one on the same stream.
    #[test]
    fn lru_is_inclusion_monotone(stream in arb_stream(), small in 1usize..16, extra in 1usize..16) {
        let small_hits = replay(Lru::new(small), &stream);
        let large_hits = replay(Lru::new(small + extra), &stream);
        prop_assert!(large_hits >= small_hits);
    }

    /// Miss-ratio curves are monotone non-increasing in capacity.
    #[test]
    fn mrc_monotone(hist in proptest::collection::vec(0u64..50, 0..40), cold in 0u64..50) {
        let mrc = MissRatioCurve::from_histogram(hist, cold);
        let mut prev = f64::INFINITY;
        for c in 0..45 {
            let m = mrc.miss_ratio_at(c);
            prop_assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    /// SHARDS at rate 1.0 equals the exact curve everywhere.
    #[test]
    fn shards_full_rate_exact(stream in arb_stream()) {
        let mut exact = ReuseDistances::new();
        let mut shards = ShardsSampler::new(1.0);
        for &x in &stream {
            exact.access(BlockId::new(x));
            shards.access(BlockId::new(x));
        }
        let me = exact.to_mrc();
        let ms = shards.to_mrc();
        for c in 0..64 {
            prop_assert!((me.miss_ratio_at(c) - ms.miss_ratio_at(c)).abs() < 1e-12);
        }
    }

    /// Cold misses equal the number of distinct blocks; histogram totals
    /// account for every access.
    #[test]
    fn reuse_distance_accounting(stream in arb_stream()) {
        let mut rd = ReuseDistances::new();
        for &x in &stream {
            rd.access(BlockId::new(x));
        }
        let distinct = stream.iter().collect::<std::collections::HashSet<_>>().len() as u64;
        prop_assert_eq!(rd.cold_misses(), distinct);
        let finite: u64 = rd.histogram().iter().sum();
        prop_assert_eq!(finite + rd.cold_misses(), rd.accesses());
        prop_assert_eq!(rd.accesses(), stream.len() as u64);
    }

    /// `ReuseStack::touch_batch` is bit-identical to the equivalent
    /// sequence of `touch`/`touch_cold` calls on arbitrary span-shaped
    /// batches (distinct blocks within a batch, arbitrary warm/cold mix
    /// across batches), including across compactions.
    #[test]
    fn reuse_touch_batch_equals_sequential(batches in arb_spans()) {
        let mut seq = cbs_cache::ReuseStack::new();
        let mut bat = cbs_cache::ReuseStack::new();
        let mut seq_pos = std::collections::HashMap::new();
        let mut bat_pos = std::collections::HashMap::new();
        let mut dists = Vec::new();
        for &(start, span) in &batches {
            let blocks: Vec<u64> = (start..start + span).collect();
            let mut want: Vec<u64> = Vec::new();
            for &blk in &blocks {
                match seq_pos.get(&blk).copied() {
                    Some(prev) => {
                        let (d, np) = seq.touch(prev);
                        want.push(d);
                        seq_pos.insert(blk, np);
                    }
                    None => {
                        want.push(u64::MAX);
                        seq_pos.insert(blk, seq.touch_cold());
                    }
                }
            }
            let prevs: Vec<usize> = blocks
                .iter()
                .map(|blk| bat_pos.get(blk).copied().unwrap_or(cbs_cache::ReuseStack::COLD))
                .collect();
            let first = bat.touch_batch(&prevs, &mut dists);
            for (i, &blk) in blocks.iter().enumerate() {
                bat_pos.insert(blk, first + i);
            }
            prop_assert_eq!(&dists, &want);
            prop_assert_eq!(bat.live(), seq.live());
            prop_assert_eq!(bat.positions(), seq.positions());
            prop_assert_eq!(bat.should_compact(), seq.should_compact());
            if bat.should_compact() {
                let st = seq.compaction_table();
                for p in seq_pos.values_mut() { *p = st[*p] as usize; }
                seq.rebuild_compacted();
                let bt = bat.compaction_table();
                for p in bat_pos.values_mut() { *p = bt[*p] as usize; }
                bat.rebuild_compacted();
            }
        }
    }

    /// Belady's OPT never loses to any online demand policy.
    #[test]
    fn opt_dominates_online_policies(stream in arb_stream(), cap in 1usize..24) {
        let accesses: Vec<BlockId> = stream.iter().map(|&x| BlockId::new(x)).collect();
        let opt = cbs_cache::simulate_opt(&accesses, cap);
        prop_assert_eq!(opt.accesses, stream.len() as u64);
        let lru_hits = replay(Lru::new(cap), &stream);
        let arc_hits = replay(Arc::new(cap), &stream);
        let twoq_hits = replay(TwoQ::new(cap), &stream);
        prop_assert!(opt.hits >= lru_hits, "OPT {} < LRU {lru_hits}", opt.hits);
        prop_assert!(opt.hits >= arc_hits, "OPT {} < ARC {arc_hits}", opt.hits);
        prop_assert!(opt.hits >= twoq_hits, "OPT {} < 2Q {twoq_hits}", opt.hits);
    }

    /// Sweep lane stats are bit-identical to a fresh per-(policy,
    /// capacity) `CacheSim` over the same trace — every policy, several
    /// capacities, arbitrary request shapes (unaligned, zero-length,
    /// empty traces), with and without worker threads.
    #[test]
    fn sweep_lanes_match_fresh_sims(
        reqs in arb_requests(),
        caps in proptest::collection::vec(1usize..80, 1..4),
        workers in 0usize..3,
    ) {
        let capacities: Vec<usize> = caps;
        let names: Vec<&str> = POLICY_NAMES.to_vec();
        let report = SweepGrid::new()
            .with_workers(workers)
            .with_batch_size(64)
            .grid(&names, &capacities)
            .expect("known names, non-zero capacities")
            .sweep(reqs.iter().copied());
        prop_assert_eq!(report.requests(), reqs.len() as u64);
        for &name in &names {
            for &cap in &capacities {
                let policy = policy_by_name(name, cap).expect("known policy");
                let mut sim = CacheSim::new(policy, BlockSize::DEFAULT);
                sim.run(&reqs);
                let got = report.stats(name, cap).expect("lane present");
                prop_assert_eq!(got, sim.stats(), "{}@{}", name, cap);
            }
        }
    }

    /// The sweep's collapsed-stack miss-ratio curve equals a fresh
    /// `CacheSim<Lru>` at EVERY capacity — grid points, off-grid
    /// points, and capacities past the histogram tail (where the curve
    /// flattens at the cold-miss ratio).
    #[test]
    fn sweep_mrc_matches_lru_sim_at_every_capacity(reqs in arb_requests()) {
        let report = SweepGrid::new()
            .with_workers(0)
            .lru_capacity(1)
            .expect("non-zero")
            .sweep(reqs.iter().copied());
        let mrc = report.lru_mrc().expect("stack lane ran");
        // 40 blocks of working set: capacity 100 is far past the tail.
        for cap in 1usize..100 {
            let mut sim = CacheSim::new(Lru::new(cap), BlockSize::DEFAULT);
            sim.run(&reqs);
            match sim.stats().overall_miss_ratio() {
                Some(expected) => {
                    prop_assert!(
                        (mrc.miss_ratio_at(cap) - expected).abs() < 1e-12,
                        "capacity {}: mrc {} vs sim {}", cap, mrc.miss_ratio_at(cap), expected
                    );
                }
                // Zero block accesses (empty trace or all zero-length
                // requests): the curve's convention is all-misses while
                // the sim reports no ratio.
                None => prop_assert_eq!(mrc.miss_ratio_at(cap), 1.0),
            }
        }
    }
}
