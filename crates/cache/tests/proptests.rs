//! Property-based tests for the cache substrate.

use proptest::prelude::*;

use cbs_cache::{
    Arc, CachePolicy, Clock, Fifo, Lfu, Lru, MissRatioCurve, ReuseDistances, ShardsSampler, Slru,
    TwoQ,
};
use cbs_trace::BlockId;

fn arb_stream() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..48, 1..400)
}

/// Replays `stream` through `cache`, asserting the universal policy
/// invariants at every step, and returns the number of hits.
fn replay<P: CachePolicy>(mut cache: P, stream: &[u64]) -> u64 {
    let mut resident = std::collections::HashSet::new();
    let mut hits = 0u64;
    for &x in stream {
        let block = BlockId::new(x);
        let was_resident = resident.contains(&block);
        let out = cache.access(block);
        assert_eq!(out.hit, was_resident);
        hits += u64::from(out.hit);
        if let Some(v) = out.evicted {
            assert!(resident.remove(&v));
        }
        resident.insert(block);
        assert!(cache.len() <= cache.capacity());
        assert_eq!(cache.len(), resident.len());
        assert!(cache.contains(block));
    }
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy upholds residency/eviction/capacity invariants on
    /// arbitrary streams.
    #[test]
    fn policies_uphold_invariants(stream in arb_stream(), cap in 1usize..32) {
        replay(Lru::new(cap), &stream);
        replay(Fifo::new(cap), &stream);
        replay(Lfu::new(cap), &stream);
        replay(Clock::new(cap), &stream);
        replay(Arc::new(cap), &stream);
        replay(Slru::new(cap), &stream);
        replay(TwoQ::new(cap), &stream);
    }

    /// LRU hit counts predicted by reuse distances match simulation
    /// exactly (the stack property).
    #[test]
    fn reuse_distances_predict_lru(stream in arb_stream(), cap in 1usize..32) {
        let mut rd = ReuseDistances::new();
        let mut predicted_hits = 0u64;
        for &x in &stream {
            if let Some(d) = rd.access(BlockId::new(x)) {
                if (d as usize) < cap {
                    predicted_hits += 1;
                }
            }
        }
        let actual_hits = replay(Lru::new(cap), &stream);
        prop_assert_eq!(predicted_hits, actual_hits);
        // and the MRC agrees at this capacity
        let mrc = rd.to_mrc();
        let expected_ratio = 1.0 - actual_hits as f64 / stream.len() as f64;
        prop_assert!((mrc.miss_ratio_at(cap) - expected_ratio).abs() < 1e-12);
    }

    /// The LRU inclusion property: a larger cache always hits at least
    /// as often as a smaller one on the same stream.
    #[test]
    fn lru_is_inclusion_monotone(stream in arb_stream(), small in 1usize..16, extra in 1usize..16) {
        let small_hits = replay(Lru::new(small), &stream);
        let large_hits = replay(Lru::new(small + extra), &stream);
        prop_assert!(large_hits >= small_hits);
    }

    /// Miss-ratio curves are monotone non-increasing in capacity.
    #[test]
    fn mrc_monotone(hist in proptest::collection::vec(0u64..50, 0..40), cold in 0u64..50) {
        let mrc = MissRatioCurve::from_histogram(hist, cold);
        let mut prev = f64::INFINITY;
        for c in 0..45 {
            let m = mrc.miss_ratio_at(c);
            prop_assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    /// SHARDS at rate 1.0 equals the exact curve everywhere.
    #[test]
    fn shards_full_rate_exact(stream in arb_stream()) {
        let mut exact = ReuseDistances::new();
        let mut shards = ShardsSampler::new(1.0);
        for &x in &stream {
            exact.access(BlockId::new(x));
            shards.access(BlockId::new(x));
        }
        let me = exact.to_mrc();
        let ms = shards.to_mrc();
        for c in 0..64 {
            prop_assert!((me.miss_ratio_at(c) - ms.miss_ratio_at(c)).abs() < 1e-12);
        }
    }

    /// Cold misses equal the number of distinct blocks; histogram totals
    /// account for every access.
    #[test]
    fn reuse_distance_accounting(stream in arb_stream()) {
        let mut rd = ReuseDistances::new();
        for &x in &stream {
            rd.access(BlockId::new(x));
        }
        let distinct = stream.iter().collect::<std::collections::HashSet<_>>().len() as u64;
        prop_assert_eq!(rd.cold_misses(), distinct);
        let finite: u64 = rd.histogram().iter().sum();
        prop_assert_eq!(finite + rd.cold_misses(), rd.accesses());
        prop_assert_eq!(rd.accesses(), stream.len() as u64);
    }

    /// Belady's OPT never loses to any online demand policy.
    #[test]
    fn opt_dominates_online_policies(stream in arb_stream(), cap in 1usize..24) {
        let accesses: Vec<BlockId> = stream.iter().map(|&x| BlockId::new(x)).collect();
        let opt = cbs_cache::simulate_opt(&accesses, cap);
        prop_assert_eq!(opt.accesses, stream.len() as u64);
        let lru_hits = replay(Lru::new(cap), &stream);
        let arc_hits = replay(Arc::new(cap), &stream);
        let twoq_hits = replay(TwoQ::new(cap), &stream);
        prop_assert!(opt.hits >= lru_hits, "OPT {} < LRU {lru_hits}", opt.hits);
        prop_assert!(opt.hits >= arc_hits, "OPT {} < ARC {arc_hits}", opt.hits);
        prop_assert!(opt.hits >= twoq_hits, "OPT {} < 2Q {twoq_hits}", opt.hits);
    }
}
