//! Segmented LRU replacement: [`Slru`].

use cbs_trace::BlockId;

use crate::list::LinkedSet;
use crate::policy::{AccessResult, CachePolicy};

/// Segmented LRU (Karedla et al.): the cache is split into a
/// *probationary* and a *protected* segment.
///
/// A missing block is admitted to the probationary segment; a hit on a
/// probationary block promotes it to the protected segment (demoting
/// the protected LRU back to probationary when the segment is full).
/// Eviction always takes the probationary LRU. One-touch scan traffic
/// therefore can never displace the twice-touched working set — the
/// property the paper's write-hot cloud volumes reward.
///
/// # Example
///
/// ```
/// use cbs_cache::{CachePolicy, Slru};
/// use cbs_trace::BlockId;
///
/// let mut cache = Slru::new(4);
/// cache.access(BlockId::new(1));
/// cache.access(BlockId::new(1)); // promoted to the protected segment
/// for i in 10..14 {
///     cache.access(BlockId::new(i)); // scan churns probation only
/// }
/// assert!(cache.contains(BlockId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Slru {
    probation: LinkedSet,
    protected: LinkedSet,
    capacity: usize,
    protected_capacity: usize,
}

impl Slru {
    /// Default protected share of the capacity (the classic 80/20 is
    /// aggressive; 2/3 works well for mixed workloads).
    const PROTECTED_SHARE_NUM: usize = 2;
    const PROTECTED_SHARE_DEN: usize = 3;

    /// Creates an SLRU cache with `capacity` total blocks and the
    /// default protected share.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        let protected_capacity =
            (capacity * Self::PROTECTED_SHARE_NUM / Self::PROTECTED_SHARE_DEN).max(1);
        Slru {
            probation: LinkedSet::new(),
            protected: LinkedSet::new(),
            capacity,
            protected_capacity: protected_capacity.min(capacity.saturating_sub(1).max(1)),
        }
    }

    /// Creates an SLRU with an explicit protected-segment capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < protected_capacity < capacity`.
    pub fn with_protected_capacity(capacity: usize, protected_capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        assert!(
            protected_capacity > 0 && protected_capacity < capacity,
            "protected capacity must be in 1..capacity"
        );
        Slru {
            probation: LinkedSet::new(),
            protected: LinkedSet::new(),
            capacity,
            protected_capacity,
        }
    }

    /// Sizes of `(probationary, protected)` segments.
    pub fn segment_sizes(&self) -> (usize, usize) {
        (self.probation.len(), self.protected.len())
    }
}

impl CachePolicy for Slru {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.probation.len() + self.protected.len()
    }

    fn contains(&self, block: BlockId) -> bool {
        self.probation.contains(block) || self.protected.contains(block)
    }

    fn access(&mut self, block: BlockId) -> AccessResult {
        if self.protected.contains(block) {
            self.protected.push_mru(block);
            return AccessResult::HIT;
        }
        if self.probation.remove(block) {
            // promote; overflow of the protected segment demotes its LRU
            self.protected.push_mru(block);
            if self.protected.len() > self.protected_capacity {
                // An over-full protected segment always has an LRU.
                if let Some(demoted) = self.protected.pop_lru() {
                    self.probation.push_mru(demoted);
                }
            }
            return AccessResult::HIT;
        }
        // miss: admit to probation, evicting the probationary LRU when
        // the cache is full
        let evicted = if self.len() == self.capacity {
            self.probation
                .pop_lru()
                // pathological: everything is protected — evict there
                .or_else(|| self.protected.pop_lru())
        } else {
            None
        };
        self.probation.push_mru(block);
        AccessResult {
            hit: false,
            evicted,
        }
    }

    fn name(&self) -> &'static str {
        "slru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn conforms_to_policy_contract() {
        conformance::check_policy(Slru::new(8), 8);
        conformance::check_policy(Slru::new(1), 1);
        conformance::check_eviction_discipline(Slru::new(4), 4);
    }

    #[test]
    fn hit_promotes_to_protected() {
        let mut cache = Slru::new(6);
        cache.access(b(1));
        assert_eq!(cache.segment_sizes(), (1, 0));
        assert!(cache.access(b(1)).hit);
        assert_eq!(cache.segment_sizes(), (0, 1));
    }

    #[test]
    fn scan_resistance() {
        let mut cache = Slru::new(6);
        cache.access(b(1));
        cache.access(b(1));
        cache.access(b(2));
        cache.access(b(2)); // 1, 2 protected
        for i in 100..140 {
            cache.access(b(i)); // long one-touch scan
        }
        assert!(cache.contains(b(1)));
        assert!(cache.contains(b(2)));
    }

    #[test]
    fn protected_overflow_demotes() {
        let mut cache = Slru::with_protected_capacity(4, 2);
        for i in 1..=3 {
            cache.access(b(i));
            cache.access(b(i)); // promote each
        }
        // protected holds 2; one was demoted back to probation
        let (probation, protected) = cache.segment_sizes();
        assert_eq!(protected, 2);
        assert_eq!(probation, 1);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn eviction_prefers_probation() {
        let mut cache = Slru::with_protected_capacity(3, 1);
        cache.access(b(1));
        cache.access(b(1)); // protected
        cache.access(b(2));
        cache.access(b(3)); // cache full: {1 prot, 2, 3 prob}
        let out = cache.access(b(4));
        assert_eq!(out.evicted, Some(b(2)), "probationary LRU evicts first");
        assert!(cache.contains(b(1)));
    }

    #[test]
    #[should_panic(expected = "protected capacity")]
    fn rejects_bad_protected_capacity() {
        let _ = Slru::with_protected_capacity(4, 4);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = Slru::new(0);
    }

    #[test]
    fn name() {
        assert_eq!(Slru::new(2).name(), "slru");
    }
}
