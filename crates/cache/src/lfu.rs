//! Least-frequently-used replacement: [`Lfu`].

use std::collections::{BTreeSet, HashMap};

use cbs_trace::BlockId;

use crate::policy::{AccessResult, CachePolicy};

/// LFU replacement with LRU tie-breaking (evicts the least-frequently
/// used block; among equal frequencies, the least recently inserted).
///
/// O(log n) per access via an ordered set keyed by
/// `(frequency, sequence, block)`. Included as an ablation baseline:
/// workloads whose traffic aggregates in a small set of hot blocks
/// (the paper's Finding 9) favour frequency over recency.
#[derive(Debug, Clone, Default)]
pub struct Lfu {
    /// `(freq, seq)` per resident block; `seq` is the admission/touch
    /// sequence used to break frequency ties (older evicts first).
    meta: HashMap<BlockId, (u64, u64)>,
    /// Eviction order: ascending `(freq, seq, block)`.
    order: BTreeSet<(u64, u64, BlockId)>,
    capacity: usize,
    next_seq: u64,
}

impl Lfu {
    /// Creates an LFU cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        Lfu {
            capacity,
            ..Default::default()
        }
    }

    /// The reference count recorded for a resident block.
    pub fn frequency(&self, block: BlockId) -> Option<u64> {
        self.meta.get(&block).map(|&(f, _)| f)
    }
}

impl CachePolicy for Lfu {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.meta.len()
    }

    fn contains(&self, block: BlockId) -> bool {
        self.meta.contains_key(&block)
    }

    fn access(&mut self, block: BlockId) -> AccessResult {
        self.next_seq += 1;
        let seq = self.next_seq;
        if let Some(&(freq, old_seq)) = self.meta.get(&block) {
            self.order.remove(&(freq, old_seq, block));
            self.order.insert((freq + 1, seq, block));
            self.meta.insert(block, (freq + 1, seq));
            return AccessResult::HIT;
        }
        let evicted = if self.meta.len() == self.capacity {
            // A full cache has a non-empty order set.
            self.order.pop_first().map(|(_, _, victim)| {
                self.meta.remove(&victim);
                victim
            })
        } else {
            None
        };
        self.meta.insert(block, (1, seq));
        self.order.insert((1, seq, block));
        AccessResult {
            hit: false,
            evicted,
        }
    }

    fn name(&self) -> &'static str {
        "lfu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn conforms_to_policy_contract() {
        conformance::check_policy(Lfu::new(8), 8);
        conformance::check_policy(Lfu::new(1), 1);
        conformance::check_eviction_discipline(Lfu::new(4), 4);
    }

    #[test]
    fn evicts_least_frequent() {
        let mut lfu = Lfu::new(2);
        lfu.access(b(1));
        lfu.access(b(1));
        lfu.access(b(1)); // freq(1) = 3
        lfu.access(b(2)); // freq(2) = 1
        assert_eq!(lfu.frequency(b(1)), Some(3));
        let out = lfu.access(b(3));
        assert_eq!(out.evicted, Some(b(2)), "block 2 is least frequent");
        assert!(lfu.contains(b(1)));
    }

    #[test]
    fn frequency_ties_break_by_age() {
        let mut lfu = Lfu::new(2);
        lfu.access(b(1)); // freq 1, older
        lfu.access(b(2)); // freq 1, newer
        let out = lfu.access(b(3));
        assert_eq!(out.evicted, Some(b(1)), "older block evicts first on tie");
    }

    #[test]
    fn hit_increments_frequency() {
        let mut lfu = Lfu::new(4);
        lfu.access(b(9));
        assert_eq!(lfu.frequency(b(9)), Some(1));
        assert!(lfu.access(b(9)).hit);
        assert_eq!(lfu.frequency(b(9)), Some(2));
        assert_eq!(lfu.frequency(b(404)), None);
    }

    #[test]
    fn scan_does_not_flush_hot_block() {
        let mut lfu = Lfu::new(3);
        for _ in 0..10 {
            lfu.access(b(1)); // very hot
        }
        for i in 100..120 {
            lfu.access(b(i)); // cold scan
        }
        assert!(
            lfu.contains(b(1)),
            "LFU retains the hot block through scans"
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = Lfu::new(0);
    }
}
