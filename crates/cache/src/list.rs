//! An ordered set of blocks with O(1) recency operations: [`LinkedSet`].
//!
//! This is the shared backbone of the recency-based policies (LRU and
//! ARC's four lists): a doubly-linked list threaded through a hash map,
//! supporting O(1) push-to-MRU, pop-from-LRU, and removal from the
//! middle, with no unsafe code (links are keys, not pointers).

use std::collections::HashMap;

use cbs_trace::BlockId;

#[derive(Debug, Clone, Copy)]
struct Node {
    prev: Option<BlockId>,
    next: Option<BlockId>,
}

/// A set of blocks ordered from LRU (front) to MRU (back).
///
/// # Example
///
/// ```
/// use cbs_cache::list::LinkedSet;
/// use cbs_trace::BlockId;
///
/// let mut set = LinkedSet::new();
/// set.push_mru(BlockId::new(1));
/// set.push_mru(BlockId::new(2));
/// set.push_mru(BlockId::new(1)); // move 1 to MRU
/// assert_eq!(set.pop_lru(), Some(BlockId::new(2)));
/// assert_eq!(set.pop_lru(), Some(BlockId::new(1)));
/// assert!(set.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinkedSet {
    nodes: HashMap<BlockId, Node>,
    lru: Option<BlockId>,
    mru: Option<BlockId>,
}

impl LinkedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        LinkedSet {
            nodes: HashMap::with_capacity(capacity),
            lru: None,
            mru: None,
        }
    }

    /// Number of blocks in the set.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if `block` is in the set.
    pub fn contains(&self, block: BlockId) -> bool {
        self.nodes.contains_key(&block)
    }

    /// The least-recently inserted/promoted block, if any.
    pub fn lru(&self) -> Option<BlockId> {
        self.lru
    }

    /// The most-recently inserted/promoted block, if any.
    pub fn mru(&self) -> Option<BlockId> {
        self.mru
    }

    /// Inserts `block` at the MRU end, or moves it there if present.
    pub fn push_mru(&mut self, block: BlockId) {
        if self.nodes.contains_key(&block) {
            self.unlink(block);
        }
        let old_mru = self.mru;
        self.nodes.insert(
            block,
            Node {
                prev: old_mru,
                next: None,
            },
        );
        if let Some(node) = old_mru.and_then(|m| self.nodes.get_mut(&m)) {
            node.next = Some(block);
        }
        self.mru = Some(block);
        if self.lru.is_none() {
            self.lru = Some(block);
        }
    }

    /// Removes and returns the LRU block, if any.
    pub fn pop_lru(&mut self) -> Option<BlockId> {
        let victim = self.lru?;
        self.remove(victim);
        Some(victim)
    }

    /// Removes `block` from anywhere in the set; returns `true` if it
    /// was present.
    pub fn remove(&mut self, block: BlockId) -> bool {
        if !self.nodes.contains_key(&block) {
            return false;
        }
        self.unlink(block);
        self.nodes.remove(&block);
        true
    }

    /// Detaches `block`'s links, repairing its neighbours and the ends.
    /// The node itself stays in the map (callers re-insert or remove).
    fn unlink(&mut self, block: BlockId) {
        let node = self.nodes[&block];
        // Neighbour links always resolve: `prev`/`next` are keys of
        // nodes in the same map. The `if let`s keep the structure
        // panic-free; the debug asserts document the invariant.
        match node.prev {
            Some(p) => {
                debug_assert!(self.nodes.contains_key(&p), "prev link dangles");
                if let Some(prev) = self.nodes.get_mut(&p) {
                    prev.next = node.next;
                }
            }
            None => self.lru = node.next,
        }
        match node.next {
            Some(n) => {
                debug_assert!(self.nodes.contains_key(&n), "next link dangles");
                if let Some(next) = self.nodes.get_mut(&n) {
                    next.prev = node.prev;
                }
            }
            None => self.mru = node.prev,
        }
    }

    /// Iterates from LRU to MRU. O(n); intended for tests and debugging.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        let mut cursor = self.lru;
        std::iter::from_fn(move || {
            let current = cursor?;
            cursor = self.nodes[&current].next;
            Some(current)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn empty_set() {
        let mut s = LinkedSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.lru(), None);
        assert_eq!(s.mru(), None);
        assert_eq!(s.pop_lru(), None);
        assert!(!s.remove(b(1)));
    }

    #[test]
    fn push_orders_lru_to_mru() {
        let mut s = LinkedSet::new();
        for i in 1..=3 {
            s.push_mru(b(i));
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![b(1), b(2), b(3)]);
        assert_eq!(s.lru(), Some(b(1)));
        assert_eq!(s.mru(), Some(b(3)));
    }

    #[test]
    fn push_existing_promotes() {
        let mut s = LinkedSet::new();
        for i in 1..=3 {
            s.push_mru(b(i));
        }
        s.push_mru(b(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![b(2), b(3), b(1)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn remove_middle_front_back() {
        let mut s = LinkedSet::new();
        for i in 1..=4 {
            s.push_mru(b(i));
        }
        assert!(s.remove(b(2))); // middle
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![b(1), b(3), b(4)]);
        assert!(s.remove(b(1))); // front
        assert_eq!(s.lru(), Some(b(3)));
        assert!(s.remove(b(4))); // back
        assert_eq!(s.mru(), Some(b(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn pop_lru_drains_in_order() {
        let mut s = LinkedSet::new();
        for i in 0..10 {
            s.push_mru(b(i));
        }
        let drained: Vec<_> = std::iter::from_fn(|| s.pop_lru()).collect();
        assert_eq!(drained, (0..10).map(b).collect::<Vec<_>>());
        assert!(s.is_empty());
        assert_eq!(s.lru(), None);
        assert_eq!(s.mru(), None);
    }

    #[test]
    fn single_element_edge_cases() {
        let mut s = LinkedSet::new();
        s.push_mru(b(7));
        assert_eq!(s.lru(), Some(b(7)));
        assert_eq!(s.mru(), Some(b(7)));
        s.push_mru(b(7)); // self-promotion must not corrupt links
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_lru(), Some(b(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn interleaved_stress_against_vec_model() {
        // model: Vec kept in LRU..MRU order
        let mut s = LinkedSet::new();
        let mut model: Vec<BlockId> = Vec::new();
        let ops: Vec<u64> = (0..500).map(|i| (i * 31 + 7) % 40).collect();
        for (step, &x) in ops.iter().enumerate() {
            let block = b(x);
            if step % 7 == 3 {
                let was = model.iter().position(|&m| m == block);
                assert_eq!(s.remove(block), was.is_some());
                if let Some(pos) = was {
                    model.remove(pos);
                }
            } else {
                if let Some(pos) = model.iter().position(|&m| m == block) {
                    model.remove(pos);
                }
                model.push(block);
                s.push_mru(block);
            }
            assert_eq!(s.iter().collect::<Vec<_>>(), model, "step {step}");
        }
    }
}
