//! Reuse (stack) distance computation: [`ReuseStack`],
//! [`ReuseDistances`] and [`ShardsSampler`].
//!
//! The *reuse distance* of an access is the number of **distinct** blocks
//! referenced since the previous access to the same block (∞ for a first
//! access). Under LRU, an access hits a cache of capacity `c` iff its
//! reuse distance is `< c` — so one pass over a trace yields the whole
//! miss-ratio curve ([`crate::MissRatioCurve`]). The paper cites Counter
//! Stacks (OSDI'14) and SHARDS (FAST'15) for exactly this machinery.
//!
//! The exact computation is Mattson's algorithm. Its classic
//! implementation keeps a Fenwick tree with one cell per *access
//! position*; [`ReuseStack`] compresses that to one **bit** per position
//! (a `Vec<u64>` occupancy bitset) plus a radix-8 hierarchy of per-group
//! popcount counters. Three observations make touches cheap:
//!
//! * every live bit marks the *most recent* access position of some
//!   distinct block, so the number of live positions **above** `p` — the
//!   reuse distance — is `live − rank(p)`, turning the classic
//!   two-prefix-sum query into one rank;
//! * unlike a Fenwick tree, the counter hierarchy makes clearing a bit a
//!   handful of direct decrements (no log-depth update walk), and a rank
//!   is at most seven additions per level plus one masked `count_ones` —
//!   touching only two cache lines that aren't already hot;
//! * workloads retouch *runs* of blocks that were last touched together
//!   (a request rewriting the same span), and clearing position `p`
//!   leaves `rank(p + 1)` unchanged — so consecutive-position touches
//!   skip the rank walk entirely and reuse the previous rank.
//!
//! [`ReuseDistances`] adds the block → last-position map and the
//! distance histogram on top; callers that already keep per-block state
//! (the volume analyzer) fold the position into their own map and drive
//! [`ReuseStack`] directly, paying one hash lookup per touch instead of
//! two. [`ShardsSampler`] implements fixed-rate SHARDS spatial sampling
//! for approximate curves at a small fraction of the cost.

use cbs_trace::hash::FxHashMap;
use cbs_trace::BlockId;

/// Occupancy bitset + hierarchical popcount index for exact reuse
/// distances.
///
/// A `ReuseStack` assigns monotonically increasing *positions* to
/// accesses and tracks which positions are *live* (the latest access of
/// some block). The caller owns the block → position map:
///
/// * first touch of a block → [`touch_cold`](Self::touch_cold), store
///   the returned position;
/// * repeat touch → [`touch`](Self::touch) with the stored position,
///   which returns the reuse distance and the new position to store.
///
/// Dead positions accumulate one *bit* each; when
/// [`should_compact`](Self::should_compact) turns true, the caller
/// relabels every stored position via
/// [`compacted_pos`](Self::compacted_pos) and then calls
/// [`rebuild_compacted`](Self::rebuild_compacted), keeping memory at
/// O(distinct blocks).
///
/// # Example
///
/// ```
/// use cbs_cache::ReuseStack;
///
/// // stream: a b a  →  a's second access has distance 1
/// let mut stack = ReuseStack::new();
/// let a = stack.touch_cold();
/// let _b = stack.touch_cold();
/// let (distance, _new_a) = stack.touch(a);
/// assert_eq!(distance, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReuseStack {
    /// Bit `p % 64` of word `p / 64` is set iff position `p` is live.
    words: Vec<u64>,
    /// Set-bit count per group of 8 words (512 positions).
    l1: Vec<u32>,
    /// Set-bit count per group of 64 words (4 Ki positions).
    l2: Vec<u32>,
    /// Set-bit count per group of 512 words (32 Ki positions).
    l3: Vec<u32>,
    /// Set-bit count per group of 4096 words (256 Ki positions).
    l4: Vec<u32>,
    /// Number of live positions (= distinct blocks tracked).
    live: usize,
    /// Next position to assign.
    next_pos: usize,
    /// Position cleared by the most recent [`touch`](Self::touch)
    /// (`usize::MAX` = none); keyed against `prev - 1` for the
    /// consecutive-run fast path.
    last_cleared: usize,
    /// The rank that was computed for `last_cleared`.
    last_rank: u64,
    /// Reused allocations for [`touch_batch`](Self::touch_batch):
    /// `(prev, batch index)` sorted by prev.
    scratch_sorted: Vec<(usize, u32)>,
    /// `rank_pre` per sorted warm entry.
    scratch_ranks: Vec<u64>,
    /// Batch index → sorted index for warm entries.
    scratch_sorted_of: Vec<u32>,
    /// Fenwick tree counting clears below each sorted rank.
    scratch_fenwick: Vec<u32>,
}

impl Default for ReuseStack {
    fn default() -> Self {
        ReuseStack {
            words: Vec::new(),
            l1: Vec::new(),
            l2: Vec::new(),
            l3: Vec::new(),
            l4: Vec::new(),
            live: 0,
            next_pos: 0,
            last_cleared: usize::MAX,
            last_rank: 0,
            scratch_sorted: Vec::new(),
            scratch_ranks: Vec::new(),
            scratch_sorted_of: Vec::new(),
            scratch_fenwick: Vec::new(),
        }
    }
}

impl ReuseStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live positions — equals the number of distinct blocks
    /// whose last access is being tracked.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total positions assigned since the last compaction (bounds the
    /// bitset length).
    pub fn positions(&self) -> usize {
        self.next_pos
    }

    /// Records a first-touch access and returns its position.
    #[inline]
    pub fn touch_cold(&mut self) -> usize {
        self.push_live()
    }

    /// Records a repeat access whose previous position is `prev`
    /// (as returned by the last `touch`/`touch_cold` for this block).
    /// Returns the reuse distance and the new position.
    ///
    /// Fast path: if the immediately preceding `touch` cleared
    /// `prev - 1`, then `rank(prev)` equals that touch's rank — the
    /// clear removed one bit below `prev` and `prev`'s own bit adds it
    /// back, while appends land strictly above. Spans retouched in
    /// order (the common rewrite pattern) therefore pay for one rank
    /// walk per run, not per block.
    #[inline]
    pub fn touch(&mut self, prev: usize) -> (u64, usize) {
        // Live positions strictly above `prev` are exactly the blocks
        // accessed since this block's previous access.
        let rank = if prev != 0 && prev - 1 == self.last_cleared {
            self.last_rank
        } else {
            self.rank_inclusive(prev)
        };
        let distance = self.live as u64 - rank;
        self.clear(prev);
        self.last_cleared = prev;
        self.last_rank = rank;
        (distance, self.push_live())
    }

    /// Number of live positions `<= pos`. `pos` must have been assigned.
    ///
    /// At most seven additions per hierarchy level (the top level is a
    /// linear scan over 32 Ki-position supergroups), plus whole-word and
    /// masked popcounts inside `pos`'s own 8-word group.
    #[inline]
    fn rank_inclusive(&self, pos: usize) -> u64 {
        let w = pos / 64;
        let (g1, g2, g3) = (w >> 3, w >> 6, w >> 9);
        let mut sum = 0u64;
        for i in 0..(w >> 12) {
            sum += u64::from(self.l4[i]);
        }
        for i in ((w >> 12) << 3)..g3 {
            sum += u64::from(self.l3[i]);
        }
        for i in (g3 << 3)..g2 {
            sum += u64::from(self.l2[i]);
        }
        for i in (g2 << 3)..g1 {
            sum += u64::from(self.l1[i]);
        }
        for i in (g1 << 3)..w {
            sum += u64::from(self.words[i].count_ones());
        }
        let mask = u64::MAX >> (63 - pos % 64);
        sum + u64::from((self.words[w] & mask).count_ones())
    }

    /// Clears live position `pos`: one bit plus four direct decrements.
    #[inline]
    fn clear(&mut self, pos: usize) {
        let w = pos / 64;
        self.words[w] &= !(1u64 << (pos % 64));
        self.l1[w >> 3] -= 1;
        self.l2[w >> 6] -= 1;
        self.l3[w >> 9] -= 1;
        self.l4[w >> 12] -= 1;
        self.live -= 1;
    }

    #[inline]
    fn push_live(&mut self) -> usize {
        let pos = self.next_pos;
        self.next_pos += 1;
        let w = pos / 64;
        if w == self.words.len() {
            self.words.push(0);
            self.grow_counters();
        }
        self.words[w] |= 1u64 << (pos % 64);
        self.l1[w >> 3] += 1;
        self.l2[w >> 6] += 1;
        self.l3[w >> 9] += 1;
        self.l4[w >> 12] += 1;
        self.live += 1;
        pos
    }

    /// Extends the counter levels to cover `words.len()` words.
    fn grow_counters(&mut self) {
        let n = self.words.len();
        if self.l1.len() * 8 < n {
            self.l1.push(0);
        }
        if self.l2.len() * 64 < n {
            self.l2.push(0);
        }
        if self.l3.len() * 512 < n {
            self.l3.push(0);
        }
        if self.l4.len() * 4096 < n {
            self.l4.push(0);
        }
    }

    /// True when at least ⅞ of the assigned positions are dead (and the
    /// stack is big enough for compaction to matter). The threshold
    /// trades bitset slack (one *bit* per dead position) for compaction
    /// frequency: relabeling is O(live), so amortized compaction cost
    /// per touch stays a small constant.
    pub fn should_compact(&self) -> bool {
        self.next_pos >= 1024 && self.next_pos >= 8 * self.live
    }

    /// The position `pos` will carry after the next
    /// [`rebuild_compacted`](Self::rebuild_compacted). `pos` must be
    /// live. Call for every stored position *before* rebuilding.
    ///
    /// For bulk relabeling prefer [`compaction_table`]
    /// (Self::compaction_table), which amortizes the per-position rank
    /// walk into one linear sweep.
    pub fn compacted_pos(&self, pos: usize) -> usize {
        (self.rank_inclusive(pos) - 1) as usize
    }

    /// Builds the full old-position → new-position relabel table for
    /// the next [`rebuild_compacted`](Self::rebuild_compacted) in one
    /// linear sweep: `table[pos]` is the compacted position for every
    /// live `pos`; dead positions hold `u32::MAX`.
    pub fn compaction_table(&self) -> Vec<u32> {
        let mut table = vec![u32::MAX; self.next_pos];
        let mut new_pos = 0u32;
        for (w, &bits) in self.words.iter().enumerate() {
            let mut rest = bits;
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                let pos = w * 64 + bit;
                if pos >= self.next_pos {
                    break;
                }
                table[pos] = new_pos;
                new_pos += 1;
                rest &= rest - 1;
            }
        }
        table
    }

    /// Renumbers the live positions to `0..live()` (preserving order)
    /// and drops all dead positions. Stored positions must already have
    /// been relabeled via [`compacted_pos`](Self::compacted_pos).
    pub fn rebuild_compacted(&mut self) {
        let live = self.live;
        let n_words = live.div_ceil(64);
        self.words.clear();
        self.words.resize(n_words, u64::MAX);
        if live % 64 != 0 {
            if let Some(last) = self.words.last_mut() {
                *last = u64::MAX >> (64 - live % 64);
            }
        }
        // O(n) rebuild of the counter hierarchy from word popcounts.
        self.l1.clear();
        self.l1.resize(n_words.div_ceil(8), 0);
        self.l2.clear();
        self.l2.resize(n_words.div_ceil(64), 0);
        self.l3.clear();
        self.l3.resize(n_words.div_ceil(512), 0);
        self.l4.clear();
        self.l4.resize(n_words.div_ceil(4096), 0);
        for (w, bits) in self.words.iter().enumerate() {
            let ones = bits.count_ones();
            self.l1[w >> 3] += ones;
            self.l2[w >> 6] += ones;
            self.l3[w >> 9] += ones;
            self.l4[w >> 12] += ones;
        }
        self.next_pos = live;
        // Old positions are renumbered, so the run fast path must not
        // match against a pre-compaction clear.
        self.last_cleared = usize::MAX;
        self.last_rank = 0;
    }

    /// Sentinel for a first-touch entry in a [`touch_batch`]
    /// (Self::touch_batch) slice.
    pub const COLD: usize = usize::MAX;

    /// Processes a batch of touches in one pass, bit-identical to the
    /// equivalent sequence of [`touch`](Self::touch) /
    /// [`touch_cold`](Self::touch_cold) calls.
    ///
    /// `prevs[i]` is the previous position of touch `i` (in access
    /// order), or [`COLD`](Self::COLD) for a first touch. Warm entries
    /// must be live and **distinct** — a batch must not retouch a block
    /// it already touched, so callers batch at most one request span
    /// (whose blocks are distinct by construction).
    ///
    /// Returns the position assigned to the first touch; touch `i`
    /// receives position `return + i`, exactly as the sequential calls
    /// would. `distances[i]` is the reuse distance of touch `i`, with
    /// `u64::MAX` marking cold (infinite-distance) touches.
    ///
    /// Instead of one full rank walk per warm touch, the warm previous
    /// positions are sorted and ranked in a single ascending sweep of
    /// the counter hierarchy (each level's prefix is accumulated once),
    /// then each touch's rank is adjusted for the clears that sequential
    /// processing would have applied before it:
    ///
    /// ```text
    /// distance_i = live_0 + colds_before_i − (rank_pre(p_i) − clears_below_i)
    /// ```
    ///
    /// where `rank_pre` is the rank in the untouched bitset and
    /// `clears_below_i` counts earlier batch touches whose previous
    /// position sits below `p_i` (appends land strictly above every
    /// ranked position, so they never perturb a rank).
    pub fn touch_batch(&mut self, prevs: &[usize], distances: &mut Vec<u64>) -> usize {
        distances.clear();
        let first_new = self.next_pos;
        if prevs.is_empty() {
            return first_new;
        }

        // Collect warm touches as (prev, batch index), sorted by prev
        // for the single-sweep rank pass.
        let mut sorted = std::mem::take(&mut self.scratch_sorted);
        sorted.clear();
        for (i, &p) in prevs.iter().enumerate() {
            if p != Self::COLD {
                debug_assert!(p < self.next_pos, "warm prev out of range");
                debug_assert!(
                    self.words[p / 64] & (1 << (p % 64)) != 0,
                    "warm prev must be live"
                );
                sorted.push((p, i as u32));
            }
        }
        sorted.sort_unstable();
        let k = sorted.len();

        // One ascending descent over the hierarchy: rank_pre of every
        // sorted prev, reusing the running prefix between queries.
        let mut ranks = std::mem::take(&mut self.scratch_ranks);
        ranks.clear();
        self.rank_sorted_sweep(&sorted, &mut ranks);

        // sorted_of[i] = index of batch touch i in `sorted` (warm only).
        let mut sorted_of = std::mem::take(&mut self.scratch_sorted_of);
        sorted_of.clear();
        sorted_of.resize(prevs.len(), u32::MAX);
        for (r, &(_, i)) in sorted.iter().enumerate() {
            sorted_of[i as usize] = r as u32;
        }

        // Fenwick tree over sorted ranks counts, for each warm touch in
        // access order, how many earlier warm touches cleared a position
        // below it.
        let mut fen = std::mem::take(&mut self.scratch_fenwick);
        fen.clear();
        fen.resize(k + 1, 0);

        let live0 = self.live as u64;
        let mut colds = 0u64;
        let mut last_warm: Option<(usize, u64)> = None;
        for (i, &p) in prevs.iter().enumerate() {
            if p == Self::COLD {
                colds += 1;
                distances.push(u64::MAX);
            } else {
                let r = sorted_of[i] as usize;
                let clears_below = {
                    let mut s = 0u64;
                    let mut j = r;
                    while j > 0 {
                        s += u64::from(fen[j]);
                        j &= j - 1;
                    }
                    s
                };
                let rank_now = ranks[r] - clears_below;
                distances.push(live0 + colds - rank_now);
                last_warm = Some((p, rank_now));
                let mut j = r + 1;
                while j <= k {
                    fen[j] += 1;
                    j += j & j.wrapping_neg();
                }
            }
        }

        // Apply all clears, then all appends. Sequential processing
        // interleaves them, but clears touch only pre-existing words and
        // appends only ever set the next fresh position, so the final
        // bitset, counters and position assignment are identical.
        for &(p, _) in &sorted {
            self.clear(p);
        }
        for _ in 0..prevs.len() {
            self.push_live();
        }

        // Seed the consecutive-run fast path exactly as the last
        // sequential warm touch would have (appends after it do not
        // change rank(last_cleared)).
        if let Some((p, rank)) = last_warm {
            self.last_cleared = p;
            self.last_rank = rank;
        }

        self.scratch_sorted = sorted;
        self.scratch_ranks = ranks;
        self.scratch_sorted_of = sorted_of;
        self.scratch_fenwick = fen;
        first_new
    }

    /// Ranks every `(pos, _)` in ascending `pos` order with one
    /// monotone cursor sweep over the counter hierarchy. Equivalent to
    /// calling [`rank_inclusive`](Self::rank_inclusive) per position,
    /// but each hierarchy prefix is accumulated once for the whole
    /// batch instead of once per query.
    fn rank_sorted_sweep(&self, sorted: &[(usize, u32)], out: &mut Vec<u64>) {
        let mut w_cur = 0usize;
        let mut sum = 0u64;
        for &(pos, _) in sorted {
            let target = pos / 64;
            while w_cur < target {
                if w_cur & 4095 == 0 && w_cur + 4096 <= target {
                    sum += u64::from(self.l4[w_cur >> 12]);
                    w_cur += 4096;
                } else if w_cur & 511 == 0 && w_cur + 512 <= target {
                    sum += u64::from(self.l3[w_cur >> 9]);
                    w_cur += 512;
                } else if w_cur & 63 == 0 && w_cur + 64 <= target {
                    sum += u64::from(self.l2[w_cur >> 6]);
                    w_cur += 64;
                } else if w_cur & 7 == 0 && w_cur + 8 <= target {
                    sum += u64::from(self.l1[w_cur >> 3]);
                    w_cur += 8;
                } else {
                    sum += u64::from(self.words[w_cur].count_ones());
                    w_cur += 1;
                }
            }
            let mask = u64::MAX >> (63 - pos % 64);
            out.push(sum + u64::from((self.words[target] & mask).count_ones()));
        }
    }
}

/// Exact reuse-distance histogram of a block-access stream.
///
/// # Example
///
/// ```
/// use cbs_cache::ReuseDistances;
/// use cbs_trace::BlockId;
///
/// let mut rd = ReuseDistances::new();
/// for &b in &[1u64, 2, 3, 1, 2, 3] {
///     rd.access(BlockId::new(b));
/// }
/// // second round: each access has distance 2 (two distinct blocks
/// // touched since the previous access to the same block)
/// assert_eq!(rd.cold_misses(), 3);
/// assert_eq!(rd.histogram().get(2).copied(), Some(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseDistances {
    stack: ReuseStack,
    /// block → position of its most recent access.
    last_pos: FxHashMap<BlockId, usize>,
    /// histogram\[d\] = number of accesses with finite reuse distance d.
    histogram: Vec<u64>,
    cold_misses: u64,
    accesses: u64,
    metrics: Option<ReuseMetrics>,
}

/// Registry handles updated at each compaction (see
/// [`ReuseDistances::with_registry`]).
#[derive(Debug, Clone)]
struct ReuseMetrics {
    compactions: cbs_obs::Counter,
    live_entries: cbs_obs::Gauge,
    dead_entries: cbs_obs::Gauge,
}

impl ReuseMetrics {
    fn publish(&self, stack: &ReuseStack) {
        self.live_entries.set(stack.live() as u64);
        self.dead_entries
            .set(stack.positions().saturating_sub(stack.live()) as u64);
    }
}

impl ReuseDistances {
    /// Creates an empty computation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes stack-health metrics into `registry`: a
    /// `reuse.compactions` counter plus `reuse.live_entries` /
    /// `reuse.dead_entries` gauges showing how much of the position
    /// space holds live blocks. Gauges refresh at each compaction (the
    /// only moment the ratio changes shape), so per-access cost is
    /// untouched.
    #[must_use]
    pub fn with_registry(mut self, registry: &cbs_obs::Registry) -> Self {
        self.metrics = Some(ReuseMetrics {
            compactions: registry.counter("reuse.compactions"),
            live_entries: registry.gauge("reuse.live_entries"),
            dead_entries: registry.gauge("reuse.dead_entries"),
        });
        self
    }

    /// Processes one access and returns its reuse distance
    /// (`None` = cold / infinite).
    pub fn access(&mut self, block: BlockId) -> Option<u64> {
        self.accesses += 1;
        let distance = match self.last_pos.entry(block) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                let (distance, pos) = self.stack.touch(*entry.get());
                *entry.get_mut() = pos;
                Some(distance)
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(self.stack.touch_cold());
                self.cold_misses += 1;
                None
            }
        };
        if let Some(d) = distance {
            let d = d as usize;
            if d >= self.histogram.len() {
                self.histogram.resize(d + 1, 0);
            }
            self.histogram[d] += 1;
        }
        // Only `last_pos.len()` positions are live; compacting when
        // most are dead keeps memory at O(distinct blocks) instead of
        // O(accesses), at amortized O(1) extra cost per access.
        if self.stack.should_compact() {
            let table = self.stack.compaction_table();
            for pos in self.last_pos.values_mut() {
                *pos = table[*pos] as usize;
            }
            self.stack.rebuild_compacted();
            if let Some(m) = &self.metrics {
                m.compactions.inc();
                m.publish(&self.stack);
            }
        }
        distance
    }

    /// Processes a whole access stream.
    pub fn run<I: IntoIterator<Item = BlockId>>(&mut self, accesses: I) {
        for b in accesses {
            self.access(b);
        }
    }

    /// Total accesses processed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of first-touch (infinite-distance) accesses — equals the
    /// number of distinct blocks seen.
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// The finite-distance histogram: `histogram()[d]` accesses had
    /// reuse distance exactly `d`.
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Builds the LRU miss-ratio curve implied by these distances.
    pub fn to_mrc(&self) -> crate::MissRatioCurve {
        crate::MissRatioCurve::from_histogram(self.histogram.clone(), self.cold_misses)
    }
}

/// Fixed-rate SHARDS spatial sampling (Waldspurger et al., FAST'15).
///
/// Only blocks whose hash falls below a threshold are fed to the exact
/// computation; distances are re-scaled by the sampling rate. With rate
/// `R`, cost drops by ~`1/R` while the curve stays accurate for
/// reasonably large working sets.
///
/// # Example
///
/// ```
/// use cbs_cache::ShardsSampler;
/// use cbs_trace::BlockId;
///
/// let mut sampler = ShardsSampler::new(0.5);
/// for i in 0..10_000u64 {
///     sampler.access(BlockId::new(i % 500));
/// }
/// let mrc = sampler.to_mrc();
/// // cyclic scan over 500 blocks: a 500-block cache captures everything
/// assert!(mrc.miss_ratio_at(600) < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct ShardsSampler {
    inner: ReuseDistances,
    /// Sampling threshold over the full 64-bit hash space.
    threshold: u64,
    rate: f64,
    total_accesses: u64,
}

impl ShardsSampler {
    /// Creates a sampler keeping roughly `rate` of blocks
    /// (`0 < rate <= 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate <= 1`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "sampling rate must be in (0, 1], got {rate}"
        );
        let threshold = Self::threshold_for(rate);
        ShardsSampler {
            inner: ReuseDistances::new(),
            threshold,
            rate,
            total_accesses: 0,
        }
    }

    /// The configured sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The spatial-filter threshold for `rate` over the full 64-bit
    /// hash space: a block is sampled iff `shards_hash(block)` is at or
    /// below it. Shared with the sweep engine so its precomputed sample
    /// filter selects exactly the blocks this sampler would.
    pub(crate) fn threshold_for(rate: f64) -> u64 {
        if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        }
    }

    /// Offers one access; sampled-out blocks are counted but not traced.
    pub fn access(&mut self, block: BlockId) {
        self.total_accesses += 1;
        if shards_hash(block) <= self.threshold {
            self.inner.access(block);
        }
    }

    /// Total accesses offered (sampled or not).
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Accesses that passed the spatial filter.
    pub fn sampled_accesses(&self) -> u64 {
        self.inner.accesses()
    }

    /// Builds the re-scaled miss-ratio curve: sampled distances are
    /// multiplied by `1/rate` to estimate true stack depths.
    pub fn to_mrc(&self) -> crate::MissRatioCurve {
        self.build_mrc(0)
    }

    /// Like [`ShardsSampler::to_mrc`], with the SHARDS-adj correction
    /// from the FAST'15 paper applied.
    ///
    /// With a heavy-tailed popularity distribution the spatial filter
    /// rarely samples exactly `rate × total` accesses — missing (or
    /// over-sampling) a few hot blocks shifts the whole estimated
    /// curve up (or down), because hot blocks contribute mostly
    /// small-distance hits. The difference `expected − actual` is
    /// credited to the distance-0 bucket, which removes the systematic
    /// bias in the bend and tail of the curve. The trade-off is the
    /// head: the correction mass lands below the sampler's `~1/rate`
    /// distance resolution, so estimates at capacities within a few
    /// resolution units of zero get *worse* — prefer [`ShardsSampler::
    /// to_mrc`] when tiny caches (or tiny working sets) matter, and
    /// this curve for large-trace sweeps (the sweep engine's sampled
    /// MRC lane uses it).
    pub fn to_mrc_adjusted(&self) -> crate::MissRatioCurve {
        let expected = (self.total_accesses as f64 * self.rate).round() as i64;
        self.build_mrc(expected - self.inner.accesses() as i64)
    }

    /// Shared rescale + histogram build; `adjustment` accesses are
    /// credited to (or debited from, saturating) the distance-0 bucket.
    fn build_mrc(&self, adjustment: i64) -> crate::MissRatioCurve {
        let scale = 1.0 / self.rate;
        let sampled = self.inner.histogram();
        let mut scaled: Vec<u64> = vec![0];
        for (d, &count) in sampled.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let scaled_d = (d as f64 * scale).round() as usize;
            if scaled_d >= scaled.len() {
                scaled.resize(scaled_d + 1, 0);
            }
            scaled[scaled_d] += count;
        }
        if adjustment >= 0 {
            scaled[0] += adjustment as u64;
        } else {
            scaled[0] = scaled[0].saturating_sub(adjustment.unsigned_abs());
        }
        crate::MissRatioCurve::from_histogram(scaled, self.inner.cold_misses())
    }
}

/// splitmix64 over a block id — well-mixed for sequential ids. The
/// single hash function behind every SHARDS-style spatial filter in the
/// crate ([`ShardsSampler`] and the sweep engine's sampled lanes), so
/// all of them agree on which blocks a given rate selects.
#[inline]
pub(crate) fn shards_hash(block: BlockId) -> u64 {
    let mut z = block.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn stack_rank_and_distance() {
        let mut s = ReuseStack::new();
        // Positions 0..=70 all live (spanning a word boundary).
        let positions: Vec<usize> = (0..71).map(|_| s.touch_cold()).collect();
        assert_eq!(s.live(), 71);
        assert_eq!(positions, (0..71).collect::<Vec<_>>());
        // Touching position 0 sees all 70 later blocks.
        let (d, new_pos) = s.touch(0);
        assert_eq!(d, 70);
        assert_eq!(new_pos, 71);
        assert_eq!(s.live(), 71);
        // Touching position 64 (word 1) now sees 6 later live positions
        // (65..=70) plus the relocated block at 71.
        let (d, _) = s.touch(64);
        assert_eq!(d, 7);
    }

    #[test]
    fn stack_compaction_preserves_order() {
        let mut s = ReuseStack::new();
        let mut pos: Vec<usize> = (0..100).map(|_| s.touch_cold()).collect();
        // Touch the first 50 blocks over and over until most positions
        // are dead (100 + 50·19 = 1050 assigned, 100 live).
        for _round in 0..19 {
            for p in pos.iter_mut().take(50) {
                let (_, new_pos) = s.touch(*p);
                *p = new_pos;
            }
        }
        assert!(s.should_compact());
        let relabeled: Vec<usize> = pos.iter().map(|&p| s.compacted_pos(p)).collect();
        // The bulk table must agree with per-position relabeling.
        let table = s.compaction_table();
        for (&p, &r) in pos.iter().zip(&relabeled) {
            assert_eq!(table[p] as usize, r);
        }
        s.rebuild_compacted();
        assert_eq!(s.positions(), 100);
        assert_eq!(s.live(), 100);
        // Relative order preserved: blocks 50..100 (untouched, oldest)
        // come first, then blocks 0..50 in re-touch order.
        let mut sorted = relabeled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_eq!(relabeled[50..], (0..50).collect::<Vec<_>>()[..]);
        assert_eq!(relabeled[..50], (50..100).collect::<Vec<_>>()[..]);
        // Distances still correct after the rebuild: the oldest block
        // (block 50, now at position 0) sees all 99 others.
        let (d, _) = s.touch(relabeled[50]);
        assert_eq!(d, 99);
    }

    #[test]
    fn touch_batch_empty_and_all_cold() {
        let mut s = ReuseStack::new();
        let mut d = Vec::new();
        assert_eq!(s.touch_batch(&[], &mut d), 0);
        assert!(d.is_empty());
        let first = s.touch_batch(&[ReuseStack::COLD; 3], &mut d);
        assert_eq!(first, 0);
        assert_eq!(d, vec![u64::MAX; 3]);
        assert_eq!(s.live(), 3);
        assert_eq!(s.positions(), 3);
    }

    #[test]
    fn touch_batch_matches_sequential_touches() {
        // Drive a batched stack and a sequential stack through the same
        // deterministic access stream (batches of distinct blocks, the
        // span-shaped access pattern the analyzer produces) and demand
        // bit-identical distances, positions, and internal state —
        // including across compactions.
        let mut seq = ReuseStack::new();
        let mut bat = ReuseStack::new();
        let mut seq_pos: std::collections::HashMap<u64, usize> = Default::default();
        let mut bat_pos: std::collections::HashMap<u64, usize> = Default::default();
        let mut rng = 0x9e37u64;
        let mut dists = Vec::new();
        for _ in 0..2_000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let start = (rng >> 33) % 200;
            let span = 1 + (rng >> 20) % 8;
            let blocks: Vec<u64> = (start..start + span).collect();

            // Sequential reference.
            let mut want: Vec<u64> = Vec::new();
            for &blk in &blocks {
                match seq_pos.get(&blk).copied() {
                    Some(prev) => {
                        let (d, np) = seq.touch(prev);
                        want.push(d);
                        seq_pos.insert(blk, np);
                    }
                    None => {
                        want.push(u64::MAX);
                        seq_pos.insert(blk, seq.touch_cold());
                    }
                }
            }

            // Batched.
            let prevs: Vec<usize> = blocks
                .iter()
                .map(|blk| bat_pos.get(blk).copied().unwrap_or(ReuseStack::COLD))
                .collect();
            let first = bat.touch_batch(&prevs, &mut dists);
            for (i, &blk) in blocks.iter().enumerate() {
                bat_pos.insert(blk, first + i);
            }

            assert_eq!(dists, want);
            assert_eq!(bat.live(), seq.live());
            assert_eq!(bat.positions(), seq.positions());
            assert_eq!(bat.words, seq.words);
            assert_eq!(bat.last_cleared, seq.last_cleared);
            assert_eq!(bat.last_rank, seq.last_rank);

            assert_eq!(bat.should_compact(), seq.should_compact());
            if bat.should_compact() {
                let st = seq.compaction_table();
                for p in seq_pos.values_mut() {
                    *p = st[*p] as usize;
                }
                seq.rebuild_compacted();
                let bt = bat.compaction_table();
                for p in bat_pos.values_mut() {
                    *p = bt[*p] as usize;
                }
                bat.rebuild_compacted();
            }
        }
    }

    #[test]
    fn touch_batch_interleaves_with_single_touches() {
        // The run fast path seeded by touch_batch must hand over to
        // plain touch() without perturbing distances.
        let mut a = ReuseStack::new();
        let mut b = ReuseStack::new();
        let pa: Vec<usize> = (0..10).map(|_| a.touch_cold()).collect();
        let pb: Vec<usize> = (0..10).map(|_| b.touch_cold()).collect();
        let mut d = Vec::new();
        let first = a.touch_batch(&[pa[3], pa[4], pa[5]], &mut d);
        let (d3, _) = b.touch(pb[3]);
        let (d4, _) = b.touch(pb[4]);
        let (d5, n5) = b.touch(pb[5]);
        assert_eq!(d, vec![d3, d4, d5]);
        // Consecutive follow-up touch takes the fast path in both.
        let (da, _) = a.touch(pa[6]);
        let (db, _) = b.touch(pb[6]);
        assert_eq!(da, db);
        // And the relocated block reuses correctly.
        let (da, _) = a.touch(first + 2);
        let (db, _) = b.touch(n5);
        assert_eq!(da, db);
    }

    #[test]
    fn cold_accesses_have_no_distance() {
        let mut rd = ReuseDistances::new();
        assert_eq!(rd.access(b(1)), None);
        assert_eq!(rd.access(b(2)), None);
        assert_eq!(rd.cold_misses(), 2);
        assert_eq!(rd.accesses(), 2);
        assert!(rd.histogram().iter().all(|&c| c == 0));
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let mut rd = ReuseDistances::new();
        rd.access(b(5));
        assert_eq!(rd.access(b(5)), Some(0));
        assert_eq!(rd.histogram()[0], 1);
    }

    #[test]
    fn classic_example_distances() {
        // stream: a b c b a → distances: ∞ ∞ ∞ 1 2
        let mut rd = ReuseDistances::new();
        assert_eq!(rd.access(b(0)), None);
        assert_eq!(rd.access(b(1)), None);
        assert_eq!(rd.access(b(2)), None);
        assert_eq!(rd.access(b(1)), Some(1));
        assert_eq!(rd.access(b(0)), Some(2));
    }

    #[test]
    fn repeated_touches_do_not_inflate_distance() {
        // a b b b a: distinct blocks between the two a's is 1
        let mut rd = ReuseDistances::new();
        rd.access(b(0));
        rd.access(b(1));
        rd.access(b(1));
        rd.access(b(1));
        assert_eq!(rd.access(b(0)), Some(1));
    }

    #[test]
    fn distances_match_naive_model_on_random_stream() {
        // naive model: LRU stack as a Vec
        let stream: Vec<u64> = (0..500).map(|i| (i * 37 + 11) % 60).collect();
        let mut rd = ReuseDistances::new();
        let mut stack: Vec<u64> = Vec::new();
        for &x in &stream {
            let expected = stack.iter().rev().position(|&s| s == x).map(|d| d as u64);
            let got = rd.access(b(x));
            assert_eq!(got, expected, "block {x}");
            if let Some(pos) = stack.iter().position(|&s| s == x) {
                stack.remove(pos);
            }
            stack.push(x);
        }
    }

    #[test]
    fn compaction_bounds_memory_and_preserves_distances() {
        // 40k accesses over 100 distinct blocks, irregular revisit
        // order; compaction must keep the position space near the
        // distinct-block count while leaving every distance identical
        // to the naive LRU-stack model.
        let stream: Vec<u64> = (0..40_000).map(|i| (i * i * 7 + i * 13) % 100).collect();
        let mut rd = ReuseDistances::new();
        let mut stack: Vec<u64> = Vec::new();
        for &x in &stream {
            let expected = stack.iter().rev().position(|&s| s == x).map(|d| d as u64);
            assert_eq!(rd.access(b(x)), expected, "block {x}");
            if let Some(pos) = stack.iter().position(|&s| s == x) {
                stack.remove(pos);
            }
            stack.push(x);
        }
        assert_eq!(rd.accesses(), 40_000);
        assert!(
            rd.stack.positions() < 8 * 100 + 1024,
            "position space grew with accesses: {} positions for 100 blocks",
            rd.stack.positions()
        );
    }

    #[test]
    fn registry_tracks_compactions() {
        // Re-accessing a small block set many times inflates the dead
        // position space (next_pos grows, live stays at 50), so the
        // should_compact threshold — next_pos >= 1024 and >= 8 * live —
        // must fire several times over 40k accesses.
        let registry = cbs_obs::Registry::new();
        let mut rd = ReuseDistances::new().with_registry(&registry);
        rd.run((0..40_000u64).map(|i| b(i % 50)));
        let compactions = registry.counter("reuse.compactions").get();
        assert!(compactions >= 1, "no compaction over 40k accesses");
        // Gauges hold the state published at the most recent
        // compaction: all 50 blocks were live, and the freshly rebuilt
        // stack had no dead positions yet.
        assert_eq!(registry.gauge("reuse.live_entries").get(), 50);
        assert_eq!(registry.gauge("reuse.dead_entries").get(), 0);
        // Metrics never perturb the computation itself.
        let mut plain = ReuseDistances::new();
        plain.run((0..40_000u64).map(|i| b(i % 50)));
        assert_eq!(rd.histogram(), plain.histogram());
        assert_eq!(rd.cold_misses(), plain.cold_misses());
    }

    #[test]
    fn run_consumes_stream() {
        let mut rd = ReuseDistances::new();
        rd.run((0..10u64).map(b));
        assert_eq!(rd.accesses(), 10);
        assert_eq!(rd.cold_misses(), 10);
    }

    #[test]
    fn full_rate_shards_equals_exact() {
        let stream: Vec<u64> = (0..400).map(|i| (i * 13) % 47).collect();
        let mut exact = ReuseDistances::new();
        let mut sampler = ShardsSampler::new(1.0);
        for &x in &stream {
            exact.access(b(x));
            sampler.access(b(x));
        }
        assert_eq!(sampler.sampled_accesses(), exact.accesses());
        let m_exact = exact.to_mrc();
        let m_shards = sampler.to_mrc();
        for c in [1usize, 10, 47, 100] {
            assert!((m_exact.miss_ratio_at(c) - m_shards.miss_ratio_at(c)).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_reduces_cost() {
        let mut sampler = ShardsSampler::new(0.25);
        for i in 0..10_000u64 {
            sampler.access(b(i % 1000));
        }
        assert_eq!(sampler.total_accesses(), 10_000);
        let frac = sampler.sampled_accesses() as f64 / 10_000.0;
        assert!(frac > 0.1 && frac < 0.4, "sampled fraction {frac}");
        assert!((sampler.rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn rejects_bad_rate() {
        let _ = ShardsSampler::new(0.0);
    }
}
