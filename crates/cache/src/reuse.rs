//! Reuse (stack) distance computation: [`ReuseDistances`] and
//! [`ShardsSampler`].
//!
//! The *reuse distance* of an access is the number of **distinct** blocks
//! referenced since the previous access to the same block (∞ for a first
//! access). Under LRU, an access hits a cache of capacity `c` iff its
//! reuse distance is `< c` — so one pass over a trace yields the whole
//! miss-ratio curve ([`crate::MissRatioCurve`]). The paper cites Counter
//! Stacks (OSDI'14) and SHARDS (FAST'15) for exactly this machinery.
//!
//! The exact computation is Mattson's algorithm with a Fenwick tree over
//! access positions: O(log n) per access. [`ShardsSampler`] implements
//! fixed-rate SHARDS spatial sampling for approximate curves at a small
//! fraction of the cost.

use std::collections::HashMap;

use cbs_trace::BlockId;

/// A Fenwick (binary indexed) tree over access positions, supporting
/// point updates and prefix sums; grows by appending zeros.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    /// 1-based implicit tree.
    tree: Vec<u64>,
}

impl Fenwick {
    fn len(&self) -> usize {
        self.tree.len()
    }

    /// Appends one new position with initial value `delta`.
    ///
    /// Appending is the only way the tree grows: the new cell's covered
    /// range `(i − lowbit(i), i]` reaches back over existing positions,
    /// so its initial value is computed from existing prefix sums.
    fn append(&mut self, delta: i64) {
        let i = self.tree.len() + 1; // 1-based index of the new cell
        let lowbit = i & i.wrapping_neg();
        let range_sum = self.prefix1(i - 1).wrapping_sub(self.prefix1(i - lowbit));
        self.tree.push(range_sum.wrapping_add(delta as u64));
    }

    /// Adds `delta` at 0-based position `pos`, appending zero-valued
    /// positions first if `pos` is past the end.
    fn add(&mut self, pos: usize, delta: i64) {
        while self.tree.len() < pos {
            self.append(0);
        }
        if self.tree.len() == pos {
            self.append(delta);
            return;
        }
        let mut i = pos + 1; // 1-based
        while i <= self.tree.len() {
            let cell = &mut self.tree[i - 1];
            *cell = cell.wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of 1-based positions `1..=i`; `i` must be ≤ `len`.
    fn prefix1(&self, mut i: usize) -> u64 {
        debug_assert!(i <= self.tree.len());
        let mut sum = 0u64;
        while i > 0 {
            sum = sum.wrapping_add(self.tree[i - 1]);
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum of 0-based positions `0..=pos`; positions past the end count
    /// as zero.
    fn prefix(&self, pos: usize) -> u64 {
        self.prefix1((pos + 1).min(self.tree.len()))
    }
}

/// Exact reuse-distance histogram of a block-access stream.
///
/// # Example
///
/// ```
/// use cbs_cache::ReuseDistances;
/// use cbs_trace::BlockId;
///
/// let mut rd = ReuseDistances::new();
/// for &b in &[1u64, 2, 3, 1, 2, 3] {
///     rd.access(BlockId::new(b));
/// }
/// // second round: each access has distance 2 (two distinct blocks
/// // touched since the previous access to the same block)
/// assert_eq!(rd.cold_misses(), 3);
/// assert_eq!(rd.histogram().get(2).copied(), Some(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseDistances {
    fenwick: Fenwick,
    /// block → position of its most recent access.
    last_pos: HashMap<BlockId, usize>,
    /// histogram\[d\] = number of accesses with finite reuse distance d.
    histogram: Vec<u64>,
    cold_misses: u64,
    accesses: u64,
    /// Position of the next access. Decoupled from `accesses`: position
    /// space is rewritten by [`Self::compact`], so it restarts while
    /// `accesses` keeps counting.
    next_pos: usize,
}

impl ReuseDistances {
    /// Creates an empty computation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one access and returns its reuse distance
    /// (`None` = cold / infinite).
    pub fn access(&mut self, block: BlockId) -> Option<u64> {
        let pos = self.next_pos;
        self.next_pos += 1;
        self.accesses += 1;
        let distance = match self.last_pos.insert(block, pos) {
            Some(prev) => {
                // distinct blocks touched strictly between prev and pos:
                // each distinct block contributes a 1 at its last position.
                let between = self.fenwick.prefix(pos - 1) - self.fenwick.prefix(prev);
                self.fenwick.add(prev, -1);
                Some(between)
            }
            None => {
                self.cold_misses += 1;
                None
            }
        };
        self.fenwick.add(pos, 1);
        if let Some(d) = distance {
            let d = d as usize;
            if d >= self.histogram.len() {
                self.histogram.resize(d + 1, 0);
            }
            self.histogram[d] += 1;
        }
        // The tree holds one cell per position ever assigned, but only
        // the `last_pos.len()` most-recent-access positions carry a 1.
        // Compacting when at least half the cells are dead keeps memory
        // at O(distinct blocks) instead of O(accesses), at O(log n)
        // amortized extra cost per access.
        if self.fenwick.len() >= 64 && self.fenwick.len() >= 2 * self.last_pos.len() {
            self.compact();
        }
        distance
    }

    /// Rewrites position space to drop dead (superseded) positions:
    /// live positions keep their relative order, so every future
    /// between-count — and therefore every distance — is unchanged.
    fn compact(&mut self) {
        let mut live: Vec<(usize, BlockId)> = self
            .last_pos
            .iter()
            .map(|(&block, &pos)| (pos, block))
            .collect();
        live.sort_unstable();
        self.fenwick = Fenwick::default();
        for (new_pos, &(_, block)) in live.iter().enumerate() {
            self.fenwick.append(1);
            self.last_pos.insert(block, new_pos);
        }
        self.next_pos = live.len();
    }

    /// Processes a whole access stream.
    pub fn run<I: IntoIterator<Item = BlockId>>(&mut self, accesses: I) {
        for b in accesses {
            self.access(b);
        }
    }

    /// Total accesses processed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of first-touch (infinite-distance) accesses — equals the
    /// number of distinct blocks seen.
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// The finite-distance histogram: `histogram()[d]` accesses had
    /// reuse distance exactly `d`.
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Builds the LRU miss-ratio curve implied by these distances.
    pub fn to_mrc(&self) -> crate::MissRatioCurve {
        crate::MissRatioCurve::from_histogram(self.histogram.clone(), self.cold_misses)
    }
}

/// Fixed-rate SHARDS spatial sampling (Waldspurger et al., FAST'15).
///
/// Only blocks whose hash falls below a threshold are fed to the exact
/// computation; distances are re-scaled by the sampling rate. With rate
/// `R`, cost drops by ~`1/R` while the curve stays accurate for
/// reasonably large working sets.
///
/// # Example
///
/// ```
/// use cbs_cache::ShardsSampler;
/// use cbs_trace::BlockId;
///
/// let mut sampler = ShardsSampler::new(0.5);
/// for i in 0..10_000u64 {
///     sampler.access(BlockId::new(i % 500));
/// }
/// let mrc = sampler.to_mrc();
/// // cyclic scan over 500 blocks: a 500-block cache captures everything
/// assert!(mrc.miss_ratio_at(600) < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct ShardsSampler {
    inner: ReuseDistances,
    /// Sampling threshold over the full 64-bit hash space.
    threshold: u64,
    rate: f64,
    total_accesses: u64,
}

impl ShardsSampler {
    /// Creates a sampler keeping roughly `rate` of blocks
    /// (`0 < rate <= 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate <= 1`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "sampling rate must be in (0, 1], got {rate}"
        );
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        ShardsSampler {
            inner: ReuseDistances::new(),
            threshold,
            rate,
            total_accesses: 0,
        }
    }

    /// The configured sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    #[inline]
    fn hash(block: BlockId) -> u64 {
        // splitmix64 — well-mixed for sequential block ids.
        let mut z = block.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Offers one access; sampled-out blocks are counted but not traced.
    pub fn access(&mut self, block: BlockId) {
        self.total_accesses += 1;
        if Self::hash(block) <= self.threshold {
            self.inner.access(block);
        }
    }

    /// Total accesses offered (sampled or not).
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Accesses that passed the spatial filter.
    pub fn sampled_accesses(&self) -> u64 {
        self.inner.accesses()
    }

    /// Builds the re-scaled miss-ratio curve: sampled distances are
    /// multiplied by `1/rate` to estimate true stack depths.
    pub fn to_mrc(&self) -> crate::MissRatioCurve {
        let scale = 1.0 / self.rate;
        let sampled = self.inner.histogram();
        let mut scaled: Vec<u64> = Vec::new();
        for (d, &count) in sampled.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let scaled_d = (d as f64 * scale).round() as usize;
            if scaled_d >= scaled.len() {
                scaled.resize(scaled_d + 1, 0);
            }
            scaled[scaled_d] += count;
        }
        crate::MissRatioCurve::from_histogram(scaled, self.inner.cold_misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::default();
        f.add(0, 1);
        f.add(3, 2);
        f.add(7, 5);
        assert_eq!(f.prefix(0), 1);
        assert_eq!(f.prefix(2), 1);
        assert_eq!(f.prefix(3), 3);
        assert_eq!(f.prefix(100), 8);
        f.add(3, -2);
        assert_eq!(f.prefix(6), 1);
        assert_eq!(f.len(), 8);
    }

    #[test]
    fn cold_accesses_have_no_distance() {
        let mut rd = ReuseDistances::new();
        assert_eq!(rd.access(b(1)), None);
        assert_eq!(rd.access(b(2)), None);
        assert_eq!(rd.cold_misses(), 2);
        assert_eq!(rd.accesses(), 2);
        assert!(rd.histogram().iter().all(|&c| c == 0));
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let mut rd = ReuseDistances::new();
        rd.access(b(5));
        assert_eq!(rd.access(b(5)), Some(0));
        assert_eq!(rd.histogram()[0], 1);
    }

    #[test]
    fn classic_example_distances() {
        // stream: a b c b a → distances: ∞ ∞ ∞ 1 2
        let mut rd = ReuseDistances::new();
        assert_eq!(rd.access(b(0)), None);
        assert_eq!(rd.access(b(1)), None);
        assert_eq!(rd.access(b(2)), None);
        assert_eq!(rd.access(b(1)), Some(1));
        assert_eq!(rd.access(b(0)), Some(2));
    }

    #[test]
    fn repeated_touches_do_not_inflate_distance() {
        // a b b b a: distinct blocks between the two a's is 1
        let mut rd = ReuseDistances::new();
        rd.access(b(0));
        rd.access(b(1));
        rd.access(b(1));
        rd.access(b(1));
        assert_eq!(rd.access(b(0)), Some(1));
    }

    #[test]
    fn distances_match_naive_model_on_random_stream() {
        // naive model: LRU stack as a Vec
        let stream: Vec<u64> = (0..500).map(|i| (i * 37 + 11) % 60).collect();
        let mut rd = ReuseDistances::new();
        let mut stack: Vec<u64> = Vec::new();
        for &x in &stream {
            let expected = stack.iter().rev().position(|&s| s == x).map(|d| d as u64);
            let got = rd.access(b(x));
            assert_eq!(got, expected, "block {x}");
            if let Some(pos) = stack.iter().position(|&s| s == x) {
                stack.remove(pos);
            }
            stack.push(x);
        }
    }

    #[test]
    fn compaction_bounds_memory_and_preserves_distances() {
        // 40k accesses over 100 distinct blocks, irregular revisit
        // order; compaction must keep the tree near the distinct-block
        // count while leaving every distance identical to the naive
        // LRU-stack model.
        let stream: Vec<u64> = (0..40_000).map(|i| (i * i * 7 + i * 13) % 100).collect();
        let mut rd = ReuseDistances::new();
        let mut stack: Vec<u64> = Vec::new();
        for &x in &stream {
            let expected = stack.iter().rev().position(|&s| s == x).map(|d| d as u64);
            assert_eq!(rd.access(b(x)), expected, "block {x}");
            if let Some(pos) = stack.iter().position(|&s| s == x) {
                stack.remove(pos);
            }
            stack.push(x);
        }
        assert_eq!(rd.accesses(), 40_000);
        assert!(
            rd.fenwick.len() < 2 * 100 + 64,
            "tree grew with accesses: {} cells for 100 blocks",
            rd.fenwick.len()
        );
    }

    #[test]
    fn run_consumes_stream() {
        let mut rd = ReuseDistances::new();
        rd.run((0..10u64).map(b));
        assert_eq!(rd.accesses(), 10);
        assert_eq!(rd.cold_misses(), 10);
    }

    #[test]
    fn full_rate_shards_equals_exact() {
        let stream: Vec<u64> = (0..400).map(|i| (i * 13) % 47).collect();
        let mut exact = ReuseDistances::new();
        let mut sampler = ShardsSampler::new(1.0);
        for &x in &stream {
            exact.access(b(x));
            sampler.access(b(x));
        }
        assert_eq!(sampler.sampled_accesses(), exact.accesses());
        let m_exact = exact.to_mrc();
        let m_shards = sampler.to_mrc();
        for c in [1usize, 10, 47, 100] {
            assert!((m_exact.miss_ratio_at(c) - m_shards.miss_ratio_at(c)).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_reduces_cost() {
        let mut sampler = ShardsSampler::new(0.25);
        for i in 0..10_000u64 {
            sampler.access(b(i % 1000));
        }
        assert_eq!(sampler.total_accesses(), 10_000);
        let frac = sampler.sampled_accesses() as f64 / 10_000.0;
        assert!(frac > 0.1 && frac < 0.4, "sampled fraction {frac}");
        assert!((sampler.rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn rejects_bad_rate() {
        let _ = ShardsSampler::new(0.0);
    }
}
