//! First-in-first-out replacement: [`Fifo`].

use std::collections::{HashSet, VecDeque};

use cbs_trace::BlockId;

use crate::policy::{AccessResult, CachePolicy};

/// FIFO replacement: blocks are evicted in admission order, and hits do
/// not change a block's position.
///
/// Included as an ablation baseline against [`crate::Lru`] — the delta
/// between the two isolates how much of a workload's cacheability comes
/// from *recency* rather than mere residence.
#[derive(Debug, Clone)]
pub struct Fifo {
    queue: VecDeque<BlockId>,
    resident: HashSet<BlockId>,
    capacity: usize,
}

impl Fifo {
    /// Creates a FIFO cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        Fifo {
            queue: VecDeque::with_capacity(capacity),
            resident: HashSet::with_capacity(capacity),
            capacity,
        }
    }

    /// The next eviction victim, if any.
    pub fn peek_front(&self) -> Option<BlockId> {
        self.queue.front().copied()
    }
}

impl CachePolicy for Fifo {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn contains(&self, block: BlockId) -> bool {
        self.resident.contains(&block)
    }

    fn access(&mut self, block: BlockId) -> AccessResult {
        if self.resident.contains(&block) {
            return AccessResult::HIT;
        }
        let evicted = if self.resident.len() == self.capacity {
            // A full cache always has a front to pop.
            let victim = self.queue.pop_front();
            if let Some(v) = victim {
                self.resident.remove(&v);
            }
            victim
        } else {
            None
        };
        self.queue.push_back(block);
        self.resident.insert(block);
        AccessResult {
            hit: false,
            evicted,
        }
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn conforms_to_policy_contract() {
        conformance::check_policy(Fifo::new(8), 8);
        conformance::check_policy(Fifo::new(1), 1);
        conformance::check_eviction_discipline(Fifo::new(4), 4);
    }

    #[test]
    fn hits_do_not_promote() {
        let mut fifo = Fifo::new(2);
        fifo.access(b(1));
        fifo.access(b(2));
        fifo.access(b(1)); // hit; 1 stays at the front
        let out = fifo.access(b(3));
        assert_eq!(out.evicted, Some(b(1)), "FIFO evicts oldest admission");
    }

    #[test]
    fn eviction_follows_admission_order() {
        let mut fifo = Fifo::new(3);
        for i in 1..=3 {
            fifo.access(b(i));
        }
        assert_eq!(fifo.peek_front(), Some(b(1)));
        assert_eq!(fifo.access(b(4)).evicted, Some(b(1)));
        assert_eq!(fifo.access(b(5)).evicted, Some(b(2)));
        assert_eq!(fifo.access(b(6)).evicted, Some(b(3)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = Fifo::new(0);
    }

    #[test]
    fn name() {
        assert_eq!(Fifo::new(1).name(), "fifo");
    }
}
