//! The replacement-policy abstraction: [`CachePolicy`] and
//! [`AccessResult`].

use cbs_trace::BlockId;

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// `true` if the block was resident before the access.
    pub hit: bool,
    /// The block evicted to make room, if any.
    pub evicted: Option<BlockId>,
}

impl AccessResult {
    /// A hit (nothing evicted).
    pub const HIT: AccessResult = AccessResult {
        hit: true,
        evicted: None,
    };

    /// A miss that fit without eviction.
    pub const MISS: AccessResult = AccessResult {
        hit: false,
        evicted: None,
    };

    /// A miss that evicted `victim`.
    pub fn miss_evicting(victim: BlockId) -> AccessResult {
        AccessResult {
            hit: false,
            evicted: Some(victim),
        }
    }
}

/// A block-granular cache replacement policy.
///
/// Semantics shared by every implementation in this crate:
///
/// * the cache holds at most [`capacity`](CachePolicy::capacity) blocks,
///   all of equal size (analyses choose the block unit);
/// * [`access`](CachePolicy::access) performs the policy's full
///   bookkeeping for one reference: on a miss the block is admitted,
///   evicting at most one victim; on a hit the recency/frequency state is
///   updated;
/// * reads and writes are treated identically (the paper's Finding 15
///   simulates a unified read/write cache; the split accounting lives in
///   [`crate::CacheSim`]).
///
/// The trait is object-safe so simulations can switch policies at
/// runtime (`Box<dyn CachePolicy>`).
pub trait CachePolicy {
    /// Maximum number of resident blocks.
    fn capacity(&self) -> usize;

    /// Current number of resident blocks.
    fn len(&self) -> usize;

    /// Returns `true` if no block is resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `block` is resident.
    fn contains(&self, block: BlockId) -> bool;

    /// References `block`, updating policy state.
    fn access(&mut self, block: BlockId) -> AccessResult;

    /// A short human-readable policy name (`"lru"`, `"arc"`, ...).
    fn name(&self) -> &'static str;
}

impl<P: CachePolicy + ?Sized> CachePolicy for Box<P> {
    fn capacity(&self) -> usize {
        (**self).capacity()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn contains(&self, block: BlockId) -> bool {
        (**self).contains(block)
    }

    fn access(&mut self, block: BlockId) -> AccessResult {
        (**self).access(block)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Every policy name [`policy_by_name`] accepts, in the order the
/// paper's Fig. 18 ablations report them.
pub const POLICY_NAMES: &[&str] = &["lru", "fifo", "clock", "lfu", "arc", "slru", "2q"];

/// Constructs a policy from its short name (`"lru"`, `"fifo"`,
/// `"clock"`, `"lfu"`, `"arc"`, `"slru"`, `"2q"`), so sweep grids and
/// CLI flags can be configured by string. Returns `None` for unknown
/// names.
///
/// The returned box is `Send`, so it can be moved onto sweep worker
/// threads; it coerces to plain `Box<dyn CachePolicy>` where `Send` is
/// not needed.
///
/// # Panics
///
/// Panics if `capacity` is zero, like the policy constructors.
///
/// # Example
///
/// ```
/// use cbs_cache::{policy_by_name, CachePolicy};
/// use cbs_trace::BlockId;
///
/// let mut policy = policy_by_name("arc", 64).expect("known policy");
/// assert_eq!(policy.name(), "arc");
/// assert!(!policy.access(BlockId::new(1)).hit);
/// assert!(policy_by_name("belady", 64).is_none());
/// ```
pub fn policy_by_name(name: &str, capacity: usize) -> Option<Box<dyn CachePolicy + Send>> {
    Some(match name {
        "lru" => Box::new(crate::Lru::new(capacity)),
        "fifo" => Box::new(crate::Fifo::new(capacity)),
        "clock" => Box::new(crate::Clock::new(capacity)),
        "lfu" => Box::new(crate::Lfu::new(capacity)),
        "arc" => Box::new(crate::Arc::new(capacity)),
        "slru" => Box::new(crate::Slru::new(capacity)),
        "2q" => Box::new(crate::TwoQ::new(capacity)),
        _ => return None,
    })
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared conformance checks run against every policy.

    use super::*;

    /// Exercises the invariants every policy must uphold.
    pub(crate) fn check_policy<P: CachePolicy>(mut cache: P, capacity: usize) {
        assert_eq!(cache.capacity(), capacity);
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
        assert!(!cache.contains(BlockId::new(0)));

        // deterministic access pattern with reuse
        let pattern: Vec<u64> = (0..200u64).map(|i| (i * 7) % 50).collect();
        let mut resident: std::collections::HashSet<BlockId> = Default::default();
        for &b in &pattern {
            let block = BlockId::new(b);
            let was_resident = resident.contains(&block);
            let out = cache.access(block);
            // hit report must agree with residency
            assert_eq!(out.hit, was_resident, "block {b}");
            if let Some(victim) = out.evicted {
                assert!(resident.remove(&victim), "evicted non-resident {victim}");
                assert!(!cache.contains(victim), "victim still resident");
            }
            resident.insert(block);
            assert!(cache.contains(block), "accessed block must be resident");
            assert!(cache.len() <= capacity, "capacity exceeded");
            assert_eq!(cache.len(), resident.len(), "len mismatch");
        }
        assert!(!cache.is_empty());
    }

    /// A hit never evicts; a miss at full capacity always evicts.
    pub(crate) fn check_eviction_discipline<P: CachePolicy>(mut cache: P, capacity: usize) {
        for i in 0..capacity as u64 {
            let out = cache.access(BlockId::new(i));
            assert!(!out.hit);
            assert_eq!(out.evicted, None, "no eviction before full");
        }
        let out = cache.access(BlockId::new(0));
        assert!(out.hit);
        assert_eq!(out.evicted, None, "hits never evict");
        let out = cache.access(BlockId::new(capacity as u64 + 10));
        assert!(!out.hit);
        assert!(out.evicted.is_some(), "miss at capacity must evict");
        assert_eq!(cache.len(), capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_result_constructors() {
        let (hit, miss) = (AccessResult::HIT, AccessResult::MISS);
        assert!(hit.hit);
        assert_eq!(hit.evicted, None);
        assert!(!miss.hit);
        let e = AccessResult::miss_evicting(BlockId::new(3));
        assert!(!e.hit);
        assert_eq!(e.evicted, Some(BlockId::new(3)));
    }

    #[test]
    fn factory_covers_every_name() {
        for &name in POLICY_NAMES {
            let policy = policy_by_name(name, 16).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(policy.name(), name);
            assert_eq!(policy.capacity(), 16);
        }
        assert!(policy_by_name("belady", 16).is_none());
        assert!(policy_by_name("LRU", 16).is_none(), "names are lowercase");
    }

    #[test]
    fn boxed_policy_is_object_safe_and_delegates() {
        // `Box<dyn CachePolicy>` must satisfy `CachePolicy` itself so
        // generic consumers (`CacheSim<Box<dyn CachePolicy>>`, sweep
        // lanes) can hold factory-built policies.
        let boxed: Box<dyn CachePolicy + Send> = policy_by_name("lru", 2).expect("lru exists");
        let mut boxed: Box<dyn CachePolicy> = boxed;
        assert!(boxed.is_empty());
        assert!(!boxed.access(BlockId::new(1)).hit);
        assert!(!boxed.access(BlockId::new(2)).hit);
        assert!(boxed.access(BlockId::new(1)).hit);
        let out = boxed.access(BlockId::new(3));
        assert_eq!(out.evicted, Some(BlockId::new(2)));
        assert!(boxed.contains(BlockId::new(3)));
        assert_eq!(boxed.len(), 2);
        assert_eq!(boxed.capacity(), 2);
        assert_eq!(boxed.name(), "lru");
        // And the blanket impl passes the shared conformance checks.
        conformance::check_policy(policy_by_name("2q", 32).expect("2q exists"), 32);
        conformance::check_eviction_discipline(policy_by_name("clock", 8).expect("clock"), 8);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn factory_rejects_zero_capacity() {
        let _ = policy_by_name("lru", 0);
    }
}
