//! 2Q replacement: [`TwoQ`].

use cbs_trace::BlockId;

use crate::list::LinkedSet;
use crate::policy::{AccessResult, CachePolicy};

/// The 2Q policy (Johnson & Shasha, VLDB'94), "full version".
///
/// Three queues: `A1in` (FIFO of recent first-timers, resident),
/// `A1out` (FIFO of ghosts recently evicted from `A1in`), and `Am`
/// (LRU of proven-warm blocks). A miss found in `A1out` goes straight
/// to `Am` — the block has demonstrated re-reference beyond the
/// short-term window — while a cold miss enters `A1in`. Like
/// [`crate::Arc`], 2Q resists scans, with fixed (non-adaptive) tuning:
/// `Kin = 25 %` of capacity, `Kout = 50 %` of capacity (the paper's
/// recommended settings).
#[derive(Debug, Clone)]
pub struct TwoQ {
    a1in: LinkedSet,
    a1out: LinkedSet,
    am: LinkedSet,
    capacity: usize,
    kin: usize,
    kout: usize,
}

impl TwoQ {
    /// Creates a 2Q cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        TwoQ {
            a1in: LinkedSet::new(),
            a1out: LinkedSet::new(),
            am: LinkedSet::new(),
            capacity,
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
        }
    }

    /// Sizes of `(A1in, A1out ghosts, Am)`.
    pub fn queue_sizes(&self) -> (usize, usize, usize) {
        (self.a1in.len(), self.a1out.len(), self.am.len())
    }

    /// Makes room for one admission, returning the victim if the cache
    /// is full.
    fn reclaim(&mut self) -> Option<BlockId> {
        if self.len() < self.capacity {
            return None;
        }
        if self.a1in.len() > self.kin || self.am.is_empty() {
            // A full cache is non-empty, so one of the pops succeeds.
            let victim = self.a1in.pop_lru().or_else(|| self.am.pop_lru())?;
            // A1in victims get a ghost entry
            self.a1out.push_mru(victim);
            if self.a1out.len() > self.kout {
                self.a1out.pop_lru();
            }
            Some(victim)
        } else {
            self.am.pop_lru()
        }
    }
}

impl CachePolicy for TwoQ {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    fn contains(&self, block: BlockId) -> bool {
        self.a1in.contains(block) || self.am.contains(block)
    }

    fn access(&mut self, block: BlockId) -> AccessResult {
        if self.am.contains(block) {
            self.am.push_mru(block);
            return AccessResult::HIT;
        }
        if self.a1in.contains(block) {
            // 2Q leaves A1in order untouched on hit (FIFO semantics)
            return AccessResult::HIT;
        }
        if self.a1out.contains(block) {
            // proven warm: promote into Am
            let evicted = self.reclaim();
            self.a1out.remove(block);
            self.am.push_mru(block);
            return AccessResult {
                hit: false,
                evicted,
            };
        }
        // cold miss → A1in
        let evicted = self.reclaim();
        self.a1in.push_mru(block);
        AccessResult {
            hit: false,
            evicted,
        }
    }

    fn name(&self) -> &'static str {
        "2q"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn conforms_to_policy_contract() {
        conformance::check_policy(TwoQ::new(8), 8);
        conformance::check_policy(TwoQ::new(1), 1);
        conformance::check_eviction_discipline(TwoQ::new(4), 4);
    }

    #[test]
    fn ghost_hit_promotes_to_am() {
        // capacity 4 → Kin = 1, Kout = 2
        let mut cache = TwoQ::new(4);
        for i in 1..=4 {
            cache.access(b(i)); // fill A1in
        }
        let out = cache.access(b(5)); // evicts 1 into A1out
        assert_eq!(out.evicted, Some(b(1)));
        let (_, ghosts, _) = cache.queue_sizes();
        assert_eq!(ghosts, 1, "1 is a ghost");
        // touching the ghost promotes it straight into Am
        let out = cache.access(b(1));
        assert!(!out.hit, "ghost hits are still misses");
        let (_, _, am) = cache.queue_sizes();
        assert_eq!(am, 1, "ghost hit promoted into Am");
        assert!(cache.contains(b(1)));
    }

    #[test]
    fn scan_does_not_flush_am() {
        let mut cache = TwoQ::new(8);
        // warm block 1 into Am via a ghost hit
        for i in 1..=12 {
            cache.access(b(i));
        }
        let warm = (1u64..=12).find(|&i| !cache.contains(b(i))).unwrap();
        cache.access(b(warm)); // → Am
        assert!(cache.contains(b(warm)));
        for i in 100..160 {
            cache.access(b(i)); // long scan
        }
        assert!(cache.contains(b(warm)), "Am member survives the scan");
    }

    #[test]
    fn a1in_hits_do_not_reorder() {
        let mut cache = TwoQ::new(3);
        cache.access(b(1));
        cache.access(b(2));
        cache.access(b(3));
        assert!(cache.access(b(1)).hit); // A1in hit, stays FIFO-ordered
        let out = cache.access(b(4));
        assert_eq!(out.evicted, Some(b(1)), "A1in FIFO evicts oldest");
    }

    #[test]
    fn ghost_list_is_bounded() {
        let mut cache = TwoQ::new(8);
        for i in 0..1000u64 {
            cache.access(b(i));
        }
        let (_, ghosts, _) = cache.queue_sizes();
        assert!(ghosts <= 4, "Kout bound respected, got {ghosts}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = TwoQ::new(0);
    }

    #[test]
    fn name() {
        assert_eq!(TwoQ::new(2).name(), "2q");
    }
}
