//! Least-recently-used replacement: [`Lru`].

use cbs_trace::BlockId;

use crate::list::LinkedSet;
use crate::policy::{AccessResult, CachePolicy};

/// The classic LRU policy — the one the paper's Finding 15 simulates.
///
/// On a hit the block moves to the MRU position; on a miss the block is
/// admitted at MRU, evicting the LRU block when full. All operations are
/// O(1).
///
/// # Example
///
/// ```
/// use cbs_cache::{CachePolicy, Lru};
/// use cbs_trace::BlockId;
///
/// let mut lru = Lru::new(2);
/// lru.access(BlockId::new(10));
/// lru.access(BlockId::new(20));
/// lru.access(BlockId::new(10)); // promote 10
/// let out = lru.access(BlockId::new(30));
/// assert_eq!(out.evicted, Some(BlockId::new(20)));
/// assert!(lru.contains(BlockId::new(10)));
/// ```
#[derive(Debug, Clone)]
pub struct Lru {
    set: LinkedSet,
    capacity: usize,
}

impl Lru {
    /// Creates an LRU cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        Lru {
            set: LinkedSet::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// The current LRU (next victim), if any.
    pub fn peek_lru(&self) -> Option<BlockId> {
        self.set.lru()
    }

    /// The current MRU (most recently touched), if any.
    pub fn peek_mru(&self) -> Option<BlockId> {
        self.set.mru()
    }

    /// Iterates resident blocks from LRU to MRU (O(n), for inspection).
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.set.iter()
    }
}

impl CachePolicy for Lru {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn contains(&self, block: BlockId) -> bool {
        self.set.contains(block)
    }

    fn access(&mut self, block: BlockId) -> AccessResult {
        let hit = self.set.contains(block);
        self.set.push_mru(block);
        if hit {
            return AccessResult::HIT;
        }
        if self.set.len() > self.capacity {
            // An over-full set always has an LRU to pop.
            match self.set.pop_lru() {
                Some(victim) => AccessResult::miss_evicting(victim),
                None => AccessResult::MISS,
            }
        } else {
            AccessResult::MISS
        }
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn conforms_to_policy_contract() {
        conformance::check_policy(Lru::new(8), 8);
        conformance::check_policy(Lru::new(1), 1);
        conformance::check_eviction_discipline(Lru::new(4), 4);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(3);
        for i in 1..=3 {
            lru.access(b(i));
        }
        lru.access(b(1)); // order now 2,3,1
        let out = lru.access(b(4));
        assert_eq!(out.evicted, Some(b(2)));
        let out = lru.access(b(5));
        assert_eq!(out.evicted, Some(b(3)));
        assert!(lru.contains(b(1)));
    }

    #[test]
    fn capacity_one_thrashes() {
        let mut lru = Lru::new(1);
        assert!(!lru.access(b(1)).hit);
        assert!(lru.access(b(1)).hit);
        let out = lru.access(b(2));
        assert_eq!(out.evicted, Some(b(1)));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = Lru::new(0);
    }

    #[test]
    fn stack_property_inclusion() {
        // LRU has the inclusion (stack) property: the content of a
        // size-k cache is a subset of a size-(k+1) cache at every step.
        let pattern: Vec<u64> = (0..300).map(|i| (i * 13 + 5) % 37).collect();
        let mut small = Lru::new(4);
        let mut large = Lru::new(8);
        for &x in &pattern {
            small.access(b(x));
            large.access(b(x));
            for resident in small.iter() {
                assert!(large.contains(resident), "inclusion violated at {x}");
            }
        }
    }

    #[test]
    fn peek_endpoints() {
        let mut lru = Lru::new(3);
        assert_eq!(lru.peek_lru(), None);
        lru.access(b(1));
        lru.access(b(2));
        assert_eq!(lru.peek_lru(), Some(b(1)));
        assert_eq!(lru.peek_mru(), Some(b(2)));
    }

    #[test]
    fn name() {
        assert_eq!(Lru::new(1).name(), "lru");
    }
}
