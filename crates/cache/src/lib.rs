//! Cache simulation substrate.
//!
//! Finding 15 of the IISWC'20 cloud block storage study evaluates LRU
//! miss ratios at cache sizes of 1 % and 10 % of each volume's working
//! set. `cbs-cache` provides that simulation plus the surrounding
//! machinery a storage-caching study needs:
//!
//! * [`policy`] — the object-safe [`CachePolicy`] trait;
//! * [`lru`], [`fifo`], [`lfu`], [`clock`], [`arc`], [`slru`], [`twoq`] —
//!   replacement policies (LRU is the paper's; the rest are ablation
//!   baselines);
//! * [`sim`] — [`CacheSim`], which drives a policy over a block-access
//!   stream and tallies read/write hit ratios as the paper reports them;
//! * [`reuse`] — exact reuse-distance computation (Mattson stack
//!   distances via an occupancy bitset with a hierarchical popcount
//!   index) and SHARDS-style sampled approximation;
//! * [`mrc`] — miss-ratio curves derived from reuse distances, after
//!   Counter Stacks / SHARDS (both cited by the paper);
//! * [`opt`] — Belady's offline-optimal MIN as the unbeatable baseline;
//! * [`sweep`] — the single-pass policy × capacity sweep engine: one
//!   trace traversal drives a whole grid of lanes (collapsed exact-LRU
//!   stack lane, boxed policy lanes, SHARDS-sampled lanes) over a
//!   shared block column.
//!
//! # Example
//!
//! ```
//! use cbs_cache::{CachePolicy, Lru};
//! use cbs_trace::BlockId;
//!
//! let mut lru = Lru::new(2);
//! assert!(!lru.access(BlockId::new(1)).hit);
//! assert!(!lru.access(BlockId::new(2)).hit);
//! assert!(lru.access(BlockId::new(1)).hit);     // 1 is MRU now
//! let out = lru.access(BlockId::new(3));        // evicts 2 (LRU)
//! assert_eq!(out.evicted, Some(BlockId::new(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arc;
pub mod clock;
pub mod fifo;
pub mod lfu;
pub mod list;
pub mod lru;
pub mod mrc;
pub mod opt;
pub mod policy;
pub mod reuse;
pub mod sim;
pub mod slru;
pub mod sweep;
pub mod twoq;

pub use arc::Arc;
pub use clock::Clock;
pub use fifo::Fifo;
pub use lfu::Lfu;
pub use lru::Lru;
pub use mrc::MissRatioCurve;
pub use opt::{simulate_opt, OptResult};
pub use policy::{policy_by_name, AccessResult, CachePolicy, POLICY_NAMES};
pub use reuse::{ReuseDistances, ReuseStack, ShardsSampler};
pub use sim::{CacheSim, CacheStats};
pub use slru::Slru;
pub use sweep::{CacheSweep, LaneReport, SweepError, SweepGrid, SweepReport, SweepReportParts};
pub use twoq::TwoQ;
