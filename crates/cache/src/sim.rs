//! Cache simulation over request streams: [`CacheSim`] and
//! [`CacheStats`].

use cbs_trace::{BlockAccessColumn, BlockSize, IoRequest, OpKind, RequestBatch};

use crate::policy::CachePolicy;

/// Hit/miss tallies of a simulation, split by operation kind.
///
/// MERGEABLE: tallies form a commutative monoid under [`merge`] (all
/// four counts add; zeroed stats are the identity), so per-partition
/// simulations of disjoint request streams combine into corpus-wide
/// tallies in any grouping order.
///
/// The paper's Fig. 18 reports *miss ratios* for reads and writes
/// separately while simulating one unified cache — this struct carries
/// exactly those numbers.
///
/// [`merge`]: CacheStats::merge
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    read_accesses: u64,
    read_hits: u64,
    write_accesses: u64,
    write_hits: u64,
}

impl CacheStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds stats from pre-tallied access and hit counts.
    ///
    /// Used by consumers that derive hit counts analytically instead of
    /// recording access-by-access — the sweep engine's collapsed LRU
    /// lane turns one reuse-distance histogram into the exact
    /// `CacheStats` of every capacity this way (stack property: an
    /// access hits capacity `c` iff its reuse distance is `< c`).
    pub fn from_counts(
        read_accesses: u64,
        read_hits: u64,
        write_accesses: u64,
        write_hits: u64,
    ) -> Self {
        CacheStats {
            read_accesses,
            read_hits,
            write_accesses,
            write_hits,
        }
    }

    /// Records one block access.
    pub fn record(&mut self, op: OpKind, hit: bool) {
        match op {
            OpKind::Read => {
                self.read_accesses += 1;
                self.read_hits += u64::from(hit);
            }
            OpKind::Write => {
                self.write_accesses += 1;
                self.write_hits += u64::from(hit);
            }
        }
    }

    /// Number of read block-accesses.
    pub fn read_accesses(&self) -> u64 {
        self.read_accesses
    }

    /// Number of write block-accesses.
    pub fn write_accesses(&self) -> u64 {
        self.write_accesses
    }

    /// Total block-accesses.
    pub fn total_accesses(&self) -> u64 {
        self.read_accesses + self.write_accesses
    }

    /// Read hits.
    pub fn read_hits(&self) -> u64 {
        self.read_hits
    }

    /// Write hits.
    pub fn write_hits(&self) -> u64 {
        self.write_hits
    }

    /// Read miss ratio, or `None` if no reads were simulated.
    pub fn read_miss_ratio(&self) -> Option<f64> {
        (self.read_accesses > 0).then(|| 1.0 - self.read_hits as f64 / self.read_accesses as f64)
    }

    /// Write miss ratio, or `None` if no writes were simulated.
    pub fn write_miss_ratio(&self) -> Option<f64> {
        (self.write_accesses > 0).then(|| 1.0 - self.write_hits as f64 / self.write_accesses as f64)
    }

    /// Overall miss ratio, or `None` if nothing was simulated.
    pub fn overall_miss_ratio(&self) -> Option<f64> {
        let total = self.total_accesses();
        (total > 0).then(|| 1.0 - (self.read_hits + self.write_hits) as f64 / total as f64)
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.read_accesses += other.read_accesses;
        self.read_hits += other.read_hits;
        self.write_accesses += other.write_accesses;
        self.write_hits += other.write_hits;
    }

    /// Publishes this tally into `registry` as gauges named
    /// `<prefix>.read_accesses`, `.read_hits`, `.write_accesses`, and
    /// `.write_hits` (miss ratios derive from those). Idempotent —
    /// gauges are *set*, so re-publishing after more simulation
    /// overwrites rather than double-counts.
    pub fn publish(&self, registry: &cbs_obs::Registry, prefix: &str) {
        registry
            .gauge(&format!("{prefix}.read_accesses"))
            .set(self.read_accesses);
        registry
            .gauge(&format!("{prefix}.read_hits"))
            .set(self.read_hits);
        registry
            .gauge(&format!("{prefix}.write_accesses"))
            .set(self.write_accesses);
        registry
            .gauge(&format!("{prefix}.write_hits"))
            .set(self.write_hits);
    }
}

/// Drives a [`CachePolicy`] over a block-level request stream.
///
/// Requests are decomposed into fixed-size block accesses
/// (via [`BlockSize::span_of`]); each block touched counts as one access
/// of the request's kind — reads and writes share the cache, as in the
/// paper's unified-cache simulation.
///
/// # Example
///
/// ```
/// use cbs_cache::{CacheSim, Lru};
/// use cbs_trace::{BlockSize, IoRequest, OpKind, Timestamp, VolumeId};
///
/// let reqs = vec![
///     IoRequest::new(VolumeId::new(0), OpKind::Write, 0, 8192, Timestamp::from_secs(0)),
///     IoRequest::new(VolumeId::new(0), OpKind::Read, 0, 8192, Timestamp::from_secs(1)),
/// ];
/// let mut sim = CacheSim::new(Lru::new(16), BlockSize::DEFAULT);
/// sim.run(&reqs);
/// let stats = sim.stats();
/// assert_eq!(stats.write_accesses(), 2);      // 2 blocks written (miss)
/// assert_eq!(stats.read_miss_ratio(), Some(0.0)); // both read blocks hit
/// ```
#[derive(Debug)]
pub struct CacheSim<P> {
    policy: P,
    block_size: BlockSize,
    stats: CacheStats,
}

impl<P: CachePolicy> CacheSim<P> {
    /// Creates a simulation of `policy` with `block_size` granularity.
    pub fn new(policy: P, block_size: BlockSize) -> Self {
        CacheSim {
            policy,
            block_size,
            stats: CacheStats::new(),
        }
    }

    /// Simulates one request (every block it touches).
    pub fn access_request(&mut self, req: &IoRequest) {
        for block in self.block_size.span_of(req) {
            let out = self.policy.access(block);
            self.stats.record(req.op(), out.hit);
        }
    }

    /// Simulates a whole request stream.
    pub fn run<'a, I>(&mut self, requests: I)
    where
        I: IntoIterator<Item = &'a IoRequest>,
    {
        for req in requests {
            self.access_request(req);
        }
    }

    /// Simulates every access of an already-expanded block column.
    ///
    /// Together with [`RequestBatch::expand_blocks_into`] this is the
    /// shared-expansion fast path: expand a batch once, then replay the
    /// column into any number of simulations — bit-identical to
    /// [`run`](Self::run) over the originating requests, without paying
    /// the `span_of` walk per policy.
    pub fn run_column(&mut self, column: &BlockAccessColumn) {
        for (block, op) in column.iter() {
            let out = self.policy.access(block);
            self.stats.record(op, out.hit);
        }
    }

    /// Simulates a columnar batch, expanding it into `scratch` first
    /// (replacing the scratch contents).
    ///
    /// Callers that simulate several policies over the same batch
    /// should expand once themselves and call
    /// [`run_column`](Self::run_column) per policy instead.
    pub fn run_batch(&mut self, batch: &RequestBatch, scratch: &mut BlockAccessColumn) {
        batch.expand_blocks_into(self.block_size, scratch);
        self.run_column(scratch);
    }

    /// The tallies so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The policy under simulation.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Consumes the simulation, returning the policy and stats.
    pub fn into_parts(self) -> (P, CacheStats) {
        (self.policy, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lru;
    use cbs_trace::{Timestamp, VolumeId};

    fn req(op: OpKind, offset: u64, len: u32, s: u64) -> IoRequest {
        IoRequest::new(VolumeId::new(0), op, offset, len, Timestamp::from_secs(s))
    }

    #[test]
    fn stats_split_by_op() {
        let mut s = CacheStats::new();
        s.record(OpKind::Read, true);
        s.record(OpKind::Read, false);
        s.record(OpKind::Write, false);
        assert_eq!(s.read_accesses(), 2);
        assert_eq!(s.write_accesses(), 1);
        assert_eq!(s.read_miss_ratio(), Some(0.5));
        assert_eq!(s.write_miss_ratio(), Some(1.0));
        assert!((s.overall_miss_ratio().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_return_none() {
        let s = CacheStats::new();
        assert_eq!(s.read_miss_ratio(), None);
        assert_eq!(s.write_miss_ratio(), None);
        assert_eq!(s.overall_miss_ratio(), None);
        assert_eq!(s.total_accesses(), 0);
    }

    #[test]
    fn merge_adds_tallies() {
        let mut a = CacheStats::new();
        a.record(OpKind::Read, true);
        let mut b = CacheStats::new();
        b.record(OpKind::Write, false);
        b.record(OpKind::Read, false);
        a.merge(&b);
        assert_eq!(a.total_accesses(), 3);
        assert_eq!(a.read_hits(), 1);
        assert_eq!(a.write_hits(), 0);
    }

    #[test]
    fn request_decomposes_into_blocks() {
        let mut sim = CacheSim::new(Lru::new(64), BlockSize::DEFAULT);
        sim.access_request(&req(OpKind::Write, 0, 16384, 0)); // 4 blocks
        assert_eq!(sim.stats().write_accesses(), 4);
        assert_eq!(sim.stats().write_hits(), 0);
        sim.access_request(&req(OpKind::Write, 0, 16384, 1)); // same 4 blocks
        assert_eq!(sim.stats().write_hits(), 4);
    }

    #[test]
    fn reads_and_writes_share_the_cache() {
        let mut sim = CacheSim::new(Lru::new(64), BlockSize::DEFAULT);
        sim.access_request(&req(OpKind::Write, 0, 4096, 0));
        sim.access_request(&req(OpKind::Read, 0, 4096, 1));
        // the read hits the block the write brought in
        assert_eq!(sim.stats().read_miss_ratio(), Some(0.0));
    }

    #[test]
    fn tiny_cache_thrashes_on_cyclic_scan() {
        // cyclic scan over 8 blocks with a 4-block LRU: always misses
        let reqs: Vec<_> = (0..32)
            .map(|i| req(OpKind::Read, (i % 8) * 4096, 4096, i))
            .collect();
        let mut sim = CacheSim::new(Lru::new(4), BlockSize::DEFAULT);
        sim.run(&reqs);
        assert_eq!(sim.stats().read_miss_ratio(), Some(1.0));
    }

    #[test]
    fn publish_sets_gauges_idempotently() {
        let registry = cbs_obs::Registry::new();
        let mut sim = CacheSim::new(Lru::new(64), BlockSize::DEFAULT);
        sim.access_request(&req(OpKind::Write, 0, 16384, 0));
        sim.stats().publish(&registry, "cache.lru");
        assert_eq!(registry.gauge("cache.lru.write_accesses").get(), 4);
        assert_eq!(registry.gauge("cache.lru.write_hits").get(), 0);
        // More simulation, re-publish: levels overwrite, not accumulate.
        sim.access_request(&req(OpKind::Write, 0, 16384, 1));
        sim.stats().publish(&registry, "cache.lru");
        assert_eq!(registry.gauge("cache.lru.write_accesses").get(), 8);
        assert_eq!(registry.gauge("cache.lru.write_hits").get(), 4);
        assert_eq!(registry.gauge("cache.lru.read_accesses").get(), 0);
    }

    #[test]
    fn from_counts_roundtrips_record() {
        let mut recorded = CacheStats::new();
        recorded.record(OpKind::Read, true);
        recorded.record(OpKind::Read, false);
        recorded.record(OpKind::Write, false);
        assert_eq!(recorded, CacheStats::from_counts(2, 1, 1, 0));
    }

    #[test]
    fn run_batch_matches_run() {
        let reqs: Vec<IoRequest> = (0..300)
            .map(|i| {
                req(
                    if i % 3 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    (i % 23) * 4096 + 100 * (i % 7),
                    (i % 5) as u32 * 4096 + 1,
                    i,
                )
            })
            .collect();
        let mut by_request = CacheSim::new(Lru::new(16), BlockSize::DEFAULT);
        by_request.run(&reqs);
        let batch = cbs_trace::RequestBatch::from(reqs.as_slice());
        let mut scratch = BlockAccessColumn::new();
        let mut by_batch = CacheSim::new(Lru::new(16), BlockSize::DEFAULT);
        by_batch.run_batch(&batch, &mut scratch);
        assert_eq!(by_batch.stats(), by_request.stats());
        // Shared expansion: replaying the same scratch column into a
        // fresh sim reproduces the stats again.
        let mut by_column = CacheSim::new(Lru::new(16), BlockSize::DEFAULT);
        by_column.run_column(&scratch);
        assert_eq!(by_column.stats(), by_request.stats());
    }

    #[test]
    fn into_parts_returns_policy() {
        let mut sim = CacheSim::new(Lru::new(4), BlockSize::DEFAULT);
        sim.access_request(&req(OpKind::Read, 0, 4096, 0));
        let (policy, stats) = sim.into_parts();
        assert_eq!(policy.len(), 1);
        assert_eq!(stats.read_accesses(), 1);
    }
}
