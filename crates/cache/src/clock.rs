//! Second-chance (CLOCK) replacement: [`Clock`].

use std::collections::HashMap;

use cbs_trace::BlockId;

use crate::policy::{AccessResult, CachePolicy};

/// The CLOCK (second-chance) policy: an LRU approximation with O(1)
/// hits, the standard choice where true LRU bookkeeping is too hot.
///
/// Resident blocks sit on a circular buffer, each with a reference bit.
/// A hit sets the bit; a miss sweeps the hand, clearing bits until it
/// finds a cleared one to evict.
#[derive(Debug, Clone)]
pub struct Clock {
    /// Circular buffer of frames (block + reference bit). Grows to
    /// capacity and then stays fixed.
    frames: Vec<Frame>,
    /// Block → frame index.
    index: HashMap<BlockId, usize>,
    hand: usize,
    capacity: usize,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    block: BlockId,
    referenced: bool,
}

impl Clock {
    /// Creates a CLOCK cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        Clock {
            frames: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            hand: 0,
            capacity,
        }
    }
}

impl CachePolicy for Clock {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.frames.len()
    }

    fn contains(&self, block: BlockId) -> bool {
        self.index.contains_key(&block)
    }

    fn access(&mut self, block: BlockId) -> AccessResult {
        if let Some(&slot) = self.index.get(&block) {
            self.frames[slot].referenced = true;
            return AccessResult::HIT;
        }
        if self.frames.len() < self.capacity {
            self.index.insert(block, self.frames.len());
            self.frames.push(Frame {
                block,
                referenced: false,
            });
            return AccessResult::MISS;
        }
        // sweep: clear reference bits until an unreferenced frame is found
        loop {
            let frame = &mut self.frames[self.hand];
            if frame.referenced {
                frame.referenced = false;
                self.hand = (self.hand + 1) % self.capacity;
            } else {
                let victim = frame.block;
                self.index.remove(&victim);
                frame.block = block;
                frame.referenced = false;
                self.index.insert(block, self.hand);
                self.hand = (self.hand + 1) % self.capacity;
                return AccessResult::miss_evicting(victim);
            }
        }
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn conforms_to_policy_contract() {
        conformance::check_policy(Clock::new(8), 8);
        conformance::check_policy(Clock::new(1), 1);
        conformance::check_eviction_discipline(Clock::new(4), 4);
    }

    #[test]
    fn second_chance_spares_referenced_blocks() {
        let mut clock = Clock::new(2);
        clock.access(b(1));
        clock.access(b(2));
        clock.access(b(1)); // sets reference bit of 1
        let out = clock.access(b(3));
        // hand starts at frame 0 (block 1): referenced → spared.
        // frame 1 (block 2): unreferenced → evicted.
        assert_eq!(out.evicted, Some(b(2)));
        assert!(clock.contains(b(1)));
    }

    #[test]
    fn sweep_wraps_when_all_referenced() {
        let mut clock = Clock::new(2);
        clock.access(b(1));
        clock.access(b(2));
        clock.access(b(1));
        clock.access(b(2)); // both referenced
        let out = clock.access(b(3));
        // both bits cleared during sweep; frame 0 (block 1) evicts.
        assert_eq!(out.evicted, Some(b(1)));
        assert_eq!(clock.len(), 2);
    }

    #[test]
    fn capacity_one() {
        let mut clock = Clock::new(1);
        assert!(!clock.access(b(1)).hit);
        assert!(clock.access(b(1)).hit);
        let out = clock.access(b(2));
        assert_eq!(out.evicted, Some(b(1)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = Clock::new(0);
    }
}
