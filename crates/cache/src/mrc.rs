//! Miss-ratio curves: [`MissRatioCurve`].

/// The LRU miss-ratio curve implied by a reuse-distance histogram.
///
/// Under LRU's stack property, an access with reuse distance `d` hits a
/// cache of capacity `c` iff `d < c`; cold (infinite-distance) accesses
/// always miss. The curve therefore is
/// `miss(c) = (cold + #{d ≥ c}) / total` — monotonically non-increasing
/// in `c`.
///
/// MERGEABLE: curves form a commutative monoid under [`merge`]
/// (cumulative hit counts add element-wise with the shorter curve
/// extended flat, totals add; an empty curve is the identity). Merging
/// the curves of two reuse-distance histograms equals building one
/// curve from the summed histograms, so per-partition MRCs combine
/// exactly — per volume, since reuse distances are only meaningful
/// within one request stream.
///
/// [`merge`]: MissRatioCurve::merge
///
/// # Example
///
/// ```
/// use cbs_cache::ReuseDistances;
/// use cbs_trace::BlockId;
///
/// let mut rd = ReuseDistances::new();
/// // two rounds over 4 blocks
/// for &x in &[0u64, 1, 2, 3, 0, 1, 2, 3] {
///     rd.access(BlockId::new(x));
/// }
/// let mrc = rd.to_mrc();
/// assert_eq!(mrc.miss_ratio_at(4), 0.5);  // only the cold misses
/// assert_eq!(mrc.miss_ratio_at(3), 1.0);  // distance-3 reuses miss too
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MissRatioCurve {
    /// `hits_below[c]` = number of accesses with reuse distance < c,
    /// i.e. the hit count at capacity c. Index 0 is always 0.
    hits_below: Vec<u64>,
    total: u64,
}

impl MissRatioCurve {
    /// Builds a curve from a finite-distance histogram
    /// (`histogram[d]` = accesses with distance exactly `d`) plus the
    /// cold-miss count.
    pub fn from_histogram(histogram: Vec<u64>, cold_misses: u64) -> Self {
        let finite: u64 = histogram.iter().sum();
        let mut hits_below = Vec::with_capacity(histogram.len() + 1);
        hits_below.push(0);
        let mut acc = 0u64;
        for &count in &histogram {
            acc += count;
            hits_below.push(acc);
        }
        MissRatioCurve {
            hits_below,
            total: finite + cold_misses,
        }
    }

    /// Rebuilds a curve from [`Self::cumulative_hits`] and
    /// [`Self::total_accesses`] — the wire-codec inverse.
    ///
    /// # Panics
    ///
    /// Panics if the parts violate the curve invariants: the vector
    /// must start at 0, be non-decreasing, and never exceed `total`.
    pub fn from_parts(hits_below: Vec<u64>, total: u64) -> Self {
        assert!(
            hits_below.first().map_or(true, |&h| h == 0),
            "hits_below[0] must be 0"
        );
        assert!(
            hits_below.windows(2).all(|w| w[0] <= w[1]),
            "hits_below must be non-decreasing"
        );
        assert!(
            hits_below.last().map_or(true, |&h| h <= total),
            "hits cannot exceed total accesses"
        );
        let hits_below = if hits_below.is_empty() {
            vec![0]
        } else {
            hits_below
        };
        MissRatioCurve { hits_below, total }
    }

    /// The cumulative hit counts: entry `c` is the number of accesses
    /// hitting an LRU cache of capacity `c`. Flat past the end.
    pub fn cumulative_hits(&self) -> &[u64] {
        &self.hits_below
    }

    /// Total accesses behind the curve.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Folds another curve into this one: cumulative hit counts add
    /// element-wise (each curve is flat past its last entry, so the
    /// shorter side extends by its final value) and totals add.
    ///
    /// Equals building one curve from the summed reuse-distance
    /// histograms, which is exact when both curves describe the same
    /// block population — the partition-by-volume case.
    pub fn merge(&mut self, other: &MissRatioCurve) {
        let self_last = self.hits_below.last().copied().unwrap_or(0);
        let other_last = other.hits_below.last().copied().unwrap_or(0);
        if other.hits_below.len() > self.hits_below.len() {
            self.hits_below.resize(other.hits_below.len(), self_last);
        }
        for (a, &b) in self.hits_below.iter_mut().zip(&other.hits_below) {
            *a += b;
        }
        for a in self.hits_below.iter_mut().skip(other.hits_below.len()) {
            *a += other_last;
        }
        self.total += other.total;
    }

    /// The miss ratio of an LRU cache with capacity `capacity` blocks.
    ///
    /// Returns 1.0 for an empty curve (no accesses ⇒ conventionally all
    /// misses, keeping callers' comparisons total).
    pub fn miss_ratio_at(&self, capacity: usize) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let idx = capacity.min(self.hits_below.len() - 1);
        let hits = self.hits_below[idx];
        1.0 - hits as f64 / self.total as f64
    }

    /// The hit ratio at `capacity` (complement of the miss ratio).
    pub fn hit_ratio_at(&self, capacity: usize) -> f64 {
        1.0 - self.miss_ratio_at(capacity)
    }

    /// The smallest capacity whose miss ratio is ≤ `target`, or `None`
    /// if even an unbounded cache misses more than `target` (compulsory
    /// misses dominate).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ target ≤ 1`.
    pub fn capacity_for_miss_ratio(&self, target: f64) -> Option<usize> {
        assert!(
            (0.0..=1.0).contains(&target),
            "target miss ratio must be in [0, 1]"
        );
        // miss ratio is non-increasing in capacity → binary search works,
        // but the vector is small; scan for clarity.
        (0..self.hits_below.len()).find(|&c| self.miss_ratio_at(c) <= target)
    }

    /// Samples the curve at `steps` evenly spaced capacities up to
    /// `max_capacity`, returning `(capacity, miss_ratio)` points.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn points(&self, max_capacity: usize, steps: usize) -> Vec<(usize, f64)> {
        assert!(steps > 0, "steps must be positive");
        (0..=steps)
            .map(|k| {
                let c = max_capacity * k / steps;
                (c, self.miss_ratio_at(c))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_curve_is_all_misses() {
        let mrc = MissRatioCurve::from_histogram(Vec::new(), 0);
        assert_eq!(mrc.total_accesses(), 0);
        assert_eq!(mrc.miss_ratio_at(0), 1.0);
        assert_eq!(mrc.miss_ratio_at(1000), 1.0);
    }

    #[test]
    fn cold_only_curve() {
        let mrc = MissRatioCurve::from_histogram(Vec::new(), 10);
        assert_eq!(mrc.miss_ratio_at(0), 1.0);
        assert_eq!(
            mrc.miss_ratio_at(100),
            1.0,
            "compulsory misses never disappear"
        );
    }

    #[test]
    fn simple_histogram() {
        // 4 accesses at distance 0, 4 at distance 2, 2 cold
        let mrc = MissRatioCurve::from_histogram(vec![4, 0, 4], 2);
        assert_eq!(mrc.total_accesses(), 10);
        assert_eq!(mrc.miss_ratio_at(0), 1.0);
        assert_eq!(mrc.miss_ratio_at(1), 0.6); // distance-0 hits
        assert_eq!(mrc.miss_ratio_at(2), 0.6);
        assert!((mrc.miss_ratio_at(3) - 0.2).abs() < 1e-12); // + distance-2 hits
        assert!((mrc.miss_ratio_at(999) - 0.2).abs() < 1e-12);
        assert!((mrc.hit_ratio_at(3) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_non_increasing() {
        let mrc = MissRatioCurve::from_histogram(vec![3, 1, 4, 1, 5, 9, 2, 6], 7);
        let mut prev = f64::INFINITY;
        for c in 0..12 {
            let m = mrc.miss_ratio_at(c);
            assert!(m <= prev, "c={c}");
            prev = m;
        }
    }

    #[test]
    fn capacity_for_target() {
        let mrc = MissRatioCurve::from_histogram(vec![5, 5], 0);
        // miss(0)=1.0, miss(1)=0.5, miss(2)=0.0
        assert_eq!(mrc.capacity_for_miss_ratio(1.0), Some(0));
        assert_eq!(mrc.capacity_for_miss_ratio(0.5), Some(1));
        assert_eq!(mrc.capacity_for_miss_ratio(0.1), Some(2));
        let cold = MissRatioCurve::from_histogram(vec![], 3);
        assert_eq!(cold.capacity_for_miss_ratio(0.5), None);
    }

    #[test]
    fn points_sample_the_curve() {
        let mrc = MissRatioCurve::from_histogram(vec![10; 10], 0);
        let pts = mrc.points(10, 5);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], (0, 1.0));
        assert_eq!(pts[5].0, 10);
        assert!(pts.windows(2).all(|w| w[1].1 <= w[0].1));
    }

    #[test]
    #[should_panic(expected = "target miss ratio")]
    fn rejects_bad_target() {
        let mrc = MissRatioCurve::from_histogram(vec![1], 0);
        let _ = mrc.capacity_for_miss_ratio(1.5);
    }
}
