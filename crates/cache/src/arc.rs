//! Adaptive Replacement Cache: [`Arc`].

use cbs_trace::BlockId;

use crate::list::LinkedSet;
use crate::policy::{AccessResult, CachePolicy};

/// ARC (Megiddo & Modha, FAST'03): a scan-resistant policy that adapts
/// between recency and frequency.
///
/// The cache is split into a recency list `T1` and a frequency list
/// `T2`, shadowed by ghost lists `B1`/`B2` of recently evicted block
/// ids. Ghost hits steer the adaptation target `p` (the desired size of
/// `T1`). Included as an ablation baseline for the paper's Finding 15:
/// cloud volumes whose writes aggregate in small hot sets reward
/// frequency-awareness, while scan-like volumes reward recency.
///
/// # Example
///
/// ```
/// use cbs_cache::{Arc, CachePolicy};
/// use cbs_trace::BlockId;
///
/// let mut arc = Arc::new(2);
/// arc.access(BlockId::new(1));
/// arc.access(BlockId::new(1)); // promoted to the frequency list
/// arc.access(BlockId::new(2));
/// arc.access(BlockId::new(3)); // scan: evicts from the recency side
/// assert!(arc.contains(BlockId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Arc {
    t1: LinkedSet,
    t2: LinkedSet,
    b1: LinkedSet,
    b2: LinkedSet,
    /// Adaptation target for |T1|, in `0..=capacity`.
    p: usize,
    capacity: usize,
}

impl Arc {
    /// Creates an ARC cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        Arc {
            t1: LinkedSet::new(),
            t2: LinkedSet::new(),
            b1: LinkedSet::new(),
            b2: LinkedSet::new(),
            p: 0,
            capacity,
        }
    }

    /// The current adaptation target for the recency list size.
    pub fn target_t1(&self) -> usize {
        self.p
    }

    /// Sizes of `(T1, T2, B1, B2)` — exposed for tests and diagnostics.
    pub fn list_sizes(&self) -> (usize, usize, usize, usize) {
        (self.t1.len(), self.t2.len(), self.b1.len(), self.b2.len())
    }

    /// The REPLACE subroutine: evicts one resident block from T1 or T2
    /// into the corresponding ghost list and returns it. `None` only if
    /// both lists are empty, which REPLACE's callers never allow.
    fn replace(&mut self, in_b2: bool) -> Option<BlockId> {
        let from_t1 =
            !self.t1.is_empty() && (self.t1.len() > self.p || (in_b2 && self.t1.len() == self.p));
        if from_t1 {
            let victim = self.t1.pop_lru()?;
            self.b1.push_mru(victim);
            Some(victim)
        } else {
            debug_assert!(!self.t2.is_empty(), "REPLACE called on an empty cache");
            let victim = self.t2.pop_lru()?;
            self.b2.push_mru(victim);
            Some(victim)
        }
    }
}

impl CachePolicy for Arc {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn contains(&self, block: BlockId) -> bool {
        self.t1.contains(block) || self.t2.contains(block)
    }

    fn access(&mut self, block: BlockId) -> AccessResult {
        // Case I: hit in T1 or T2 → promote to T2 MRU.
        if self.t1.remove(block) || self.t2.contains(block) {
            self.t2.push_mru(block);
            return AccessResult::HIT;
        }

        // Case II: ghost hit in B1 → grow p, replace, admit into T2.
        if self.b1.contains(block) {
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(self.capacity);
            let evicted = self.replace(false);
            self.b1.remove(block);
            self.t2.push_mru(block);
            return AccessResult {
                hit: false,
                evicted,
            };
        }

        // Case III: ghost hit in B2 → shrink p, replace, admit into T2.
        if self.b2.contains(block) {
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            let evicted = self.replace(true);
            self.b2.remove(block);
            self.t2.push_mru(block);
            return AccessResult {
                hit: false,
                evicted,
            };
        }

        // Case IV: full miss.
        let l1 = self.t1.len() + self.b1.len();
        let evicted = if l1 == self.capacity {
            if self.t1.len() < self.capacity {
                self.b1.pop_lru();
                self.replace(false)
            } else {
                // B1 empty and T1 full: discard T1's LRU outright.
                self.t1.pop_lru()
            }
        } else {
            let total = l1 + self.t2.len() + self.b2.len();
            if total >= self.capacity {
                if total == 2 * self.capacity {
                    self.b2.pop_lru();
                }
                self.replace(false)
            } else {
                None
            }
        };
        self.t1.push_mru(block);
        AccessResult {
            hit: false,
            evicted,
        }
    }

    fn name(&self) -> &'static str {
        "arc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn conforms_to_policy_contract() {
        conformance::check_policy(Arc::new(8), 8);
        conformance::check_policy(Arc::new(1), 1);
        conformance::check_eviction_discipline(Arc::new(4), 4);
    }

    #[test]
    fn repeated_access_promotes_to_t2() {
        let mut arc = Arc::new(4);
        arc.access(b(1));
        let (t1, t2, _, _) = arc.list_sizes();
        assert_eq!((t1, t2), (1, 0));
        arc.access(b(1));
        let (t1, t2, _, _) = arc.list_sizes();
        assert_eq!((t1, t2), (0, 1));
    }

    #[test]
    fn scan_resistance() {
        // A hot set of 2 blocks, then a long cold scan. ARC keeps the
        // hot blocks in T2 while the scan churns through T1.
        let mut arc = Arc::new(4);
        for _ in 0..4 {
            arc.access(b(1));
            arc.access(b(2));
        }
        for i in 100..130 {
            arc.access(b(i));
        }
        assert!(arc.contains(b(1)), "hot block 1 survives the scan");
        assert!(arc.contains(b(2)), "hot block 2 survives the scan");
    }

    #[test]
    fn ghost_hit_in_b1_grows_p() {
        let mut arc = Arc::new(2);
        arc.access(b(1));
        arc.access(b(1)); // 1 → T2
        arc.access(b(2)); // T1=[2], T2=[1]
        let out = arc.access(b(3)); // REPLACE evicts 2 from T1 into B1
        assert_eq!(out.evicted, Some(b(2)));
        assert_eq!(arc.target_t1(), 0);
        arc.access(b(2)); // ghost hit in B1
        assert!(arc.target_t1() >= 1, "p grew after B1 ghost hit");
        assert!(arc.contains(b(2)));
    }

    #[test]
    fn t1_overflow_discards_without_ghost() {
        // With only cold misses, T1 fills to capacity; the next miss
        // discards T1's LRU outright (case IV, |T1| = c, B1 empty).
        let mut arc = Arc::new(2);
        arc.access(b(1));
        arc.access(b(2));
        let out = arc.access(b(3));
        assert_eq!(out.evicted, Some(b(1)));
        let (_, _, b1, _) = arc.list_sizes();
        assert_eq!(b1, 0, "discarded block does not enter B1");
    }

    #[test]
    fn directory_bounded_by_2c() {
        let mut arc = Arc::new(8);
        for i in 0..1000u64 {
            arc.access(b(i * 3 % 64));
        }
        let (t1, t2, b1, b2) = arc.list_sizes();
        assert!(t1 + t2 <= 8);
        assert!(t1 + b1 <= 8, "L1 bounded by c");
        assert!(t1 + t2 + b1 + b2 <= 16, "directory bounded by 2c");
    }

    #[test]
    fn p_stays_in_range() {
        let mut arc = Arc::new(6);
        for i in 0..2000u64 {
            arc.access(b((i * 7) % 23));
        }
        assert!(arc.target_t1() <= 6);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = Arc::new(0);
    }

    #[test]
    fn name() {
        assert_eq!(Arc::new(1).name(), "arc");
    }
}
