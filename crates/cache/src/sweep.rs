//! Single-pass policy × capacity sweeps: [`SweepGrid`], [`CacheSweep`]
//! and [`SweepReport`].
//!
//! [`crate::CacheSim`] answers one `(policy, capacity)` pair per trace
//! traversal, so a Fig. 18-style grid of 6 policies × 5 capacities
//! costs 30 decode passes and 30 redundant request → block expansions.
//! The sweep engine drives the whole grid from **one** traversal:
//!
//! ```text
//! producer (caller thread)               lanes
//! ┌──────────────────────────┐      ┌─────────────────────────────┐
//! │ RequestBatch             │      │ lru stack lane              │
//! │  └ expand_blocks_into    │      │  one ReuseStack pass        │
//! │    (shared SoA column,   │ ───► │  → exact stats at EVERY     │
//! │     expanded ONCE)       │ Arc< │    lru capacity (Mattson)   │
//! │  └ SHARDS sample filter  │ Sweep├─────────────────────────────┤
//! │    (hashed ONCE)         │ Col> │ boxed policy lanes          │
//! └──────────────────────────┘      │  fifo/clock/lfu/arc/slru/2q │
//!       │ bounded channels          │  exact or SHARDS-sampled    │
//!       ▼ (when workers > 0)        ├─────────────────────────────┤
//!   worker threads, each            │ sampled MRC lane            │
//!   processing a lane subset        │  (approximate LRU curve)    │
//!                                   └─────────────────────────────┘
//! ```
//!
//! Three mechanisms carry the speedup (measured in `BENCH_cache.json`):
//!
//! * the trace is generated/decoded **once**, not once per pair;
//! * each batch is expanded to a block/op column **once** and shared by
//!   every lane (no per-lane [`cbs_trace::BlockSize::span_of`] walk);
//! * all exact-LRU lanes collapse into a **single**
//!   [`crate::ReuseStack`] pass — by the Mattson stack property, an
//!   access hits an LRU cache of capacity `c` iff its reuse distance is
//!   `< c`, so one op-split distance histogram answers every capacity
//!   with stats bit-identical to a per-capacity [`crate::CacheSim`].
//!
//! Non-stack policies still pay one policy-state update per access per
//! lane; the SHARDS-sampled mode ([`SweepGrid::sampled_policy`]) cuts
//! that to ~`rate` of the accesses by simulating a miniature cache of
//! `capacity × rate` blocks over the spatially-sampled substream
//! (Waldspurger et al., FAST'15 / ATC'17), trading bounded error for
//! ~1/rate cost.
//!
//! When worker threads are configured ([`SweepGrid::with_workers`]),
//! lanes are fanned out round-robin over bounded channels; with zero
//! workers the same lane code runs inline on the caller thread — the
//! sequential fallback is the same code path.
//!
//! Like [`crate::CacheSim`], the engine ignores the volume column: all
//! accesses share one unified cache. Per-volume sweeps feed per-volume
//! streams (see `Analysis::sweep_volume` in `cbs-core`).

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use cbs_obs::{Registry, Stopwatch};
use cbs_trace::hash::FxHashMap;
use cbs_trace::{BlockAccessColumn, BlockId, BlockSize, IoRequest, OpKind, RequestBatch};

use crate::policy::{policy_by_name, CachePolicy, POLICY_NAMES};
use crate::reuse::{shards_hash, ReuseStack, ShardsSampler};
use crate::sim::CacheStats;
use crate::MissRatioCurve;

/// Default requests buffered by [`CacheSweep::observe_request`] before
/// a batch is expanded and dispatched — matches the streaming
/// pipeline's batch size.
pub const DEFAULT_SWEEP_BATCH: usize = 8192;

/// Default in-flight columns allowed per worker channel.
const CHANNEL_DEPTH: usize = 4;

/// Default SHARDS sampling rate for sampled lanes: ~1/100 cost.
pub const DEFAULT_SAMPLE_RATE: f64 = 0.01;

/// A sweep-grid configuration error.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The policy name is not one of [`POLICY_NAMES`].
    UnknownPolicy(String),
    /// Lane capacities must be non-zero.
    ZeroCapacity,
    /// The sampling rate must be in `(0, 1]`.
    InvalidRate(f64),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::UnknownPolicy(name) => {
                write!(
                    f,
                    "unknown policy {name:?}; expected one of {POLICY_NAMES:?}"
                )
            }
            SweepError::ZeroCapacity => write!(f, "cache capacity must be non-zero"),
            SweepError::InvalidRate(rate) => {
                write!(f, "sampling rate must be in (0, 1], got {rate}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// One boxed-policy lane requested of the builder.
#[derive(Debug, Clone)]
struct BoxedSpec {
    name: String,
    capacity: usize,
    sampled: bool,
}

/// Builder for a policy × capacity sweep — see the [module
/// docs](self) for the architecture.
///
/// # Example
///
/// ```
/// use cbs_cache::sweep::SweepGrid;
/// use cbs_trace::{IoRequest, OpKind, Timestamp, VolumeId};
///
/// // Two rounds over 64 blocks: everything but the cold misses hits
/// // any capacity ≥ 64.
/// let reqs: Vec<IoRequest> = (0..2000u64)
///     .map(|i| IoRequest::new(
///         VolumeId::new(0),
///         if i % 3 == 0 { OpKind::Read } else { OpKind::Write },
///         (i % 64) * 4096,
///         4096,
///         Timestamp::from_micros(i),
///     ))
///     .collect();
/// let mut sweep = SweepGrid::new()
///     .lru_capacity(8).unwrap()
///     .lru_capacity(64).unwrap()
///     .policy("fifo", 64).unwrap()
///     .start();
/// sweep.run(reqs.iter().copied());
/// let report = sweep.finish();
/// assert_eq!(report.lanes().len(), 3);
/// let full = report.stats("lru", 64).expect("exact lane present");
/// assert_eq!(full.total_accesses(), 2000);
/// assert_eq!(full.read_hits() + full.write_hits(), 2000 - 64);
/// assert!(report.lru_mrc().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SweepGrid {
    block_size: BlockSize,
    lru_capacities: Vec<usize>,
    boxed: Vec<BoxedSpec>,
    sampled_mrc: bool,
    rate: f64,
    workers: usize,
    batch_size: usize,
    registry: Option<Registry>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepGrid {
    /// Creates an empty grid: 4 KiB blocks, the default sampling rate,
    /// one worker thread per spare core (zero on a single-core host —
    /// the sequential fallback), and the default batch size.
    pub fn new() -> Self {
        SweepGrid {
            block_size: BlockSize::DEFAULT,
            lru_capacities: Vec::new(),
            boxed: Vec::new(),
            sampled_mrc: false,
            rate: DEFAULT_SAMPLE_RATE,
            workers: std::thread::available_parallelism().map_or(0, |n| n.get().saturating_sub(1)),
            batch_size: DEFAULT_SWEEP_BATCH,
            registry: None,
        }
    }

    /// Sets the block unit requests are decomposed into.
    #[must_use]
    pub fn with_block_size(mut self, block_size: BlockSize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Adds an exact LRU lane at `capacity` blocks. All LRU capacities
    /// collapse into one stack pass.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::ZeroCapacity`] if `capacity` is zero.
    pub fn lru_capacity(mut self, capacity: usize) -> Result<Self, SweepError> {
        if capacity == 0 {
            return Err(SweepError::ZeroCapacity);
        }
        self.lru_capacities.push(capacity);
        Ok(self)
    }

    /// Adds an exact lane simulating `name` (any of [`POLICY_NAMES`])
    /// at `capacity` blocks. `"lru"` routes to the collapsed stack lane.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::UnknownPolicy`] or
    /// [`SweepError::ZeroCapacity`].
    pub fn policy(mut self, name: &str, capacity: usize) -> Result<Self, SweepError> {
        if capacity == 0 {
            return Err(SweepError::ZeroCapacity);
        }
        if name == "lru" {
            return self.lru_capacity(capacity);
        }
        if !POLICY_NAMES.contains(&name) {
            return Err(SweepError::UnknownPolicy(name.to_owned()));
        }
        self.boxed.push(BoxedSpec {
            name: name.to_owned(),
            capacity,
            sampled: false,
        });
        Ok(self)
    }

    /// Adds a SHARDS-sampled lane for `name` at `capacity` blocks: a
    /// miniature cache of `capacity × rate` blocks simulated over the
    /// spatially-sampled substream. Its miss *ratios* estimate the
    /// exact lane's within a small error at ~`rate` of the cost; its
    /// raw access counts cover only the sampled substream.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::UnknownPolicy`] or
    /// [`SweepError::ZeroCapacity`].
    pub fn sampled_policy(mut self, name: &str, capacity: usize) -> Result<Self, SweepError> {
        if capacity == 0 {
            return Err(SweepError::ZeroCapacity);
        }
        if !POLICY_NAMES.contains(&name) {
            return Err(SweepError::UnknownPolicy(name.to_owned()));
        }
        self.boxed.push(BoxedSpec {
            name: name.to_owned(),
            capacity,
            sampled: true,
        });
        Ok(self)
    }

    /// Adds every `(name, capacity)` pair of the cross product as an
    /// exact lane — the whole Fig. 18-style grid in one call.
    ///
    /// # Errors
    ///
    /// Returns the first per-lane error (unknown name, zero capacity).
    pub fn grid(mut self, names: &[&str], capacities: &[usize]) -> Result<Self, SweepError> {
        for &name in names {
            for &capacity in capacities {
                self = self.policy(name, capacity)?;
            }
        }
        Ok(self)
    }

    /// Adds a SHARDS-sampled LRU miss-ratio-curve lane
    /// ([`SweepReport::sampled_mrc`]), the approximate counterpart of
    /// the exact stack lane's curve.
    #[must_use]
    pub fn with_sampled_mrc(mut self) -> Self {
        self.sampled_mrc = true;
        self
    }

    /// Sets the SHARDS sampling rate used by every sampled lane
    /// (default [`DEFAULT_SAMPLE_RATE`]).
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::InvalidRate`] unless `0 < rate <= 1`.
    pub fn with_sample_rate(mut self, rate: f64) -> Result<Self, SweepError> {
        if !(rate > 0.0 && rate <= 1.0) {
            return Err(SweepError::InvalidRate(rate));
        }
        self.rate = rate;
        Ok(self)
    }

    /// Sets the number of lane worker threads. Zero runs every lane
    /// inline on the caller thread (the sequential fallback — same lane
    /// code, no channels).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets how many requests [`CacheSweep::observe_request`] buffers
    /// before expanding and dispatching a batch (min 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Publishes engine metrics into `registry`: `sweep.batches`,
    /// `sweep.accesses`, `sweep.sampled_accesses`,
    /// `sweep.expand_nanos` (shared-expansion time),
    /// `sweep.backpressure_nanos` counters during the run, plus
    /// `sweep.lanes`, `sweep.sampled_ppm` (sampled fraction in parts
    /// per million) and per-lane `sweep.lane.<label>.accesses` /
    /// `.nanos` gauges at [`CacheSweep::finish`].
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// The configured sampling rate.
    pub fn sample_rate(&self) -> f64 {
        self.rate
    }

    /// Number of physical lanes the grid will run: one collapsed stack
    /// lane for all LRU capacities, one per boxed policy pair, plus the
    /// sampled-MRC lane if requested.
    pub fn lane_count(&self) -> usize {
        usize::from(!self.lru_capacities.is_empty())
            + self.boxed.len()
            + usize::from(self.sampled_mrc)
    }

    /// Spawns the workers (if any) and returns the running sweep.
    pub fn start(self) -> CacheSweep {
        // The sampled-MRC lane re-filters internally (it also needs the
        // unsampled access count for the SHARDS-adj correction), but it
        // still flips `need_sampled` on so the engine-level
        // `sampled_accesses` counter — and the `sweep.sampled_ppm`
        // gauge — reflect the spatial filter whenever any lane uses it.
        let need_sampled = self.sampled_mrc || self.boxed.iter().any(|spec| spec.sampled);
        let mut lanes: Vec<TimedLane> = Vec::with_capacity(self.lane_count());
        let mut index = 0usize;
        if !self.lru_capacities.is_empty() {
            lanes.push(TimedLane::new(
                index,
                "lru.stack".to_owned(),
                Box::new(StackLane::new(self.lru_capacities.clone())),
            ));
            index += 1;
        }
        for spec in &self.boxed {
            let capacity = if spec.sampled {
                mini_capacity(spec.capacity, self.rate)
            } else {
                spec.capacity
            };
            let Some(policy) = policy_by_name(&spec.name, capacity) else {
                // cbs-lint: allow(no-panic-in-lib) -- names are validated against POLICY_NAMES at insertion
                unreachable!("validated policy name {:?} rejected", spec.name)
            };
            let label = if spec.sampled {
                format!("{}@{}.sampled", spec.name, spec.capacity)
            } else {
                format!("{}@{}", spec.name, spec.capacity)
            };
            lanes.push(TimedLane::new(
                index,
                label,
                Box::new(BoxedLane {
                    policy,
                    name: spec.name.clone(),
                    capacity: spec.capacity,
                    sampled: spec.sampled,
                    stats: CacheStats::new(),
                }),
            ));
            index += 1;
        }
        if self.sampled_mrc {
            lanes.push(TimedLane::new(
                index,
                "lru.mrc.sampled".to_owned(),
                Box::new(SampledMrcLane {
                    sampler: ShardsSampler::new(self.rate),
                }),
            ));
        }

        // Never spawn more workers than lanes; with zero workers every
        // lane runs inline on the caller thread (same code path).
        let workers = self.workers.min(lanes.len());
        let mut local = Vec::new();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        if workers == 0 {
            local = lanes;
        } else {
            let mut per_worker: Vec<Vec<TimedLane>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, lane) in lanes.into_iter().enumerate() {
                per_worker[i % workers].push(lane);
            }
            for worker_lanes in per_worker {
                let (tx, rx) = sync_channel::<Job>(CHANNEL_DEPTH);
                senders.push(tx);
                handles.push(std::thread::spawn(move || lane_worker(rx, worker_lanes)));
            }
        }

        let metrics = self.registry.as_ref().map(SweepMetrics::new);
        CacheSweep {
            block_size: self.block_size,
            rate: self.rate,
            threshold: ShardsSampler::threshold_for(self.rate),
            need_sampled,
            buffer: RequestBatch::with_capacity(self.batch_size),
            batch_size: self.batch_size,
            senders,
            handles,
            local,
            requests: 0,
            accesses: 0,
            sampled_accesses: 0,
            expand_nanos: 0,
            poisoned: false,
            metrics,
            registry: self.registry,
        }
    }

    /// Convenience: runs a whole request stream through the grid and
    /// returns the report.
    pub fn sweep<I: IntoIterator<Item = IoRequest>>(self, stream: I) -> SweepReport {
        let mut sweep = self.start();
        sweep.run(stream);
        sweep.finish()
    }
}

/// The miniature-simulation capacity for a sampled lane: the requested
/// capacity scaled by the sampling rate, at least one block.
fn mini_capacity(capacity: usize, rate: f64) -> usize {
    (((capacity as f64) * rate).round() as usize).max(1)
}

/// One shared unit of work: the batch's block/op column (expanded
/// once) plus the indices passing the SHARDS spatial filter (hashed
/// once, used by every sampled lane).
#[derive(Debug)]
struct SweepColumn {
    column: BlockAccessColumn,
    sampled: Vec<u32>,
}

type Job = Arc<SweepColumn>;

/// A lane consumes shared columns and yields its results at the end.
trait Lane: Send {
    /// Processes one shared column, returning the accesses consumed.
    fn process(&mut self, job: &SweepColumn) -> u64;
    /// Finalizes the lane into reports and optional curves.
    fn finish(self: Box<Self>) -> LaneOutput;
}

/// What a finished lane hands back to the engine.
#[derive(Debug, Default)]
struct LaneOutput {
    reports: Vec<LaneReport>,
    lru_mrc: Option<MissRatioCurve>,
    sampled_mrc: Option<MissRatioCurve>,
}

/// A lane plus the engine-side bookkeeping (label, per-lane wall time
/// and access count — timed through `cbs-obs`'s [`Stopwatch`]).
struct TimedLane {
    index: usize,
    label: String,
    nanos: u64,
    accesses: u64,
    lane: Box<dyn Lane>,
}

impl std::fmt::Debug for TimedLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedLane")
            .field("index", &self.index)
            .field("label", &self.label)
            .field("nanos", &self.nanos)
            .field("accesses", &self.accesses)
            .finish_non_exhaustive()
    }
}

impl TimedLane {
    fn new(index: usize, label: String, lane: Box<dyn Lane>) -> Self {
        TimedLane {
            index,
            label,
            nanos: 0,
            accesses: 0,
            lane,
        }
    }

    fn process(&mut self, job: &SweepColumn) {
        let clock = Stopwatch::start();
        self.accesses += self.lane.process(job);
        self.nanos += clock.elapsed_nanos();
    }

    fn finish(self) -> FinishedLane {
        let mut output = self.lane.finish();
        for report in &mut output.reports {
            report.nanos = self.nanos;
            report.accesses = self.accesses;
        }
        FinishedLane {
            index: self.index,
            label: self.label,
            nanos: self.nanos,
            accesses: self.accesses,
            output,
        }
    }
}

/// A lane's final results, tagged for deterministic reassembly.
#[derive(Debug)]
struct FinishedLane {
    index: usize,
    label: String,
    nanos: u64,
    accesses: u64,
    output: LaneOutput,
}

/// Worker loop: drain the channel, then finalize the lanes. Returning
/// on channel close mirrors the streaming shard workers.
fn lane_worker(rx: Receiver<Job>, mut lanes: Vec<TimedLane>) -> Vec<FinishedLane> {
    for job in rx {
        for lane in &mut lanes {
            lane.process(&job);
        }
    }
    lanes.into_iter().map(TimedLane::finish).collect()
}

/// The collapsed exact-LRU lane: one Mattson stack pass with op-split
/// histograms answers every LRU capacity bit-identically to a fresh
/// [`crate::CacheSim`]`<`[`crate::Lru`]`>` per capacity.
#[derive(Debug)]
struct StackLane {
    capacities: Vec<usize>,
    stack: ReuseStack,
    last_pos: FxHashMap<BlockId, usize>,
    /// Finite-distance histogram per op kind (`[read, write]`).
    hist: [Vec<u64>; 2],
    cold: [u64; 2],
    accesses: [u64; 2],
}

fn op_index(op: OpKind) -> usize {
    match op {
        OpKind::Read => 0,
        OpKind::Write => 1,
    }
}

impl StackLane {
    fn new(capacities: Vec<usize>) -> Self {
        StackLane {
            capacities,
            stack: ReuseStack::new(),
            last_pos: FxHashMap::default(),
            hist: [Vec::new(), Vec::new()],
            cold: [0, 0],
            accesses: [0, 0],
        }
    }
}

impl Lane for StackLane {
    fn process(&mut self, job: &SweepColumn) -> u64 {
        for (block, op) in job.column.iter() {
            let op = op_index(op);
            self.accesses[op] += 1;
            match self.last_pos.entry(block) {
                std::collections::hash_map::Entry::Occupied(mut entry) => {
                    let (distance, pos) = self.stack.touch(*entry.get());
                    *entry.get_mut() = pos;
                    let d = distance as usize;
                    if d >= self.hist[op].len() {
                        self.hist[op].resize(d + 1, 0);
                    }
                    self.hist[op][d] += 1;
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(self.stack.touch_cold());
                    self.cold[op] += 1;
                }
            }
            // Same compaction policy as `ReuseDistances`: memory stays
            // O(distinct blocks) at amortized O(1) per access.
            if self.stack.should_compact() {
                let table = self.stack.compaction_table();
                for pos in self.last_pos.values_mut() {
                    *pos = table[*pos] as usize;
                }
                self.stack.rebuild_compacted();
            }
        }
        job.column.len() as u64
    }

    fn finish(self: Box<Self>) -> LaneOutput {
        // hits at capacity c = #{finite distances < c}, per op kind.
        let prefix = |hist: &[u64]| -> Vec<u64> {
            let mut acc = 0u64;
            let mut out = Vec::with_capacity(hist.len() + 1);
            out.push(0);
            for &count in hist {
                acc += count;
                out.push(acc);
            }
            out
        };
        let (reads, writes) = (prefix(&self.hist[0]), prefix(&self.hist[1]));
        let reports = self
            .capacities
            .iter()
            .map(|&c| LaneReport {
                policy: "lru".to_owned(),
                capacity: c,
                sampled: false,
                stats: CacheStats::from_counts(
                    self.accesses[0],
                    reads[c.min(reads.len() - 1)],
                    self.accesses[1],
                    writes[c.min(writes.len() - 1)],
                ),
                nanos: 0,
                accesses: 0,
            })
            .collect();
        let mut combined = self.hist[0].clone();
        if combined.len() < self.hist[1].len() {
            combined.resize(self.hist[1].len(), 0);
        }
        for (d, &count) in self.hist[1].iter().enumerate() {
            combined[d] += count;
        }
        LaneOutput {
            reports,
            lru_mrc: Some(MissRatioCurve::from_histogram(
                combined,
                self.cold[0] + self.cold[1],
            )),
            sampled_mrc: None,
        }
    }
}

/// A boxed-policy lane over the shared column — exact (every access)
/// or SHARDS-sampled (filtered accesses against a miniature cache).
struct BoxedLane {
    policy: Box<dyn CachePolicy + Send>,
    name: String,
    capacity: usize,
    sampled: bool,
    stats: CacheStats,
}

impl Lane for BoxedLane {
    fn process(&mut self, job: &SweepColumn) -> u64 {
        if self.sampled {
            let blocks = job.column.blocks();
            let ops = job.column.ops();
            for &i in &job.sampled {
                let i = i as usize;
                let out = self.policy.access(blocks[i]);
                self.stats.record(ops[i], out.hit);
            }
            job.sampled.len() as u64
        } else {
            for (block, op) in job.column.iter() {
                let out = self.policy.access(block);
                self.stats.record(op, out.hit);
            }
            job.column.len() as u64
        }
    }

    fn finish(self: Box<Self>) -> LaneOutput {
        LaneOutput {
            reports: vec![LaneReport {
                policy: self.name,
                capacity: self.capacity,
                sampled: self.sampled,
                stats: self.stats,
                nanos: 0,
                accesses: 0,
            }],
            lru_mrc: None,
            sampled_mrc: None,
        }
    }
}

/// The approximate-MRC lane: a [`ShardsSampler`] over the full column
/// (it applies the same spatial filter internally).
#[derive(Debug)]
struct SampledMrcLane {
    sampler: ShardsSampler,
}

impl Lane for SampledMrcLane {
    fn process(&mut self, job: &SweepColumn) -> u64 {
        for &block in job.column.blocks() {
            self.sampler.access(block);
        }
        job.column.len() as u64
    }

    fn finish(self: Box<Self>) -> LaneOutput {
        LaneOutput {
            reports: Vec::new(),
            lru_mrc: None,
            sampled_mrc: Some(self.sampler.to_mrc_adjusted()),
        }
    }
}

/// Engine-side registry handles (see [`SweepGrid::with_registry`]).
#[derive(Debug)]
struct SweepMetrics {
    batches: cbs_obs::Counter,
    accesses: cbs_obs::Counter,
    sampled_accesses: cbs_obs::Counter,
    expand_nanos: cbs_obs::Counter,
    backpressure_nanos: cbs_obs::Counter,
}

impl SweepMetrics {
    fn new(registry: &Registry) -> Self {
        SweepMetrics {
            batches: registry.counter("sweep.batches"),
            accesses: registry.counter("sweep.accesses"),
            sampled_accesses: registry.counter("sweep.sampled_accesses"),
            expand_nanos: registry.counter("sweep.expand_nanos"),
            backpressure_nanos: registry.counter("sweep.backpressure_nanos"),
        }
    }
}

/// A running sweep accepting pushed requests or columnar batches — see
/// [`SweepGrid::start`].
///
/// Dropping a sweep without calling [`finish`](CacheSweep::finish)
/// abandons the lane results but does not leak threads (channels
/// close, workers drain and exit).
#[derive(Debug)]
pub struct CacheSweep {
    block_size: BlockSize,
    rate: f64,
    threshold: u64,
    need_sampled: bool,
    buffer: RequestBatch,
    batch_size: usize,
    senders: Vec<SyncSender<Job>>,
    handles: Vec<JoinHandle<Vec<FinishedLane>>>,
    local: Vec<TimedLane>,
    requests: u64,
    accesses: u64,
    sampled_accesses: u64,
    expand_nanos: u64,
    poisoned: bool,
    metrics: Option<SweepMetrics>,
    registry: Option<Registry>,
}

impl CacheSweep {
    /// Feeds one request, buffering until a batch fills.
    ///
    /// # Panics
    ///
    /// Panics if the sweep is poisoned (a lane worker died — the
    /// dispatch that discovered it re-raised the worker's panic).
    pub fn observe_request(&mut self, req: &IoRequest) {
        assert!(
            !self.poisoned,
            "cache sweep is poisoned: a lane worker panicked"
        );
        self.buffer.push(req);
        if self.buffer.len() >= self.batch_size {
            self.flush_buffer();
        }
    }

    /// Feeds every record of a columnar batch (e.g. straight from a
    /// [`cbs_trace::CbtReader`] block or a
    /// [`cbs_trace::ParallelDecoder`] sink), flushing any buffered
    /// requests first so access order is preserved.
    ///
    /// # Panics
    ///
    /// Panics if the sweep is poisoned.
    pub fn observe_batch(&mut self, batch: &RequestBatch) {
        assert!(
            !self.poisoned,
            "cache sweep is poisoned: a lane worker panicked"
        );
        self.flush_buffer();
        self.dispatch(batch);
    }

    /// Feeds a whole request stream (e.g. a lazy
    /// `cbs_synth` corpus stream).
    ///
    /// # Panics
    ///
    /// Panics if the sweep is poisoned.
    pub fn run<I: IntoIterator<Item = IoRequest>>(&mut self, stream: I) {
        for req in stream {
            self.observe_request(&req);
        }
    }

    /// Requests fed so far.
    pub fn requests(&self) -> u64 {
        self.requests + self.buffer.len() as u64
    }

    /// `true` once a lane worker's death has been detected; every
    /// further feed or finish call panics rather than reporting a
    /// partial sweep.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn flush_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buffer);
        self.dispatch(&batch);
        // Reuse the allocation for the next fill.
        self.buffer = batch;
        self.buffer.clear();
    }

    /// Expands `batch` once, hashes the sample filter once, and hands
    /// the shared column to every lane.
    fn dispatch(&mut self, batch: &RequestBatch) {
        if batch.is_empty() {
            return;
        }
        self.requests += batch.len() as u64;
        let clock = Stopwatch::start();
        let mut column = BlockAccessColumn::with_capacity(batch.len());
        batch.expand_blocks_into(self.block_size, &mut column);
        let sampled: Vec<u32> = if self.need_sampled {
            column
                .blocks()
                .iter()
                .enumerate()
                .filter(|&(_, &block)| shards_hash(block) <= self.threshold)
                .map(|(i, _)| i as u32)
                .collect()
        } else {
            Vec::new()
        };
        let expand_nanos = clock.elapsed_nanos();
        self.expand_nanos += expand_nanos;
        self.accesses += column.len() as u64;
        self.sampled_accesses += sampled.len() as u64;
        if let Some(m) = &self.metrics {
            m.batches.inc();
            m.accesses.add(column.len() as u64);
            m.sampled_accesses.add(sampled.len() as u64);
            m.expand_nanos.add(expand_nanos);
        }
        let job: Job = Arc::new(SweepColumn { column, sampled });
        for worker in 0..self.senders.len() {
            // try-send first so only a genuinely full channel pays for
            // a stopwatch (the streaming pipeline's backpressure idiom).
            let sent = match self.senders[worker].try_send(job.clone()) {
                Ok(()) => true,
                Err(TrySendError::Disconnected(_)) => false,
                Err(TrySendError::Full(job)) => {
                    let clock = Stopwatch::start();
                    let sent = self.senders[worker].send(job).is_ok();
                    if let Some(m) = &self.metrics {
                        m.backpressure_nanos.add(clock.elapsed_nanos());
                    }
                    sent
                }
            };
            if !sent {
                self.poison(worker);
            }
        }
        for lane in &mut self.local {
            lane.process(&job);
        }
    }

    /// A send failed, which can only mean the worker died (it never
    /// drops its receiver before draining the channel). Surface its
    /// panic on the caller thread now instead of sweeping the rest of
    /// the stream against dead lanes.
    #[cold]
    fn poison(&mut self, worker: usize) -> ! {
        self.poisoned = true;
        // Closing every channel lets the surviving workers drain and
        // exit; their results are abandoned (all-or-error).
        self.senders.clear();
        let handle = self.handles.swap_remove(worker);
        match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            // cbs-lint: allow(no-panic-in-lib) -- a worker exiting cleanly while its channel is open is impossible by construction
            Ok(_) => panic!("sweep worker {worker} exited before its channel closed"),
        }
    }

    /// Flushes the request buffer, joins the workers, and assembles
    /// the report. Publishes the finish-time lane gauges if a registry
    /// was attached.
    ///
    /// # Panics
    ///
    /// Propagates lane-worker panics, and panics on a poisoned sweep —
    /// a panic-interrupted stream never yields a partial report.
    pub fn finish(mut self) -> SweepReport {
        assert!(
            !self.poisoned,
            "cache sweep is poisoned: a lane worker panicked; its stats would be partial"
        );
        self.flush_buffer();
        drop(std::mem::take(&mut self.senders)); // close channels
        let mut finished: Vec<FinishedLane> = Vec::new();
        for handle in std::mem::take(&mut self.handles) {
            match handle.join() {
                Ok(lanes) => finished.extend(lanes),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        finished.extend(
            std::mem::take(&mut self.local)
                .into_iter()
                .map(TimedLane::finish),
        );
        finished.sort_by_key(|lane| lane.index);

        if let Some(registry) = &self.registry {
            registry.gauge("sweep.lanes").set(finished.len() as u64);
            let ppm = self
                .sampled_accesses
                .saturating_mul(1_000_000)
                .checked_div(self.accesses)
                .unwrap_or(0);
            registry.gauge("sweep.sampled_ppm").set(ppm);
            for lane in &finished {
                registry
                    .gauge(&format!("sweep.lane.{}.accesses", lane.label))
                    .set(lane.accesses);
                registry
                    .gauge(&format!("sweep.lane.{}.nanos", lane.label))
                    .set(lane.nanos);
            }
        }

        let mut lanes = Vec::new();
        let mut lru_mrc = None;
        let mut sampled_mrc = None;
        for lane in finished {
            lanes.extend(lane.output.reports);
            lru_mrc = lane.output.lru_mrc.or(lru_mrc);
            sampled_mrc = lane.output.sampled_mrc.or(sampled_mrc);
        }
        SweepReport {
            lanes,
            lru_mrc,
            sampled_mrc,
            requests: self.requests,
            accesses: self.accesses,
            sampled_accesses: self.sampled_accesses,
            expand_nanos: self.expand_nanos,
            rate: self.rate,
        }
    }
}

/// Folds an optional miss-ratio curve into another: present curves
/// merge, an absent side contributes nothing.
fn merge_opt_mrc(mine: &mut Option<MissRatioCurve>, theirs: &Option<MissRatioCurve>) {
    match (mine.as_mut(), theirs) {
        (Some(a), Some(b)) => a.merge(b),
        (None, Some(b)) => *mine = Some(b.clone()),
        _ => {}
    }
}

/// One `(policy, capacity)` result of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneReport {
    /// The policy's short name (`"lru"`, `"fifo"`, ...).
    pub policy: String,
    /// The requested capacity in blocks. Sampled lanes simulate a
    /// miniature cache of `capacity × rate` blocks but report the
    /// requested capacity here.
    pub capacity: usize,
    /// `true` for SHARDS-sampled lanes: `stats` covers the sampled
    /// substream and its miss ratios are estimates of the exact lane's.
    pub sampled: bool,
    /// The hit/miss tallies — for exact lanes, bit-identical to a
    /// fresh [`crate::CacheSim`] over the same stream.
    pub stats: CacheStats,
    /// Wall time this lane's physical lane spent processing columns
    /// (the collapsed LRU stack lane shares one time across its
    /// capacities).
    pub nanos: u64,
    /// Block accesses the physical lane consumed.
    pub accesses: u64,
}

/// Everything a finished sweep produced — see [`CacheSweep::finish`].
///
/// MERGEABLE: reports over the same grid form a commutative monoid
/// under [`merge`] — lanes pair up by `(policy, capacity, sampled)`
/// and their tallies/timings add, miss-ratio curves merge, stream
/// totals add; a report of the same grid over an empty stream is the
/// identity. Exact when the partials cover disjoint block populations
/// (partition-by-volume: the corpus-wide verdict is defined as the
/// union of per-volume cache simulations, matching the paper's
/// per-volume caches).
///
/// [`merge`]: SweepReport::merge
#[derive(Debug, Clone)]
pub struct SweepReport {
    lanes: Vec<LaneReport>,
    lru_mrc: Option<MissRatioCurve>,
    sampled_mrc: Option<MissRatioCurve>,
    requests: u64,
    accesses: u64,
    sampled_accesses: u64,
    expand_nanos: u64,
    rate: f64,
}

/// The pieces of a [`SweepReport`], for rebuilding one from a wire
/// transfer — see [`SweepReport::from_parts`] /
/// [`SweepReport::into_parts`].
#[derive(Debug, Clone)]
pub struct SweepReportParts {
    /// Per-lane results, in grid insertion order.
    pub lanes: Vec<LaneReport>,
    /// Exact LRU miss-ratio curve, if the grid had LRU capacities.
    pub lru_mrc: Option<MissRatioCurve>,
    /// SHARDS-sampled miss-ratio curve, if requested.
    pub sampled_mrc: Option<MissRatioCurve>,
    /// Requests fed through the sweep.
    pub requests: u64,
    /// Block accesses after expansion.
    pub accesses: u64,
    /// Accesses passing the SHARDS spatial filter.
    pub sampled_accesses: u64,
    /// Nanoseconds in the shared expansion pass.
    pub expand_nanos: u64,
    /// The sampling rate the sweep ran with.
    pub sample_rate: f64,
}

impl SweepReport {
    /// Rebuilds a report from its parts (the wire-codec inverse of
    /// [`into_parts`](Self::into_parts)).
    pub fn from_parts(parts: SweepReportParts) -> Self {
        SweepReport {
            lanes: parts.lanes,
            lru_mrc: parts.lru_mrc,
            sampled_mrc: parts.sampled_mrc,
            requests: parts.requests,
            accesses: parts.accesses,
            sampled_accesses: parts.sampled_accesses,
            expand_nanos: parts.expand_nanos,
            rate: parts.sample_rate,
        }
    }

    /// Decomposes the report into its parts for serialization.
    pub fn into_parts(self) -> SweepReportParts {
        SweepReportParts {
            lanes: self.lanes,
            lru_mrc: self.lru_mrc,
            sampled_mrc: self.sampled_mrc,
            requests: self.requests,
            accesses: self.accesses,
            sampled_accesses: self.sampled_accesses,
            expand_nanos: self.expand_nanos,
            sample_rate: self.rate,
        }
    }

    /// Folds another report over the **same grid** into this one.
    ///
    /// Lanes pair up by `(policy, capacity, sampled)` in order; each
    /// pair's [`CacheStats`] merge and its timings/accesses add.
    /// Miss-ratio curves merge curve-wise, request/access totals add,
    /// and the maximum expansion time is kept (partitions expand
    /// concurrently, so the corpus-wide expansion wall-clock is the
    /// slowest partition, not the sum).
    ///
    /// # Panics
    ///
    /// Panics if the two reports come from different grids (different
    /// lane sets, MRC presence, or sampling rates) — merging those
    /// would silently conflate incomparable simulations.
    pub fn merge(&mut self, other: &SweepReport) {
        assert_eq!(
            self.lanes.len(),
            other.lanes.len(),
            "cannot merge sweep reports of different grids"
        );
        assert!(
            // cbs-lint: allow(no-float-eq) -- sample rates are configuration constants copied verbatim, not computed
            self.rate == other.rate || self.rate == 0.0 || other.rate == 0.0,
            "cannot merge sweep reports of different sampling rates"
        );
        for (mine, theirs) in self.lanes.iter_mut().zip(&other.lanes) {
            assert!(
                mine.policy == theirs.policy
                    && mine.capacity == theirs.capacity
                    && mine.sampled == theirs.sampled,
                "cannot merge sweep reports of different grids: lane \
                 {}@{} vs {}@{}",
                mine.policy,
                mine.capacity,
                theirs.policy,
                theirs.capacity
            );
            mine.stats.merge(&theirs.stats);
            mine.nanos += theirs.nanos;
            mine.accesses += theirs.accesses;
        }
        merge_opt_mrc(&mut self.lru_mrc, &other.lru_mrc);
        merge_opt_mrc(&mut self.sampled_mrc, &other.sampled_mrc);
        self.requests += other.requests;
        self.accesses += other.accesses;
        self.sampled_accesses += other.sampled_accesses;
        self.expand_nanos = self.expand_nanos.max(other.expand_nanos);
        // cbs-lint: allow(no-float-eq) -- 0.0 is the exact "no sampling" sentinel, never computed
        if self.rate == 0.0 {
            self.rate = other.rate;
        }
    }
    /// Every lane's result, in grid insertion order (LRU capacities
    /// first, then boxed lanes).
    pub fn lanes(&self) -> &[LaneReport] {
        &self.lanes
    }

    /// The stats of the exact lane for `(policy, capacity)`, if the
    /// grid contained it.
    pub fn stats(&self, policy: &str, capacity: usize) -> Option<CacheStats> {
        self.lanes
            .iter()
            .find(|l| !l.sampled && l.policy == policy && l.capacity == capacity)
            .map(|l| l.stats)
    }

    /// The exact LRU miss-ratio curve from the collapsed stack lane
    /// (present iff the grid had at least one LRU capacity) — answers
    /// *every* capacity, not just the grid points.
    pub fn lru_mrc(&self) -> Option<&MissRatioCurve> {
        self.lru_mrc.as_ref()
    }

    /// The SHARDS-sampled LRU miss-ratio curve (present iff
    /// [`SweepGrid::with_sampled_mrc`] was requested).
    pub fn sampled_mrc(&self) -> Option<&MissRatioCurve> {
        self.sampled_mrc.as_ref()
    }

    /// Requests fed through the sweep.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Block accesses after expansion.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses passing the SHARDS spatial filter (0 when no sampled
    /// lane was configured).
    pub fn sampled_accesses(&self) -> u64 {
        self.sampled_accesses
    }

    /// Observed sampled fraction: `sampled_accesses / accesses`.
    pub fn sampled_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.sampled_accesses as f64 / self.accesses as f64
        }
    }

    /// Nanoseconds spent in the shared expansion + sample-filter pass.
    pub fn expand_nanos(&self) -> u64 {
        self.expand_nanos
    }

    /// The sampling rate the sweep ran with.
    pub fn sample_rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheSim;
    use cbs_trace::{Timestamp, VolumeId};

    fn stream(n: u64, blocks: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new(0),
                    if i % 3 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    ((i * 7 + i * i * 3) % blocks) * 4096,
                    (i % 3) as u32 * 4096 + 2048,
                    Timestamp::from_micros(i),
                )
            })
            .collect()
    }

    fn reference(reqs: &[IoRequest], name: &str, capacity: usize) -> CacheStats {
        let Some(policy) = policy_by_name(name, capacity) else {
            panic!("unknown policy {name}")
        };
        let mut sim = CacheSim::new(policy, BlockSize::DEFAULT);
        sim.run(reqs);
        sim.stats()
    }

    #[test]
    fn exact_lanes_match_cache_sim_bit_for_bit() {
        let reqs = stream(5000, 300);
        let names = ["lru", "fifo", "clock", "lfu", "arc", "slru", "2q"];
        let capacities = [1usize, 7, 64, 150, 100_000];
        let report = SweepGrid::new()
            .with_workers(0)
            .grid(&names, &capacities)
            .expect("valid grid")
            .sweep(reqs.iter().copied());
        assert_eq!(report.lanes().len(), names.len() * capacities.len());
        for &name in &names {
            for &c in &capacities {
                let got = report.stats(name, c).expect("lane present");
                assert_eq!(got, reference(&reqs, name, c), "{name}@{c}");
            }
        }
    }

    /// Everything but the wall-clock timing fields, for comparing
    /// reports across runs.
    fn untimed(report: &SweepReport) -> Vec<(String, usize, bool, CacheStats, u64)> {
        report
            .lanes()
            .iter()
            .map(|l| (l.policy.clone(), l.capacity, l.sampled, l.stats, l.accesses))
            .collect()
    }

    #[test]
    fn worker_fanout_matches_sequential() {
        let reqs = stream(3000, 200);
        let grid = |workers| {
            SweepGrid::new()
                .with_workers(workers)
                .with_batch_size(512)
                .grid(&["lru", "fifo", "arc"], &[16, 64])
                .expect("valid grid")
                .sweep(reqs.iter().copied())
        };
        let sequential = grid(0);
        let fanned = grid(3);
        assert_eq!(untimed(&sequential), untimed(&fanned));
        assert_eq!(sequential.accesses(), fanned.accesses());
    }

    #[test]
    fn batch_and_stream_feeds_agree() {
        let reqs = stream(2000, 150);
        let streamed = SweepGrid::new()
            .with_workers(0)
            .policy("slru", 32)
            .expect("valid")
            .sweep(reqs.iter().copied());
        let mut batched = SweepGrid::new()
            .with_workers(0)
            .policy("slru", 32)
            .expect("valid")
            .start();
        for chunk in reqs.chunks(700) {
            batched.observe_batch(&RequestBatch::from(chunk));
        }
        let batched = batched.finish();
        assert_eq!(untimed(&streamed), untimed(&batched));
        assert_eq!(streamed.requests(), 2000);
    }

    #[test]
    fn lru_mrc_agrees_with_stack_lane_reports() {
        let reqs = stream(4000, 250);
        let capacities = [1usize, 10, 100, 1000];
        let mut grid = SweepGrid::new().with_workers(0);
        for &c in &capacities {
            grid = grid.lru_capacity(c).expect("non-zero");
        }
        let report = grid.sweep(reqs.iter().copied());
        let mrc = report.lru_mrc().expect("stack lane ran");
        for &c in &capacities {
            let stats = report.stats("lru", c).expect("lane present");
            let expected = stats.overall_miss_ratio().expect("accesses > 0");
            assert!(
                (mrc.miss_ratio_at(c) - expected).abs() < 1e-12,
                "capacity {c}"
            );
        }
    }

    #[test]
    fn sampled_lane_estimates_miss_ratio() {
        // A working set far larger than the capacity: miss ratio near
        // 1, which sampling must reproduce closely even at rate 0.1.
        let reqs = stream(30_000, 20_000);
        let report = SweepGrid::new()
            .with_workers(0)
            .with_sample_rate(0.1)
            .expect("valid rate")
            .policy("fifo", 128)
            .expect("valid")
            .sampled_policy("fifo", 128)
            .expect("valid")
            .with_sampled_mrc()
            .sweep(reqs.iter().copied());
        let exact = report.stats("fifo", 128).expect("exact lane");
        let sampled = report
            .lanes()
            .iter()
            .find(|l| l.sampled)
            .expect("sampled lane");
        let frac = report.sampled_fraction();
        assert!(frac > 0.05 && frac < 0.2, "sampled fraction {frac}");
        assert!(sampled.accesses < report.accesses() / 5);
        let (e, s) = (
            exact.overall_miss_ratio().expect("accesses"),
            sampled.stats.overall_miss_ratio().expect("accesses"),
        );
        assert!((e - s).abs() < 0.05, "exact {e} vs sampled {s}");
        assert!(report.sampled_mrc().is_some());
    }

    #[test]
    fn empty_sweep_reports_zeroes() {
        let report = SweepGrid::new()
            .with_workers(0)
            .lru_capacity(8)
            .expect("non-zero")
            .policy("fifo", 8)
            .expect("valid")
            .sweep(std::iter::empty());
        assert_eq!(report.requests(), 0);
        assert_eq!(report.accesses(), 0);
        assert_eq!(report.stats("fifo", 8), Some(CacheStats::new()));
        assert_eq!(report.stats("lru", 8), Some(CacheStats::new()));
        // Empty-trace convention: the curve reports all-misses.
        assert_eq!(report.lru_mrc().expect("lane ran").miss_ratio_at(8), 1.0);
        assert_eq!(report.sampled_fraction(), 0.0);
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            SweepGrid::new().lru_capacity(0).unwrap_err(),
            SweepError::ZeroCapacity
        );
        assert_eq!(
            SweepGrid::new().policy("belady", 8).unwrap_err(),
            SweepError::UnknownPolicy("belady".to_owned())
        );
        assert_eq!(
            SweepGrid::new().sampled_policy("nope", 8).unwrap_err(),
            SweepError::UnknownPolicy("nope".to_owned())
        );
        assert_eq!(
            SweepGrid::new().with_sample_rate(0.0).unwrap_err(),
            SweepError::InvalidRate(0.0)
        );
        assert_eq!(
            SweepGrid::new().with_sample_rate(1.5).unwrap_err(),
            SweepError::InvalidRate(1.5)
        );
        let err = SweepError::UnknownPolicy("belady".to_owned());
        assert!(err.to_string().contains("belady"));
        assert_eq!(
            SweepGrid::new()
                .grid(&["lru", "fifo"], &[4, 8, 16])
                .expect("valid")
                .lane_count(),
            1 + 3, // collapsed stack lane + three fifo lanes
        );
    }

    #[test]
    fn registry_reconciles_with_report() {
        let registry = cbs_obs::Registry::new();
        let reqs = stream(3000, 100);
        let report = SweepGrid::new()
            .with_workers(0)
            .with_registry(&registry)
            .lru_capacity(32)
            .expect("non-zero")
            .policy("2q", 32)
            .expect("valid")
            .sampled_policy("clock", 32)
            .expect("valid")
            .sweep(reqs.iter().copied());
        assert_eq!(registry.counter("sweep.accesses").get(), report.accesses());
        assert_eq!(
            registry.counter("sweep.sampled_accesses").get(),
            report.sampled_accesses()
        );
        assert!(registry.counter("sweep.batches").get() >= 1);
        assert!(registry.counter("sweep.expand_nanos").get() > 0);
        assert_eq!(registry.gauge("sweep.lanes").get(), 3);
        assert_eq!(
            registry.gauge("sweep.lane.lru.stack.accesses").get(),
            report.accesses()
        );
        assert_eq!(
            registry.gauge("sweep.lane.2q@32.accesses").get(),
            report.accesses()
        );
        assert_eq!(
            registry.gauge("sweep.lane.clock@32.sampled.accesses").get(),
            report.sampled_accesses()
        );
        let ppm = registry.gauge("sweep.sampled_ppm").get();
        let expected_ppm = report.sampled_accesses() * 1_000_000 / report.accesses();
        assert_eq!(ppm, expected_ppm);
    }

    #[test]
    fn mini_capacity_scales_and_floors() {
        assert_eq!(mini_capacity(1000, 0.01), 10);
        assert_eq!(mini_capacity(10, 0.01), 1);
        assert_eq!(mini_capacity(7, 1.0), 7);
    }

    #[test]
    fn stack_lane_compaction_keeps_stats_exact() {
        // Few distinct blocks, many accesses: forces several
        // compactions inside the stack lane mid-sweep.
        let reqs: Vec<IoRequest> = (0..50_000u64)
            .map(|i| {
                IoRequest::new(
                    VolumeId::new(0),
                    if i % 2 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    ((i * i * 7 + i * 13) % 60) * 4096,
                    4096,
                    Timestamp::from_micros(i),
                )
            })
            .collect();
        let report = SweepGrid::new()
            .with_workers(0)
            .lru_capacity(10)
            .expect("non-zero")
            .lru_capacity(45)
            .expect("non-zero")
            .sweep(reqs.iter().copied());
        for &c in &[10usize, 45] {
            assert_eq!(
                report.stats("lru", c).expect("lane"),
                reference(&reqs, "lru", c),
                "capacity {c}"
            );
        }
    }
}
