//! Belady's optimal offline replacement (MIN): [`simulate_opt`].
//!
//! OPT evicts the resident block whose next reference lies farthest in
//! the future — unbeatable by any online policy, which makes it the
//! natural upper bound when judging LRU/ARC/2Q numbers on the paper's
//! Fig. 18 operating points. Because it needs the future, OPT is a
//! standalone simulation over a complete access sequence rather than a
//! [`crate::CachePolicy`].

use std::collections::{BTreeSet, HashMap};

use cbs_trace::BlockId;

/// Result of an OPT simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptResult {
    /// Total block accesses.
    pub accesses: u64,
    /// Accesses that hit the cache.
    pub hits: u64,
}

impl OptResult {
    /// The miss ratio (1.0 for an empty sequence, keeping comparisons
    /// with [`crate::MissRatioCurve`] total).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 1.0;
        }
        1.0 - self.hits as f64 / self.accesses as f64
    }
}

/// Simulates Belady's OPT over `accesses` with a cache of `capacity`
/// blocks.
///
/// This is *demand-paging* OPT: every referenced block is admitted
/// (no bypass), evicting the resident whose next use is farthest away —
/// the setting in which MIN is provably optimal among the demand
/// policies this crate implements.
///
/// Runs in O(n log c): one backward pass builds next-use indices, the
/// forward pass keeps residents ordered by next use.
///
/// # Panics
///
/// Panics if `capacity` is zero.
///
/// # Example
///
/// ```
/// use cbs_cache::opt::simulate_opt;
/// use cbs_trace::BlockId;
///
/// let accesses: Vec<BlockId> = [1u64, 2, 3, 1, 2, 3].map(BlockId::new).into();
/// // capacity 2: OPT keeps whichever of {1,2,3} returns soonest
/// let result = simulate_opt(&accesses, 2);
/// assert_eq!(result.accesses, 6);
/// assert!(result.hits >= 2);
/// ```
pub fn simulate_opt(accesses: &[BlockId], capacity: usize) -> OptResult {
    assert!(capacity > 0, "cache capacity must be non-zero");
    let n = accesses.len();

    // next_use[i] = index of the next access to the same block after i,
    // or n (sentinel: never again).
    let mut next_use = vec![n; n];
    let mut last_seen: HashMap<BlockId, usize> = HashMap::new();
    for (i, &block) in accesses.iter().enumerate().rev() {
        if let Some(&later) = last_seen.get(&block) {
            next_use[i] = later;
        }
        last_seen.insert(block, i);
    }

    // residents ordered by next use, descending pop via BTreeSet max.
    let mut by_next_use: BTreeSet<(usize, BlockId)> = BTreeSet::new();
    let mut resident: HashMap<BlockId, usize> = HashMap::new(); // block → its key
    let mut hits = 0u64;

    for (i, &block) in accesses.iter().enumerate() {
        if let Some(&key) = resident.get(&block) {
            hits += 1;
            by_next_use.remove(&(key, block));
        } else if resident.len() == capacity {
            // A full cache has a non-empty next-use set.
            if let Some((_, victim)) = by_next_use.pop_last() {
                resident.remove(&victim);
            }
        }
        resident.insert(block, next_use[i]);
        by_next_use.insert((next_use[i], block));
    }

    OptResult {
        accesses: n as u64,
        hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CachePolicy, Lru};

    fn ids(seq: &[u64]) -> Vec<BlockId> {
        seq.iter().copied().map(BlockId::new).collect()
    }

    #[test]
    fn empty_sequence() {
        let r = simulate_opt(&[], 4);
        assert_eq!(r.accesses, 0);
        assert_eq!(r.hits, 0);
        assert_eq!(r.miss_ratio(), 1.0);
    }

    #[test]
    fn everything_fits() {
        let r = simulate_opt(&ids(&[1, 2, 3, 1, 2, 3]), 3);
        assert_eq!(r.hits, 3);
        assert_eq!(r.miss_ratio(), 0.5);
    }

    #[test]
    fn textbook_belady_example() {
        // classic: 1 2 3 4 1 2 5 1 2 3 4 5 with capacity 3 → OPT has
        // 7 faults (5 hits of 12)
        let r = simulate_opt(&ids(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]), 3);
        assert_eq!(r.accesses, 12);
        assert_eq!(r.hits, 5);
    }

    #[test]
    fn opt_beats_lru_on_cyclic_scan() {
        // cyclic scan over 5 blocks with capacity 4: LRU gets 0 hits,
        // OPT keeps 3 of them resident
        let seq: Vec<u64> = (0..50).map(|i| i % 5).collect();
        let accesses = ids(&seq);
        let opt = simulate_opt(&accesses, 4);
        let mut lru = Lru::new(4);
        let lru_hits: u64 = accesses.iter().map(|&b| u64::from(lru.access(b).hit)).sum();
        assert_eq!(lru_hits, 0, "LRU thrashes on the cycle");
        assert!(opt.hits > 25, "OPT exploits the future: {} hits", opt.hits);
    }

    #[test]
    fn opt_dominates_every_online_policy() {
        // pseudo-random stream with reuse: OPT ≥ LRU/ARC/2Q/... hit counts
        let seq: Vec<u64> = (0..3000u64).map(|i| (i * 31 + 7) % 97).collect();
        let accesses = ids(&seq);
        for cap in [4usize, 16, 48] {
            let opt = simulate_opt(&accesses, cap);
            let policies: Vec<Box<dyn CachePolicy>> = vec![
                Box::new(crate::Lru::new(cap)),
                Box::new(crate::Fifo::new(cap)),
                Box::new(crate::Lfu::new(cap)),
                Box::new(crate::Clock::new(cap)),
                Box::new(crate::Arc::new(cap)),
                Box::new(crate::Slru::new(cap)),
                Box::new(crate::TwoQ::new(cap)),
            ];
            for mut policy in policies {
                let hits: u64 = accesses
                    .iter()
                    .map(|&b| u64::from(policy.access(b).hit))
                    .sum();
                assert!(
                    opt.hits >= hits,
                    "cap {cap}: {} beat OPT ({} > {})",
                    policy.name(),
                    hits,
                    opt.hits
                );
            }
        }
    }

    #[test]
    fn capacity_one() {
        // demand paging: 2 must be admitted, evicting 1, so only the
        // second access to 1 hits.
        let r = simulate_opt(&ids(&[1, 1, 2, 1]), 1);
        assert_eq!(r.hits, 1);
        assert!((r.miss_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = simulate_opt(&[], 0);
    }
}
