//! Plot-ready data export: every figure's series as TSV files.
//!
//! The text report (`experiments`) compares headline numbers; this
//! module dumps the *full curves* — CDF points, per-volume series,
//! boxplot summaries — so the figures can be re-plotted with any
//! plotting tool (`gnuplot`, matplotlib, ...). One file per figure
//! panel per corpus, tab-separated with a header row.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use cbs_analysis::findings::adjacency::PairKind;
use cbs_core::{Analysis, SweepGrid, POLICY_NAMES};
use cbs_stats::{BoxplotSummary, Cdf, LogHistogram};

use crate::experiments::ReproContext;

/// Maximum points per exported CDF — plenty for a plot, small on disk.
const MAX_POINTS: usize = 512;

fn write_file(path: &Path, header: &str, rows: &[String]) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(file, "{header}")?;
    for row in rows {
        writeln!(file, "{row}")?;
    }
    file.flush()
}

/// Writes an empirical CDF as `value \t cum_fraction` rows.
pub fn write_cdf(path: &Path, cdf: &Cdf, value_label: &str) -> io::Result<()> {
    let rows: Vec<String> = cdf
        .downsampled_points(MAX_POINTS)
        .into_iter()
        .map(|(v, f)| format!("{v}\t{f}"))
        .collect();
    write_file(path, &format!("{value_label}\tcum_fraction"), &rows)
}

/// Writes a log-histogram's CDF as `value \t cum_fraction` rows.
pub fn write_hist_cdf(path: &Path, hist: &LogHistogram, value_label: &str) -> io::Result<()> {
    let points = hist.cdf_points();
    // downsample evenly if oversized
    let step = (points.len() / MAX_POINTS).max(1);
    let rows: Vec<String> = points
        .iter()
        .step_by(step)
        .chain(points.last().filter(|_| points.len() % step != 1))
        .map(|(v, f)| format!("{v}\t{f}"))
        .collect();
    write_file(path, &format!("{value_label}\tcum_fraction"), &rows)
}

/// Writes boxplot summaries, one labelled row each.
pub fn write_boxplots(path: &Path, rows: &[(String, Option<BoxplotSummary>)]) -> io::Result<()> {
    let lines: Vec<String> = rows
        .iter()
        .map(|(label, b)| match b {
            Some(b) => format!(
                "{label}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                b.min(),
                b.whisker_low(),
                b.q1(),
                b.median(),
                b.q3(),
                b.whisker_high(),
                b.max(),
                b.outlier_count()
            ),
            None => format!("{label}\t-\t-\t-\t-\t-\t-\t-\t-"),
        })
        .collect();
    write_file(
        path,
        "series\tmin\twhisker_lo\tq1\tmedian\tq3\twhisker_hi\tmax\toutliers",
        &lines,
    )
}

/// Exports every figure's data for one analyzed corpus under
/// `dir/<prefix>_*.tsv`; returns the files written.
pub fn export_corpus(analysis: &Analysis, dir: &Path, prefix: &str) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut path = |name: &str| -> PathBuf {
        let p = dir.join(format!("{prefix}_{name}.tsv"));
        written.push(p.clone());
        p
    };

    // Fig. 2(a): request-size CDFs
    let sizes = analysis.request_sizes();
    write_hist_cdf(&path("fig2a_read_sizes"), &sizes.read_hist, "bytes")?;
    write_hist_cdf(&path("fig2a_write_sizes"), &sizes.write_hist, "bytes")?;
    // Fig. 2(b): per-volume mean sizes
    let means = analysis.mean_sizes();
    write_cdf(&path("fig2b_mean_read_sizes"), &means.read_means, "bytes")?;
    write_cdf(&path("fig2b_mean_write_sizes"), &means.write_means, "bytes")?;

    // Fig. 3: active days
    write_cdf(
        &path("fig3_active_days"),
        &analysis.active_days().cdf,
        "days",
    )?;

    // Fig. 4: W:R ratios
    write_cdf(
        &path("fig4_wr_ratios"),
        &analysis.write_read_ratios().cdf,
        "ratio",
    )?;

    // Fig. 5: sorted intensities
    let series = analysis.intensity_series();
    let rows: Vec<String> = series
        .avg
        .iter()
        .zip(&series.peak)
        .enumerate()
        .map(|(rank, (a, p))| format!("{rank}\t{a}\t{p}"))
        .collect();
    write_file(&path("fig5_intensities"), "rank\tavg_rps\tpeak_rps", &rows)?;

    // Fig. 6: burstiness CDF
    write_cdf(
        &path("fig6_burstiness"),
        &analysis.burstiness().cdf,
        "ratio",
    )?;

    // Fig. 7: inter-arrival percentile boxplots
    let inter = analysis.interarrival_boxplots();
    let rows: Vec<(String, Option<BoxplotSummary>)> = inter
        .percentiles
        .iter()
        .zip(inter.boxplots.iter())
        .map(|(p, b)| (format!("p{p:.0}"), *b))
        .collect();
    write_boxplots(&path("fig7_interarrival_us"), &rows)?;

    // Fig. 8: active volumes per interval
    let act = analysis.activeness_series();
    let rows: Vec<String> = act
        .active
        .iter()
        .enumerate()
        .map(|(i, a)| format!("{i}\t{a}\t{}\t{}", act.read_active[i], act.write_active[i]))
        .collect();
    write_file(
        &path("fig8_activeness"),
        "interval\tactive\tread_active\twrite_active",
        &rows,
    )?;

    // Fig. 9: active-period CDFs
    let periods = analysis.active_periods();
    write_cdf(&path("fig9_active_days"), &periods.active_days, "days")?;
    write_cdf(
        &path("fig9_read_active_days"),
        &periods.read_active_days,
        "days",
    )?;
    write_cdf(
        &path("fig9_write_active_days"),
        &periods.write_active_days,
        "days",
    )?;

    // Fig. 10(a): randomness CDF; (b): top-traffic scatter
    write_cdf(
        &path("fig10a_randomness"),
        &analysis.randomness().cdf,
        "ratio",
    )?;
    let rows: Vec<String> = analysis
        .top_traffic(10)
        .iter()
        .map(|p| {
            format!(
                "{}\t{}\t{}",
                p.id.get(),
                p.traffic_bytes,
                p.randomness_ratio
            )
        })
        .collect();
    write_file(
        &path("fig10b_top_traffic"),
        "volume\ttraffic_bytes\trandomness_ratio",
        &rows,
    )?;

    // Fig. 11: aggregation boxplots
    let agg = analysis.aggregation();
    let boxed = |v: &[f64]| BoxplotSummary::from_unsorted(v.to_vec());
    write_boxplots(
        &path("fig11_aggregation"),
        &[
            ("read_top1".to_owned(), boxed(&agg.read_top1)),
            ("read_top10".to_owned(), boxed(&agg.read_top10)),
            ("write_top1".to_owned(), boxed(&agg.write_top1)),
            ("write_top10".to_owned(), boxed(&agg.write_top10)),
        ],
    )?;

    // Fig. 12: read-/write-mostly share CDFs
    let rw = analysis.rw_mostly();
    write_cdf(
        &path("fig12_read_mostly_share"),
        &rw.read_share_cdf,
        "share",
    )?;
    write_cdf(
        &path("fig12_write_mostly_share"),
        &rw.write_share_cdf,
        "share",
    )?;

    // Fig. 13: update coverage CDF
    write_cdf(
        &path("fig13_update_coverage"),
        &analysis.update_coverage().cdf,
        "coverage",
    )?;

    // Figs. 14-15: adjacency time CDFs
    let adj = analysis.adjacency();
    for kind in PairKind::ALL {
        write_hist_cdf(
            &path(&format!("fig14_15_{}_us", kind.label().to_lowercase())),
            adj.hist(kind),
            "elapsed_us",
        )?;
    }

    // Table VI / Fig. 16: update-interval distribution + boxplots
    write_hist_cdf(
        &path("fig16_update_intervals_us"),
        &analysis.update_intervals().hist,
        "elapsed_us",
    )?;
    let ub = analysis.update_interval_boxplots();
    let rows: Vec<(String, Option<BoxplotSummary>)> = ub
        .percentiles
        .iter()
        .zip(ub.boxplots.iter())
        .map(|(p, b)| (format!("p{p:.0}"), *b))
        .collect();
    write_boxplots(&path("fig16_update_interval_hours"), &rows)?;

    // Fig. 18: LRU miss-ratio boxplots
    let lru = analysis.lru_miss_ratios();
    write_boxplots(
        &path("fig18_lru_miss_ratios"),
        &[
            ("read_small".to_owned(), boxed(&lru.read_small)),
            ("read_large".to_owned(), boxed(&lru.read_large)),
            ("write_small".to_owned(), boxed(&lru.write_small)),
            ("write_large".to_owned(), boxed(&lru.write_large)),
        ],
    )?;

    // Fig. 18 extension: the full policy grid at the Finding 15 points
    // on the busiest volume, from one sweep traversal.
    if let Some(busiest) = analysis.metrics().iter().max_by_key(|m| m.requests()) {
        let small = busiest.cache_blocks_for_fraction(0.01).max(8);
        let large = busiest.cache_blocks_for_fraction(0.10).max(8);
        // Built-in names and non-zero capacities cannot be rejected.
        let report = SweepGrid::new()
            .grid(POLICY_NAMES, &[small, large])
            .ok()
            .and_then(|grid| analysis.sweep_volume(busiest.id, grid));
        if let Some(report) = report {
            let rows: Vec<String> = report
                .lanes()
                .iter()
                .map(|lane| {
                    let miss = lane
                        .stats
                        .overall_miss_ratio()
                        .map_or_else(|| "NA".to_owned(), |m| format!("{m:.6}"));
                    format!("{}\t{}\t{miss}", lane.policy, lane.capacity)
                })
                .collect();
            write_file(
                &path("fig18_policy_sweep"),
                "policy\tcapacity_blocks\tmiss_ratio",
                &rows,
            )?;
        }
    }

    Ok(written)
}

/// Exports both corpora of a repro run; returns all files written.
pub fn export_all(ctx: &ReproContext, dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = export_corpus(&ctx.alicloud, dir, "alicloud")?;
    files.extend(export_corpus(&ctx.msrc, dir, "msrc")?);
    files.extend(export_corpus(&ctx.alicloud_burst, dir, "alicloud_burst")?);
    files.extend(export_corpus(&ctx.msrc_burst, dir, "msrc_burst")?);
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_core::Workbench;
    use cbs_synth::presets::{self, CorpusConfig};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cbs_series_test_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_analysis() -> Analysis {
        let config = CorpusConfig::new(6, 1, 3).with_intensity_scale(0.002);
        Workbench::new(presets::alicloud_like(&config).generate()).analyze()
    }

    #[test]
    fn exports_every_figure_file() {
        let dir = tmpdir("corpus");
        let analysis = tiny_analysis();
        let files = export_corpus(&analysis, &dir, "test").unwrap();
        assert!(
            files.len() >= 20,
            "expected many series files, got {}",
            files.len()
        );
        for f in &files {
            let content = std::fs::read_to_string(f).unwrap();
            assert!(content.lines().count() >= 1, "{} is empty", f.display());
            // header + tab-separated
            assert!(
                content.lines().next().unwrap().contains('\t'),
                "{}",
                f.display()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cdf_files_are_monotone() {
        let dir = tmpdir("monotone");
        let analysis = tiny_analysis();
        export_corpus(&analysis, &dir, "m").unwrap();
        let content = std::fs::read_to_string(dir.join("m_fig6_burstiness.tsv")).unwrap();
        let points: Vec<(f64, f64)> = content
            .lines()
            .skip(1)
            .map(|l| {
                let mut it = l.split('\t');
                (
                    it.next().unwrap().parse().unwrap(),
                    it.next().unwrap().parse().unwrap(),
                )
            })
            .collect();
        assert!(!points.is_empty());
        assert!(points
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn boxplot_writer_handles_empty_series() {
        let dir = tmpdir("boxplot");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("box.tsv");
        write_boxplots(
            &path,
            &[
                (
                    "full".to_owned(),
                    BoxplotSummary::from_unsorted(vec![1.0, 2.0, 3.0]),
                ),
                ("empty".to_owned(), None),
            ],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 3);
        assert!(content.contains("empty\t-"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
