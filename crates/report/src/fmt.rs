//! Humanized number formatting for reports.

/// Formats a count with an adaptive suffix (K/M/G).
///
/// # Example
///
/// ```
/// assert_eq!(cbs_report::fmt::count(1_234), "1.23K");
/// assert_eq!(cbs_report::fmt::count(20_200_000_000), "20.20G");
/// assert_eq!(cbs_report::fmt::count(17), "17");
/// ```
pub fn count(n: u64) -> String {
    let n = n as f64;
    if n >= 1e9 {
        format!("{:.2}G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.2}M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.2}K", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}

/// Formats a byte quantity with binary units.
///
/// # Example
///
/// ```
/// assert_eq!(cbs_report::fmt::bytes(1 << 30), "1.00GiB");
/// assert_eq!(cbs_report::fmt::bytes(512), "512B");
/// ```
pub fn bytes(n: u64) -> String {
    const KIB: f64 = 1024.0;
    let n = n as f64;
    if n >= KIB * KIB * KIB * KIB {
        format!("{:.2}TiB", n / (KIB * KIB * KIB * KIB))
    } else if n >= KIB * KIB * KIB {
        format!("{:.2}GiB", n / (KIB * KIB * KIB))
    } else if n >= KIB * KIB {
        format!("{:.2}MiB", n / (KIB * KIB))
    } else if n >= KIB {
        format!("{:.2}KiB", n / KIB)
    } else {
        format!("{n:.0}B")
    }
}

/// Formats a fraction as a percentage with one decimal.
///
/// # Example
///
/// ```
/// assert_eq!(cbs_report::fmt::percent(0.915), "91.5%");
/// ```
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats an optional fraction, with a dash for `None`.
pub fn percent_opt(fraction: Option<f64>) -> String {
    fraction.map_or_else(|| "-".to_owned(), percent)
}

/// Formats a float with three significant-ish decimals.
pub fn num(x: f64) -> String {
    // cbs-lint: allow(no-float-eq) -- exactly zero prints as "0"; near-zero values legitimately keep their decimals
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats an optional float, with a dash for `None`.
pub fn num_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_owned(), num)
}

/// Formats hours with an adaptive unit (s / min / h).
///
/// # Example
///
/// ```
/// assert_eq!(cbs_report::fmt::hours(16.2), "16.20h");
/// assert_eq!(cbs_report::fmt::hours(0.03), "1.8min");
/// ```
pub fn hours(h: f64) -> String {
    if h >= 1.0 {
        format!("{h:.2}h")
    } else if h * 60.0 >= 1.0 {
        format!("{:.1}min", h * 60.0)
    } else {
        format!("{:.1}s", h * 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_suffixes() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1_000), "1.00K");
        assert_eq!(count(5_058_600_000), "5.06G");
    }

    #[test]
    fn byte_units() {
        assert_eq!(bytes(0), "0B");
        assert_eq!(bytes(2048), "2.00KiB");
        assert_eq!(bytes(3 << 20), "3.00MiB");
        assert_eq!(bytes(455u64 << 40), "455.00TiB");
    }

    #[test]
    fn percents_and_nums() {
        assert_eq!(percent(0.0), "0.0%");
        assert_eq!(percent(1.0), "100.0%");
        assert_eq!(percent_opt(None), "-");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(2.55), "2.55");
        assert_eq!(num(4926.8), "4926.8");
        assert_eq!(num(0.0123), "0.0123");
        assert_eq!(num_opt(None), "-");
    }

    #[test]
    fn adaptive_hours() {
        assert_eq!(hours(2.0), "2.00h");
        assert_eq!(hours(0.5), "30.0min");
        assert_eq!(hours(0.0001), "0.4s");
    }
}
