//! `repro` — regenerates every table and figure of the paper from
//! synthetic corpora and prints paper-vs-measured comparisons.
//!
//! ```text
//! repro [--seed N] [--ali-volumes N] [--ali-days N] [--ali-scale F]
//!       [--msrc-volumes N] [--msrc-days N] [--msrc-scale F]
//!       [--experiment NAME]... [--tiny] [--out DIR]
//! ```
//!
//! Without flags the default run (100 AliCloud-like volumes × 31 days,
//! 36 MSRC-like volumes × 7 days, plus two full-intensity one-hour
//! windows; ~25 M requests total) takes a few minutes on one core.
//! `--experiment` limits output to the named experiments (see
//! `repro --list`); `--out DIR` additionally writes every figure's
//! full data series as TSV files.

use std::process::ExitCode;

use cbs_report::experiments::{self, ReproConfig};

fn usage() -> String {
    "usage: repro [--seed N] [--ali-volumes N] [--ali-days N] [--ali-scale F]\n             [--msrc-volumes N] [--msrc-days N] [--msrc-scale F]\n             [--experiment NAME]... [--tiny] [--list] [--out DIR]"
        .to_owned()
}

fn main() -> ExitCode {
    let mut config = ReproConfig::default_run(42);
    let mut selected: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);

    fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
        let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
        value
            .parse()
            .map_err(|_| format!("invalid value {value:?} for {flag}"))
    }

    while let Some(arg) = args.next() {
        let result: Result<(), String> = match arg.as_str() {
            "--seed" => parse("--seed", args.next()).map(|s: u64| {
                config.alicloud.seed = s;
                config.msrc.seed = s;
            }),
            "--ali-volumes" => {
                parse("--ali-volumes", args.next()).map(|v| config.alicloud.volumes = v)
            }
            "--ali-days" => parse("--ali-days", args.next()).map(|d| config.alicloud.days = d),
            "--ali-scale" => {
                parse("--ali-scale", args.next()).map(|s| config.alicloud.intensity_scale = s)
            }
            "--msrc-volumes" => {
                parse("--msrc-volumes", args.next()).map(|v| config.msrc.volumes = v)
            }
            "--msrc-days" => parse("--msrc-days", args.next()).map(|d| config.msrc.days = d),
            "--msrc-scale" => {
                parse("--msrc-scale", args.next()).map(|s| config.msrc.intensity_scale = s)
            }
            "--experiment" => parse("--experiment", args.next()).map(|e: String| selected.push(e)),
            "--out" => parse("--out", args.next())
                .map(|d: String| out_dir = Some(std::path::PathBuf::from(d))),
            "--tiny" => {
                config = ReproConfig::tiny(config.alicloud.seed);
                Ok(())
            }
            "--list" => {
                for (name, _) in experiments::registry() {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument {other:?}\n{}", usage())),
        };
        if let Err(e) = result {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    }

    let registry = experiments::registry();
    for name in &selected {
        if !registry.iter().any(|(n, _)| n == name) {
            eprintln!("repro: unknown experiment {name:?}; try --list");
            return ExitCode::FAILURE;
        }
    }

    eprintln!(
        "generating corpora (ali: {} vols x {} d, msrc: {} vols x {} d)...",
        config.alicloud.volumes, config.alicloud.days, config.msrc.volumes, config.msrc.days
    );
    let t0 = std::time::Instant::now();
    let ctx = experiments::build_context(&config);
    eprintln!(
        "generated + analyzed {} + {} requests in {:.1?}",
        ctx.alicloud.trace().request_count(),
        ctx.msrc.trace().request_count(),
        t0.elapsed()
    );

    if selected.is_empty() {
        println!("{}", experiments::run_all(&ctx));
    } else {
        for (name, run) in registry {
            if selected.iter().any(|s| s == name) {
                println!("{}", run(&ctx));
            }
        }
    }

    if let Some(dir) = out_dir {
        match cbs_report::series::export_all(&ctx, &dir) {
            Ok(files) => eprintln!("wrote {} series files under {}", files.len(), dir.display()),
            Err(e) => {
                eprintln!("repro: failed to export series: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
