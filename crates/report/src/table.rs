//! Plain-text table rendering: [`TextTable`].

use core::fmt::Write as _;

/// A simple monospace table builder for report output.
///
/// # Example
///
/// ```
/// use cbs_report::table::TextTable;
///
/// let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
/// t.row(vec!["volumes", "1000", "100"]);
/// let text = t.render();
/// assert!(text.contains("metric"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    ///
    /// # Panics
    ///
    /// Panics if the header is empty.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells, long
    /// rows are truncated to the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // trim trailing padding
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header", "c"]);
        t.row(vec!["wide-cell", "x", "y"]);
        t.row(vec!["1", "2", "3"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // header columns align with data columns
        let h = lines[0].find("long-header").unwrap();
        let d = lines[2].find('x').unwrap();
        assert_eq!(h, d);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
        t.row(vec!["x", "y", "extra-ignored"]);
        let text = t.render();
        assert!(text.contains("only-one"));
        assert!(!text.contains("extra-ignored"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_header() {
        let _ = TextTable::new(Vec::<String>::new());
    }
}
