//! One runner per paper table/figure.
//!
//! [`build_context`] synthesizes both corpora and characterizes them;
//! each `table_*` / `fig_*` function renders one paper artifact as a
//! paper-vs-measured text block; [`run_all`] concatenates all of them
//! into the report recorded in `EXPERIMENTS.md`.

use cbs_analysis::findings::adjacency::PairKind;
use cbs_analysis::findings::aggregation::AggregationBoxplots;
use cbs_analysis::findings::cache::LruMissRatios;
use cbs_analysis::findings::update_interval::IntervalGroup;
use cbs_core::{Analysis, SweepGrid, Workbench, POLICY_NAMES};
use cbs_synth::presets::{self, CorpusConfig};
use cbs_trace::TimeDelta;

use crate::fmt;
use crate::paper::{self, PaperCorpus};
use crate::table::TextTable;

/// Shape of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReproConfig {
    /// AliCloud-like corpus shape.
    pub alicloud: CorpusConfig,
    /// MSRC-like corpus shape.
    pub msrc: CorpusConfig,
    /// Short full-intensity AliCloud-like window for short-term metrics
    /// (inter-arrival times, aggregate peak intensity) that do not
    /// survive intensity scaling.
    pub alicloud_burst: CorpusConfig,
    /// Short full-intensity MSRC-like window.
    pub msrc_burst: CorpusConfig,
}

impl ReproConfig {
    /// The default reproduction: 100 AliCloud-like volumes over the
    /// full 31 days and the full 36-volume MSRC-like week, with request
    /// rates scaled down to keep the run in the ~10-million-request
    /// range (see `DESIGN.md` §3 on what scaling preserves).
    pub fn default_run(seed: u64) -> Self {
        ReproConfig {
            alicloud: CorpusConfig::new(100, 31, seed).with_intensity_scale(0.008),
            msrc: CorpusConfig::new(36, 7, seed).with_intensity_scale(0.03),
            alicloud_burst: CorpusConfig::new(60, 0, seed ^ 0xB).with_extra_hours(1),
            msrc_burst: CorpusConfig::new(36, 0, seed ^ 0xB).with_extra_hours(1),
        }
    }

    /// A seconds-scale run for tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        ReproConfig {
            alicloud: CorpusConfig::new(25, 4, seed).with_intensity_scale(0.001),
            msrc: CorpusConfig::new(12, 3, seed).with_intensity_scale(0.004),
            alicloud_burst: CorpusConfig::new(6, 0, seed ^ 0xB)
                .with_extra_hours(1)
                .with_intensity_scale(0.5),
            msrc_burst: CorpusConfig::new(6, 0, seed ^ 0xB)
                .with_extra_hours(1)
                .with_intensity_scale(0.5),
        }
    }
}

/// Both corpora, analyzed.
#[derive(Debug)]
pub struct ReproContext {
    /// The AliCloud-like analysis.
    pub alicloud: Analysis,
    /// The MSRC-like analysis.
    pub msrc: Analysis,
    /// The full-intensity short-window AliCloud-like analysis.
    pub alicloud_burst: Analysis,
    /// The full-intensity short-window MSRC-like analysis.
    pub msrc_burst: Analysis,
    /// The run shape.
    pub config: ReproConfig,
}

impl ReproContext {
    /// The two analyses paired with their paper references, in
    /// presentation order.
    pub fn corpora(&self) -> [(&Analysis, &'static PaperCorpus); 2] {
        [
            (&self.alicloud, &paper::ALICLOUD),
            (&self.msrc, &paper::MSRC),
        ]
    }

    /// The full-intensity short-window analyses, paired with their
    /// paper references.
    pub fn burst_corpora(&self) -> [(&Analysis, &'static PaperCorpus); 2] {
        [
            (&self.alicloud_burst, &paper::ALICLOUD),
            (&self.msrc_burst, &paper::MSRC),
        ]
    }
}

/// Synthesizes and analyzes both corpora.
pub fn build_context(config: &ReproConfig) -> ReproContext {
    let ali_trace = presets::alicloud_like(&config.alicloud).generate();
    let msrc_trace = presets::msrc_like(&config.msrc).generate();
    let ali_burst_trace = presets::alicloud_like(&config.alicloud_burst).generate();
    let msrc_burst_trace = presets::msrc_like(&config.msrc_burst).generate();
    ReproContext {
        alicloud: Workbench::new(ali_trace).analyze(),
        msrc: Workbench::new(msrc_trace).analyze(),
        alicloud_burst: Workbench::new(ali_burst_trace).analyze(),
        msrc_burst: Workbench::new(msrc_burst_trace).analyze(),
        config: *config,
    }
}

fn section(title: &str, body: String) -> String {
    format!("\n## {title}\n\n{body}")
}

/// Table I — basic statistics.
pub fn table1_basic(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec![
        "metric",
        "AliCloud paper",
        "AliCloud measured",
        "MSRC paper",
        "MSRC measured",
    ]);
    let ali = ctx.alicloud.totals();
    let msrc = ctx.msrc.totals();
    let pa = &paper::ALICLOUD.totals;
    let pm = &paper::MSRC.totals;
    t.row(vec![
        "volumes".into(),
        pa.volumes.to_string(),
        ali.volumes.to_string(),
        pm.volumes.to_string(),
        msrc.volumes.to_string(),
    ]);
    t.row(vec![
        "reads".into(),
        fmt::count((pa.reads_m * 1e6) as u64),
        fmt::count(ali.reads),
        fmt::count((pm.reads_m * 1e6) as u64),
        fmt::count(msrc.reads),
    ]);
    t.row(vec![
        "writes".into(),
        fmt::count((pa.writes_m * 1e6) as u64),
        fmt::count(ali.writes),
        fmt::count((pm.writes_m * 1e6) as u64),
        fmt::count(msrc.writes),
    ]);
    t.row(vec![
        "W:R ratio".into(),
        fmt::num(pa.write_read_ratio()),
        fmt::num_opt(ali.write_read_ratio()),
        fmt::num(pm.write_read_ratio()),
        fmt::num_opt(msrc.write_read_ratio()),
    ]);
    t.row(vec![
        "data read".into(),
        format!("{:.1}TiB", pa.read_tib),
        fmt::bytes(ali.read_bytes),
        format!("{:.2}TiB", pm.read_tib),
        fmt::bytes(msrc.read_bytes),
    ]);
    t.row(vec![
        "data written".into(),
        format!("{:.1}TiB", pa.write_tib),
        fmt::bytes(ali.write_bytes),
        format!("{:.2}TiB", pm.write_tib),
        fmt::bytes(msrc.write_bytes),
    ]);
    t.row(vec![
        "data updated".into(),
        format!("{:.1}TiB", pa.updated_tib),
        fmt::bytes(ali.updated_bytes),
        format!("{:.2}TiB", pm.updated_tib),
        fmt::bytes(msrc.updated_bytes),
    ]);
    t.row(vec![
        "read WSS / total WSS".into(),
        fmt::percent(pa.read_wss_fraction()),
        fmt::percent_opt(ali.read_wss_fraction()),
        fmt::percent(pm.read_wss_fraction()),
        fmt::percent_opt(msrc.read_wss_fraction()),
    ]);
    t.row(vec![
        "write WSS / total WSS".into(),
        fmt::percent(pa.write_wss_fraction()),
        fmt::percent_opt(ali.write_wss_fraction()),
        fmt::percent(pm.write_wss_fraction()),
        fmt::percent_opt(msrc.write_wss_fraction()),
    ]);
    section(
        "Table I — basic statistics (absolute counts scale with the run; ratios are comparable)",
        t.render(),
    )
}

/// Fig. 2 — request-size distributions.
pub fn fig2_sizes(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    for (analysis, p) in ctx.corpora() {
        let sizes = analysis.request_sizes();
        let paper_read = if p.name == "AliCloud" {
            paper::sizes::ALICLOUD_READ_P75
        } else {
            paper::sizes::MSRC_READ_P75
        };
        let paper_write = if p.name == "AliCloud" {
            paper::sizes::ALICLOUD_WRITE_P75
        } else {
            paper::sizes::MSRC_WRITE_P75
        };
        t.row(vec![
            format!("{} read p75", p.name),
            format!("<= {}", fmt::bytes(paper_read)),
            sizes.read_p75().map_or("-".into(), fmt::bytes),
        ]);
        t.row(vec![
            format!("{} write p75", p.name),
            format!("<= {}", fmt::bytes(paper_write)),
            sizes.write_p75().map_or("-".into(), fmt::bytes),
        ]);
        let means = analysis.mean_sizes();
        t.row(vec![
            format!("{} mean-read-size p75 (per-vol)", p.name),
            if p.name == "AliCloud" {
                "<= 39.1KiB".into()
            } else {
                "<= 50.8KiB".into()
            },
            means
                .read_means
                .value_at(0.75)
                .map_or("-".into(), |v| fmt::bytes(v as u64)),
        ]);
        t.row(vec![
            format!("{} mean-write-size p75 (per-vol)", p.name),
            if p.name == "AliCloud" {
                "<= 34.4KiB".into()
            } else {
                "<= 15.3KiB".into()
            },
            means
                .write_means
                .value_at(0.75)
                .map_or("-".into(), |v| fmt::bytes(v as u64)),
        ]);
    }
    section("Fig. 2 — request sizes (small I/O dominates)", t.render())
}

/// Fig. 3 — active days.
pub fn fig3_active_days(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    for (analysis, p) in ctx.corpora() {
        let days = analysis.active_days();
        t.row(vec![
            format!("{} volumes active exactly 1 day", p.name),
            fmt::percent(p.activeness.frac_one_day),
            fmt::percent(days.fraction_at_most(1)),
        ]);
    }
    section("Fig. 3 — active days per volume", t.render())
}

/// Fig. 4 — write-to-read ratios.
pub fn fig4_wr_ratio(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    let ali = ctx.alicloud.write_read_ratios();
    let msrc = ctx.msrc.write_read_ratios();
    t.row(vec![
        "AliCloud write-dominant volumes".into(),
        fmt::percent(paper::wr_ratio::ALICLOUD_WRITE_DOMINANT),
        fmt::percent(ali.fraction_write_dominant()),
    ]);
    t.row(vec![
        "AliCloud volumes with W:R > 100".into(),
        fmt::percent(paper::wr_ratio::ALICLOUD_ABOVE_100),
        fmt::percent(ali.fraction_above(100.0)),
    ]);
    t.row(vec![
        "MSRC write-dominant volumes".into(),
        fmt::percent(paper::wr_ratio::MSRC_WRITE_DOMINANT),
        fmt::percent(msrc.fraction_write_dominant()),
    ]);
    section("Fig. 4 — write-to-read ratios", t.render())
}

/// Fig. 5 + Table II — intensities (Finding 1 + Finding 2's overall
/// burstiness).
pub fn fig5_intensity(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured", "note"]);
    for (analysis, p) in ctx.corpora() {
        let scale = if p.name == "AliCloud" {
            ctx.config.alicloud.intensity_scale
        } else {
            ctx.config.msrc.intensity_scale
        };
        let series = analysis.intensity_series();
        let note = format!("rates scaled x{scale}");
        t.row(vec![
            format!("{} median avg intensity (req/s)", p.name),
            fmt::num(p.intensity.median_avg_rps),
            fmt::num_opt(series.median_avg()),
            note.clone(),
        ]);
        t.row(vec![
            format!("{} volumes above 100 req/s (scaled)", p.name),
            fmt::percent(p.intensity.frac_avg_above_100),
            fmt::percent(series.fraction_avg_above(100.0 * scale)),
            String::new(),
        ]);
        t.row(vec![
            format!("{} volumes below 10 req/s (scaled)", p.name),
            fmt::percent(p.intensity.frac_avg_below_10),
            fmt::percent(1.0 - series.fraction_avg_above(10.0 * scale)),
            String::new(),
        ]);
    }
    for (analysis, p) in ctx.burst_corpora() {
        if let Some(overall) = analysis.overall_intensity() {
            t.row(vec![
                format!("{} overall burstiness ratio", p.name),
                fmt::num(p.intensity.overall_burstiness),
                fmt::num(overall.burstiness_ratio()),
                "Table II; full-intensity 1-hour window".into(),
            ]);
            t.row(vec![
                format!("{} overall avg intensity (req/s)", p.name),
                fmt::num(p.intensity.overall_avg_rps),
                fmt::num(overall.avg_rps),
                "Table II; scales with volume count".into(),
            ]);
        }
    }
    section(
        "Fig. 5 + Table II — load intensities (Finding 1-2)",
        t.render(),
    )
}

/// Fig. 6 — burstiness-ratio distribution (Findings 2-3).
pub fn fig6_burstiness(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    for (analysis, p) in ctx.corpora() {
        let b = analysis.burstiness();
        t.row(vec![
            format!("{} volumes with ratio < 10", p.name),
            fmt::percent(p.intensity.frac_burst_below_10),
            fmt::percent(b.fraction_below(10.0)),
        ]);
        t.row(vec![
            format!("{} volumes with ratio > 100", p.name),
            fmt::percent(p.intensity.frac_burst_above_100),
            fmt::percent(b.fraction_above(100.0)),
        ]);
        t.row(vec![
            format!("{} volumes with ratio > 1000", p.name),
            fmt::percent(p.intensity.frac_burst_above_1000),
            fmt::percent(b.fraction_above(1000.0)),
        ]);
    }
    section("Fig. 6 — burstiness ratios (Findings 2-3)", t.render())
}

/// Fig. 7 — inter-arrival percentile groups (Finding 4).
pub fn fig7_interarrival(ctx: &ReproContext) -> String {
    // Inter-arrival percentiles are a short-term statistic that does
    // not survive intensity scaling, so they are measured on the
    // full-intensity one-hour corpora.
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    for (analysis, p) in ctx.burst_corpora() {
        let b = analysis.interarrival_boxplots();
        for (idx, label) in [(0usize, "p25"), (1, "p50"), (2, "p75")] {
            t.row(vec![
                format!("{} median of per-volume {label} (us)", p.name),
                fmt::num(p.interarrival_group_medians_us[idx]),
                fmt::num_opt(b.median_of_group(idx)),
            ]);
        }
    }
    section(
        "Fig. 7 — inter-arrival times (Finding 4; measured on the full-intensity 1-hour window)",
        t.render(),
    )
}

/// Figs. 8-9 — activeness (Findings 5-7).
pub fn fig8_activeness(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    for (analysis, p) in ctx.corpora() {
        let days = if p.name == "AliCloud" {
            ctx.config.alicloud.days
        } else {
            ctx.config.msrc.days
        } as f64;
        let periods = analysis.active_periods();
        t.row(vec![
            format!("{} volumes active >= 95% of trace", p.name),
            fmt::percent(p.activeness.frac_active_95pct),
            fmt::percent(periods.fraction_active_at_least(0.95, days)),
        ]);
        t.row(vec![
            format!("{} median read-active time (days)", p.name),
            fmt::num(p.activeness.median_read_active_days),
            fmt::num_opt(periods.read_active_days.value_at(0.5)),
        ]);
        if let Some((lo, hi)) = analysis.activeness_series().read_only_reduction() {
            let (plo, phi) = p.activeness.read_reduction_range;
            t.row(vec![
                format!("{} read-only active-volume reduction", p.name),
                format!("{}-{}", fmt::percent(plo), fmt::percent(phi)),
                format!("{}-{}", fmt::percent(lo), fmt::percent(hi)),
            ]);
        }
    }
    section("Figs. 8-9 — activeness (Findings 5-7)", t.render())
}

/// Fig. 10 — randomness (Finding 8).
pub fn fig10_randomness(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    for (analysis, p) in ctx.corpora() {
        let r = analysis.randomness();
        t.row(vec![
            format!("{} volumes with randomness > 50%", p.name),
            fmt::percent(p.randomness.frac_above_half),
            fmt::percent(r.fraction_above(0.5)),
        ]);
        t.row(vec![
            format!("{} max randomness ratio", p.name),
            format!("<= {}", fmt::percent(p.randomness.max_ratio)),
            fmt::percent_opt(r.max()),
        ]);
        let top = analysis.top_traffic(10);
        if !top.is_empty() {
            let lo = top
                .iter()
                .map(|v| v.randomness_ratio)
                .fold(f64::INFINITY, f64::min);
            let hi = top
                .iter()
                .map(|v| v.randomness_ratio)
                .fold(f64::NEG_INFINITY, f64::max);
            let (plo, phi) = p.randomness.top10_ratio_range;
            t.row(vec![
                format!("{} top-10-traffic randomness range", p.name),
                format!("{}-{}", fmt::percent(plo), fmt::percent(phi)),
                format!("{}-{}", fmt::percent(lo), fmt::percent(hi)),
            ]);
        }
    }
    section("Fig. 10 — randomness ratios (Finding 8)", t.render())
}

/// Fig. 11 — traffic aggregation (Finding 9).
pub fn fig11_aggregation(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper p25", "measured p25"]);
    for (analysis, p) in ctx.corpora() {
        let a = analysis.aggregation();
        let rows: [(&str, f64, &Vec<f64>); 4] = [
            ("read top-1%", p.aggregation.read_top1_p25, &a.read_top1),
            ("read top-10%", p.aggregation.read_top10_p25, &a.read_top10),
            ("write top-1%", p.aggregation.write_top1_p25, &a.write_top1),
            (
                "write top-10%",
                p.aggregation.write_top10_p25,
                &a.write_top10,
            ),
        ];
        for (label, paper_p25, values) in rows {
            t.row(vec![
                format!("{} {label} traffic share", p.name),
                fmt::percent(paper_p25),
                fmt::percent_opt(AggregationBoxplots::p25(values)),
            ]);
        }
    }
    section(
        "Fig. 11 — traffic aggregation in top blocks (Finding 9)",
        t.render(),
    )
}

/// Table III + Fig. 12 — read-/write-mostly blocks (Finding 10).
pub fn fig12_rw_mostly(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    for (analysis, p) in ctx.corpora() {
        let r = analysis.rw_mostly();
        t.row(vec![
            format!("{} reads to read-mostly blocks", p.name),
            fmt::percent(p.rw_mostly.overall_read_share),
            fmt::percent_opt(r.overall_read_share),
        ]);
        t.row(vec![
            format!("{} writes to write-mostly blocks", p.name),
            fmt::percent(p.rw_mostly.overall_write_share),
            fmt::percent_opt(r.overall_write_share),
        ]);
        t.row(vec![
            format!("{} median per-volume read share", p.name),
            fmt::percent(p.rw_mostly.median_read_share),
            fmt::percent_opt(r.median_read_share()),
        ]);
        t.row(vec![
            format!("{} median per-volume write share", p.name),
            fmt::percent(p.rw_mostly.median_write_share),
            fmt::percent_opt(r.median_write_share()),
        ]);
    }
    section(
        "Table III + Fig. 12 — read-/write-mostly blocks (Finding 10)",
        t.render(),
    )
}

/// Table IV + Fig. 13 — update coverage (Finding 11).
pub fn fig13_coverage(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    for (analysis, p) in ctx.corpora() {
        let c = analysis.update_coverage();
        let [pmean, pmed, pp90] = p.update_coverage;
        t.row(vec![
            format!("{} mean coverage", p.name),
            fmt::percent(pmean),
            fmt::percent_opt(c.mean()),
        ]);
        t.row(vec![
            format!("{} median coverage", p.name),
            fmt::percent(pmed),
            fmt::percent_opt(c.median()),
        ]);
        t.row(vec![
            format!("{} p90 coverage", p.name),
            fmt::percent(pp90),
            fmt::percent_opt(c.p90()),
        ]);
    }
    section(
        "Table IV + Fig. 13 — update coverage (Finding 11)",
        t.render(),
    )
}

/// Fig. 14 + Table V — RAW/WAW (Finding 12), plus RAR/WAR counts.
pub fn fig14_raw_waw(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    for (analysis, p) in ctx.corpora() {
        let a = analysis.adjacency();
        t.row(vec![
            format!("{} RAW median time", p.name),
            fmt::hours(p.adjacency.median_hours[0]),
            a.median(PairKind::Raw)
                .map_or("-".into(), |d| fmt::hours(d.as_hours_f64())),
        ]);
        t.row(vec![
            format!("{} WAW median time", p.name),
            fmt::hours(p.adjacency.median_hours[1]),
            a.median(PairKind::Waw)
                .map_or("-".into(), |d| fmt::hours(d.as_hours_f64())),
        ]);
        t.row(vec![
            format!("{} WAW times under 1 min", p.name),
            fmt::percent(p.adjacency.waw_under_1min),
            fmt::percent(a.fraction_within(PairKind::Waw, TimeDelta::from_mins(1))),
        ]);
        t.row(vec![
            format!("{} WAW:RAW count ratio", p.name),
            fmt::num(p.adjacency.waw_to_raw_ratio()),
            fmt::num_opt(a.waw_to_raw_ratio()),
        ]);
    }
    section("Fig. 14 + Table V — RAW/WAW (Finding 12)", t.render())
}

/// Fig. 15 — RAR/WAR (Finding 13).
pub fn fig15_rar_war(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    for (analysis, p) in ctx.corpora() {
        let a = analysis.adjacency();
        t.row(vec![
            format!("{} RAR median time", p.name),
            fmt::hours(p.adjacency.median_hours[2]),
            a.median(PairKind::Rar)
                .map_or("-".into(), |d| fmt::hours(d.as_hours_f64())),
        ]);
        t.row(vec![
            format!("{} WAR median time", p.name),
            fmt::hours(p.adjacency.median_hours[3]),
            a.median(PairKind::War)
                .map_or("-".into(), |d| fmt::hours(d.as_hours_f64())),
        ]);
        t.row(vec![
            format!("{} WAR times above 1 h", p.name),
            fmt::percent(p.adjacency.war_above_1h),
            fmt::percent(1.0 - a.fraction_within(PairKind::War, TimeDelta::from_hours(1))),
        ]);
        let rar = a.count(PairKind::Rar);
        let war = a.count(PairKind::War);
        t.row(vec![
            format!("{} RAR:WAR count ratio", p.name),
            fmt::num(p.adjacency.counts_m[2] / p.adjacency.counts_m[3]),
            if war > 0 {
                fmt::num(rar as f64 / war as f64)
            } else {
                "-".into()
            },
        ]);
    }
    section("Fig. 15 — RAR/WAR (Finding 13)", t.render())
}

/// Table VI + Figs. 16-17 — update intervals (Finding 14).
pub fn fig16_update_intervals(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper", "measured"]);
    for (analysis, p) in ctx.corpora() {
        let overall = analysis.update_intervals();
        if let Some(measured) = overall.percentiles_hours() {
            for (i, label) in ["p25", "p50", "p75", "p90", "p95"].iter().enumerate() {
                t.row(vec![
                    format!("{} update-interval {label}", p.name),
                    fmt::hours(p.update_interval_percentiles_h[i]),
                    fmt::hours(measured[i]),
                ]);
            }
        }
        let groups = analysis.interval_groups();
        let (p5, p240) = p.interval_group_medians;
        t.row(vec![
            format!("{} median share of intervals < 5 min", p.name),
            fmt::percent(p5),
            fmt::percent_opt(groups.median(IntervalGroup::Under5Min)),
        ]);
        t.row(vec![
            format!("{} median share of intervals > 240 min", p.name),
            fmt::percent(p240),
            fmt::percent_opt(groups.median(IntervalGroup::Over240Min)),
        ]);
    }
    section(
        "Table VI + Figs. 16-17 — update intervals (Finding 14)",
        t.render(),
    )
}

/// Fig. 18 — LRU miss ratios (Finding 15).
pub fn fig18_lru(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["metric", "paper p25", "measured p25"]);
    for (analysis, p) in ctx.corpora() {
        let r = analysis.lru_miss_ratios();
        let rows: [(&str, f64, &Vec<f64>); 4] = [
            ("read miss @1% WSS", p.lru.read_p25_small, &r.read_small),
            ("read miss @10% WSS", p.lru.read_p25_large, &r.read_large),
            ("write miss @1% WSS", p.lru.write_p25_small, &r.write_small),
            ("write miss @10% WSS", p.lru.write_p25_large, &r.write_large),
        ];
        for (label, paper_p25, values) in rows {
            t.row(vec![
                format!("{} {label}", p.name),
                fmt::percent(paper_p25),
                fmt::percent_opt(LruMissRatios::p25(values)),
            ]);
        }
    }
    section("Fig. 18 — LRU miss ratios (Finding 15)", t.render())
}

/// Fig. 18 extension — every replacement policy at the Finding 15
/// operating points (1 % and 10 % of the working set) on each corpus's
/// busiest volume, driven by the single-pass sweep engine: one trace
/// traversal answers the whole policy × capacity grid.
pub fn fig18_sweep(ctx: &ReproContext) -> String {
    let mut t = TextTable::new(vec!["corpus", "policy", "miss @1% WSS", "miss @10% WSS"]);
    for (analysis, p) in ctx.corpora() {
        let Some(busiest) = analysis.metrics().iter().max_by_key(|m| m.requests()) else {
            continue;
        };
        let small = busiest.cache_blocks_for_fraction(0.01).max(8);
        let large = busiest.cache_blocks_for_fraction(0.10).max(8);
        // Built-in names and non-zero capacities cannot be rejected.
        let Ok(grid) = SweepGrid::new().grid(POLICY_NAMES, &[small, large]) else {
            continue;
        };
        let Some(report) = analysis.sweep_volume(busiest.id, grid) else {
            continue;
        };
        for &name in POLICY_NAMES {
            let miss_at = |capacity: usize| {
                report
                    .stats(name, capacity)
                    .and_then(|s| s.overall_miss_ratio())
            };
            t.row(vec![
                p.name.to_string(),
                name.to_owned(),
                fmt::percent_opt(miss_at(small)),
                fmt::percent_opt(miss_at(large)),
            ]);
        }
    }
    section(
        "Fig. 18 ext. — policy sweep at the Finding 15 points (single pass)",
        t.render(),
    )
}

/// Machine-checked verdicts for all 15 findings (Section IV).
pub fn findings_verdicts(ctx: &ReproContext) -> String {
    let mut verdicts = cbs_analysis::findings::verdicts::evaluate_pair(
        ctx.alicloud.metrics(),
        ctx.msrc.metrics(),
        ctx.alicloud.config(),
    );
    // Findings 1, 4, and 13 are absolute-rate / short-term claims that
    // do not survive intensity scaling (inter-access gaps stretch by
    // the inverse scale); judge them on the full-intensity one-hour
    // corpora instead.
    let burst = cbs_analysis::findings::verdicts::evaluate_pair(
        ctx.alicloud_burst.metrics(),
        ctx.msrc_burst.metrics(),
        ctx.alicloud_burst.config(),
    );
    verdicts[0] = burst[0].clone();
    verdicts[3] = burst[3].clone();
    verdicts[12] = burst[12].clone();
    let holds = cbs_analysis::findings::verdicts::holds_count(&verdicts);
    let mut body = String::new();
    for v in &verdicts {
        body.push_str(&v.to_string());
        body.push('\n');
    }
    body.push_str(&format!(
        "\n{holds}/15 directional claims hold on this run\n"
    ));
    section(
        "Findings scorecard — directional claims of Section IV",
        body,
    )
}

/// One table/figure builder: renders its section from an analyzed run.
pub type Experiment = fn(&ReproContext) -> String;

/// The experiment registry, in paper order.
pub fn registry() -> Vec<(&'static str, Experiment)> {
    vec![
        ("table1", table1_basic as Experiment),
        ("fig2", fig2_sizes),
        ("fig3", fig3_active_days),
        ("fig4", fig4_wr_ratio),
        ("fig5", fig5_intensity),
        ("fig6", fig6_burstiness),
        ("fig7", fig7_interarrival),
        ("fig8", fig8_activeness),
        ("fig10", fig10_randomness),
        ("fig11", fig11_aggregation),
        ("fig12", fig12_rw_mostly),
        ("fig13", fig13_coverage),
        ("fig14", fig14_raw_waw),
        ("fig15", fig15_rar_war),
        ("fig16", fig16_update_intervals),
        ("fig18", fig18_lru),
        ("fig18-sweep", fig18_sweep),
        ("verdicts", findings_verdicts),
    ]
}

/// Runs every experiment and concatenates the report.
pub fn run_all(ctx: &ReproContext) -> String {
    let mut out = String::from("# cbs-workbench reproduction report\n");
    out.push_str(&format!(
        "\nAliCloud-like: {} volumes, {} days, intensity x{}, seed {}\n",
        ctx.config.alicloud.volumes,
        ctx.config.alicloud.days,
        ctx.config.alicloud.intensity_scale,
        ctx.config.alicloud.seed,
    ));
    out.push_str(&format!(
        "MSRC-like: {} volumes, {} days, intensity x{}, seed {}\n",
        ctx.config.msrc.volumes,
        ctx.config.msrc.days,
        ctx.config.msrc.intensity_scale,
        ctx.config.msrc.seed,
    ));
    out.push_str(&format!(
        "Generated requests: AliCloud-like {}, MSRC-like {}\n",
        fmt::count(ctx.alicloud.trace().request_count() as u64),
        fmt::count(ctx.msrc.trace().request_count() as u64),
    ));
    for (_, run) in registry() {
        out.push_str(&run(ctx));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ReproContext {
        build_context(&ReproConfig::tiny(7))
    }

    #[test]
    fn every_experiment_renders() {
        let ctx = ctx();
        for (name, run) in registry() {
            let out = run(&ctx);
            assert!(
                out.contains("paper")
                    || out.contains("Fig")
                    || out.contains("Table")
                    || out.contains("Finding"),
                "experiment {name} produced: {out}"
            );
            assert!(out.len() > 100, "experiment {name} suspiciously short");
        }
    }

    #[test]
    fn run_all_contains_every_section() {
        let ctx = ctx();
        let report = run_all(&ctx);
        for needle in [
            "Table I",
            "Fig. 2",
            "Fig. 3",
            "Fig. 4",
            "Fig. 5",
            "Fig. 6",
            "Fig. 7",
            "Figs. 8-9",
            "Fig. 10",
            "Fig. 11",
            "Fig. 12",
            "Fig. 13",
            "Fig. 14",
            "Fig. 15",
            "Figs. 16-17",
            "Fig. 18",
        ] {
            assert!(report.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<_> = registry().iter().map(|(n, _)| *n).collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(names.len(), unique.len());
    }
}
