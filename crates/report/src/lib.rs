//! Experiment harness: regenerates every table and figure of the
//! IISWC'20 cloud block storage study from synthetic corpora and prints
//! paper-vs-measured comparisons.
//!
//! * [`paper`] — the numbers the paper reports, transcribed as
//!   constants;
//! * [`fmt`] — humanized numbers (counts, bytes, durations);
//! * [`table`] — plain-text table rendering;
//! * [`experiments`] — one runner per table/figure (Table I … Fig. 18);
//! * [`series`] — plot-ready TSV export of every figure's full curves;
//! * the `repro` binary — builds both corpora, runs every experiment,
//!   and emits the full report (see `EXPERIMENTS.md` at the repository
//!   root for a recorded run).
//!
//! # Example
//!
//! ```
//! use cbs_report::experiments::{self, ReproConfig};
//!
//! // A deliberately tiny run (seconds, not minutes).
//! let config = ReproConfig::tiny(42);
//! let ctx = experiments::build_context(&config);
//! let report = experiments::run_all(&ctx);
//! assert!(report.contains("Table I"));
//! assert!(report.contains("Fig. 18"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod fmt;
pub mod paper;
pub mod series;
pub mod table;
