//! The numbers the paper reports, transcribed as constants.
//!
//! Every experiment prints these next to the measured values. Counts
//! and traffic scale with corpus size, so the comparisons the harness
//! makes are mostly *ratios, percentages, and medians* — the
//! scale-free quantities the findings are actually about.

/// Paper-reported values for one corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperCorpus {
    /// Corpus name as used in the paper.
    pub name: &'static str,
    /// Table I.
    pub totals: Totals,
    /// Findings 1-3 (Figs. 5-6, Table II).
    pub intensity: Intensity,
    /// Finding 4 (Fig. 7): medians across volumes of the 25th/50th/75th
    /// inter-arrival percentiles, in microseconds.
    pub interarrival_group_medians_us: [f64; 3],
    /// Findings 5-7 (Figs. 3, 8, 9).
    pub activeness: Activeness,
    /// Finding 8 (Fig. 10).
    pub randomness: Randomness,
    /// Finding 9 (Fig. 11): 25th percentiles of top-block traffic
    /// shares.
    pub aggregation: Aggregation,
    /// Finding 10 (Table III, Fig. 12).
    pub rw_mostly: RwMostly,
    /// Finding 11 (Table IV): mean, median, p90 of update coverage.
    pub update_coverage: [f64; 3],
    /// Findings 12-13 (Figs. 14-15, Table V).
    pub adjacency: Adjacency,
    /// Finding 14 (Table VI): update-interval percentiles
    /// (25/50/75/90/95), hours.
    pub update_interval_percentiles_h: [f64; 5],
    /// Finding 14 (Fig. 17): median per-volume proportion of update
    /// intervals under 5 minutes / over 240 minutes.
    pub interval_group_medians: (f64, f64),
    /// Finding 15 (Fig. 18).
    pub lru: Lru,
}

/// Table I rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Totals {
    /// Number of volumes.
    pub volumes: u64,
    /// Trace duration in days.
    pub days: u64,
    /// Read requests, millions.
    pub reads_m: f64,
    /// Write requests, millions.
    pub writes_m: f64,
    /// Data read, TiB.
    pub read_tib: f64,
    /// Data written, TiB.
    pub write_tib: f64,
    /// Data updated, TiB.
    pub updated_tib: f64,
    /// Total WSS, TiB.
    pub wss_tib: f64,
    /// Read WSS, TiB.
    pub wss_read_tib: f64,
    /// Write WSS, TiB.
    pub wss_write_tib: f64,
    /// Update WSS, TiB.
    pub wss_update_tib: f64,
}

impl Totals {
    /// Write-to-read request ratio.
    pub fn write_read_ratio(&self) -> f64 {
        self.writes_m / self.reads_m
    }

    /// Read WSS share of total WSS.
    pub fn read_wss_fraction(&self) -> f64 {
        self.wss_read_tib / self.wss_tib
    }

    /// Write WSS share of total WSS.
    pub fn write_wss_fraction(&self) -> f64 {
        self.wss_write_tib / self.wss_tib
    }
}

/// Findings 1-3 values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intensity {
    /// Fraction of volumes with average intensity above 100 req/s.
    pub frac_avg_above_100: f64,
    /// Fraction below 10 req/s.
    pub frac_avg_below_10: f64,
    /// Median average intensity, req/s.
    pub median_avg_rps: f64,
    /// Maximum peak intensity, req/s.
    pub max_peak_rps: f64,
    /// Table II: overall peak, req/s.
    pub overall_peak_rps: f64,
    /// Table II: overall average, req/s.
    pub overall_avg_rps: f64,
    /// Table II: overall burstiness ratio.
    pub overall_burstiness: f64,
    /// Fig. 6: fraction of volumes with burstiness ratio < 10.
    pub frac_burst_below_10: f64,
    /// Fraction with ratio > 100.
    pub frac_burst_above_100: f64,
    /// Fraction with ratio > 1000.
    pub frac_burst_above_1000: f64,
}

/// Findings 5-7 values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activeness {
    /// Fig. 3: fraction of volumes active on exactly one day.
    pub frac_one_day: f64,
    /// Fig. 9: fraction of volumes active ≥ 95 % of the trace.
    pub frac_active_95pct: f64,
    /// Finding 7: read-only active-volume reduction range (lo, hi).
    pub read_reduction_range: (f64, f64),
    /// Finding 7: median read-active time, days.
    pub median_read_active_days: f64,
}

/// Finding 8 values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Randomness {
    /// Fraction of volumes with randomness ratio above 0.5.
    pub frac_above_half: f64,
    /// Maximum randomness ratio across volumes.
    pub max_ratio: f64,
    /// Randomness-ratio range over the top-10 traffic volumes.
    pub top10_ratio_range: (f64, f64),
}

/// Finding 9 values: 25th percentiles of traffic shares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregation {
    /// 25th percentile of read traffic in top-1 % read blocks.
    pub read_top1_p25: f64,
    /// ... in top-10 % read blocks.
    pub read_top10_p25: f64,
    /// 25th percentile of write traffic in top-1 % write blocks.
    pub write_top1_p25: f64,
    /// ... in top-10 % write blocks.
    pub write_top10_p25: f64,
}

/// Finding 10 values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RwMostly {
    /// Table III: corpus share of read traffic to read-mostly blocks.
    pub overall_read_share: f64,
    /// Table III: corpus share of write traffic to write-mostly blocks.
    pub overall_write_share: f64,
    /// Fig. 12: median per-volume read share.
    pub median_read_share: f64,
    /// Fig. 12: median per-volume write share.
    pub median_write_share: f64,
}

/// Findings 12-13 values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adjacency {
    /// Pair counts in millions: RAW, WAW, RAR, WAR (Table V).
    pub counts_m: [f64; 4],
    /// Median elapsed times in hours: RAW, WAW, RAR, WAR.
    pub median_hours: [f64; 4],
    /// Fraction of WAW times under one minute.
    pub waw_under_1min: f64,
    /// Fraction of WAR times above one hour.
    pub war_above_1h: f64,
}

impl Adjacency {
    /// WAW-to-RAW count ratio.
    pub fn waw_to_raw_ratio(&self) -> f64 {
        self.counts_m[1] / self.counts_m[0]
    }
}

/// Finding 15 values (all at the 25th percentile across volumes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lru {
    /// Read miss ratio at a 1 % WSS cache.
    pub read_p25_small: f64,
    /// Read miss ratio at a 10 % WSS cache.
    pub read_p25_large: f64,
    /// Write miss ratio at a 1 % WSS cache.
    pub write_p25_small: f64,
    /// Write miss ratio at a 10 % WSS cache.
    pub write_p25_large: f64,
}

/// The AliCloud corpus as reported in the paper.
pub const ALICLOUD: PaperCorpus = PaperCorpus {
    name: "AliCloud",
    totals: Totals {
        volumes: 1000,
        days: 31,
        reads_m: 5058.6,
        writes_m: 15174.4,
        read_tib: 161.6,
        write_tib: 455.5,
        updated_tib: 429.2,
        wss_tib: 29.5,
        wss_read_tib: 10.1,
        wss_write_tib: 26.3,
        wss_update_tib: 18.6,
    },
    intensity: Intensity {
        frac_avg_above_100: 0.019,
        frac_avg_below_10: 0.816,
        median_avg_rps: 2.55,
        max_peak_rps: 4926.8,
        overall_peak_rps: 15_965.8,
        overall_avg_rps: 7_554.1,
        overall_burstiness: 2.11,
        frac_burst_below_10: 0.258,
        frac_burst_above_100: 0.207,
        frac_burst_above_1000: 0.026,
    },
    interarrival_group_medians_us: [31.0, 145.0, 735.0],
    activeness: Activeness {
        frac_one_day: 0.157,
        frac_active_95pct: 0.722,
        read_reduction_range: (0.583, 0.736),
        median_read_active_days: 1.28,
    },
    randomness: Randomness {
        frac_above_half: 0.20,
        max_ratio: 1.0,
        top10_ratio_range: (0.139, 0.834),
    },
    aggregation: Aggregation {
        read_top1_p25: 0.025,
        read_top10_p25: 0.136,
        write_top1_p25: 0.130,
        write_top10_p25: 0.312,
    },
    rw_mostly: RwMostly {
        overall_read_share: 0.592,
        overall_write_share: 0.807,
        median_read_share: 0.83,
        median_write_share: 0.99,
    },
    update_coverage: [0.766, 0.612, 0.921],
    adjacency: Adjacency {
        counts_m: [12_432.7, 103_708.4, 29_845.0, 11_760.6],
        median_hours: [3.0, 1.4, 2.0 / 60.0, 18.3],
        waw_under_1min: 0.224,
        war_above_1h: 0.888,
    },
    update_interval_percentiles_h: [0.03, 1.59, 15.5, 50.3, 120.2],
    interval_group_medians: (0.352, 0.382),
    lru: Lru {
        read_p25_small: 0.961,
        read_p25_large: 0.594,
        write_p25_small: 0.528,
        write_p25_large: 0.307,
    },
};

/// The MSRC corpus as reported in the paper.
pub const MSRC: PaperCorpus = PaperCorpus {
    name: "MSRC",
    totals: Totals {
        volumes: 36,
        days: 7,
        reads_m: 304.9,
        writes_m: 128.9,
        read_tib: 9.04,
        write_tib: 2.39,
        updated_tib: 2.01,
        wss_tib: 2.87,
        wss_read_tib: 2.82,
        wss_write_tib: 0.38,
        wss_update_tib: 0.17,
    },
    intensity: Intensity {
        frac_avg_above_100: 0.0278,
        frac_avg_below_10: 0.722,
        median_avg_rps: 3.36,
        max_peak_rps: 4633.6,
        overall_peak_rps: 5296.8,
        overall_avg_rps: 717.0,
        overall_burstiness: 7.39,
        frac_burst_below_10: 0.0278,
        frac_burst_above_100: 0.389,
        frac_burst_above_1000: 0.0,
    },
    interarrival_group_medians_us: [3.5, 30.5, 1300.0],
    activeness: Activeness {
        frac_one_day: 0.0,
        frac_active_95pct: 0.556,
        read_reduction_range: (0.246, 0.658),
        median_read_active_days: 2.66,
    },
    randomness: Randomness {
        frac_above_half: 0.0,
        max_ratio: 0.46,
        top10_ratio_range: (0.113, 0.408),
    },
    aggregation: Aggregation {
        read_top1_p25: 0.031,
        read_top10_p25: 0.196,
        write_top1_p25: 0.10,
        write_top10_p25: 0.25,
    },
    rw_mostly: RwMostly {
        overall_read_share: 0.759,
        overall_write_share: 0.335,
        median_read_share: 0.90,
        median_write_share: 0.75,
    },
    update_coverage: [0.362, 0.094, 0.630],
    adjacency: Adjacency {
        counts_m: [297.2, 289.8, 1382.6, 330.0],
        median_hours: [16.2, 0.2, 5.0 / 60.0, 5.5],
        waw_under_1min: 0.506,
        war_above_1h: 0.667,
    },
    update_interval_percentiles_h: [0.02, 0.03, 24.0, 24.0, 24.1],
    interval_group_medians: (0.472, 0.189),
    lru: Lru {
        read_p25_small: 0.869,
        read_p25_large: 0.641,
        write_p25_small: 0.462,
        write_p25_large: 0.320,
    },
};

/// Fig. 4 reference points shared by the write-to-read experiment.
pub mod wr_ratio {
    /// Fraction of write-dominant AliCloud volumes.
    pub const ALICLOUD_WRITE_DOMINANT: f64 = 0.915;
    /// Fraction of AliCloud volumes with W:R > 100.
    pub const ALICLOUD_ABOVE_100: f64 = 0.424;
    /// Fraction of write-dominant MSRC volumes (19 of 36).
    pub const MSRC_WRITE_DOMINANT: f64 = 0.53;
}

/// Fig. 2 reference points (75th percentiles, bytes).
pub mod sizes {
    /// AliCloud read p75.
    pub const ALICLOUD_READ_P75: u64 = 32 * 1024;
    /// AliCloud write p75.
    pub const ALICLOUD_WRITE_P75: u64 = 16 * 1024;
    /// MSRC read p75.
    pub const MSRC_READ_P75: u64 = 64 * 1024;
    /// MSRC write p75.
    pub const MSRC_WRITE_P75: u64 = 20 * 1024;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcription_self_checks() {
        // cross-checks the paper states explicitly
        assert!((ALICLOUD.totals.write_read_ratio() - 3.0).abs() < 0.01);
        assert!((MSRC.totals.write_read_ratio() - 0.42).abs() < 0.01);
        assert!((ALICLOUD.totals.read_wss_fraction() - 0.343).abs() < 0.01);
        assert!((MSRC.totals.read_wss_fraction() - 0.984).abs() < 0.01);
        assert!((ALICLOUD.totals.write_wss_fraction() - 0.894).abs() < 0.01);
        assert!((ALICLOUD.adjacency.waw_to_raw_ratio() - 8.34).abs() < 0.1);
        // request totals: 20.2B AliCloud ≈ 46.6 × 433.8M MSRC
        let ali = ALICLOUD.totals.reads_m + ALICLOUD.totals.writes_m;
        let msrc = MSRC.totals.reads_m + MSRC.totals.writes_m;
        assert!((ali / msrc - 46.6).abs() < 0.2);
    }

    #[test]
    fn percentiles_are_monotone() {
        for corpus in [&ALICLOUD, &MSRC] {
            let p = corpus.update_interval_percentiles_h;
            assert!(p.windows(2).all(|w| w[0] <= w[1]), "{}", corpus.name);
            let g = corpus.interarrival_group_medians_us;
            assert!(g.windows(2).all(|w| w[0] <= w[1]), "{}", corpus.name);
        }
    }

    #[test]
    fn lru_large_cache_beats_small() {
        for corpus in [&ALICLOUD, &MSRC] {
            assert!(corpus.lru.read_p25_large < corpus.lru.read_p25_small);
            assert!(corpus.lru.write_p25_large < corpus.lru.write_p25_small);
        }
    }
}
