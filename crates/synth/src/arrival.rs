//! Bursty request-arrival process: [`ArrivalModel`] and [`ArrivalGen`].
//!
//! Requests arrive in *bursts*: burst start times follow an ON/OFF
//! (interrupted Poisson) process with optional diurnal modulation, and
//! requests within a burst are separated by microsecond-scale gaps.
//! This structure reproduces three findings at once:
//!
//! * **Finding 4** (short-term burstiness): most inter-arrival times are
//!   the µs-scale intra-burst gaps regardless of average load;
//! * **Findings 2-3** (burstiness ratios): the ON-fraction knob directly
//!   sets peak-to-average intensity — a volume active 0.1 % of the time
//!   at full rate has a burstiness ratio near 1000;
//! * **Finding 1** (intensities): the average rate is an explicit
//!   parameter.

use cbs_trace::{TimeDelta, Timestamp};
use rand::Rng;

use crate::dist::{Exponential, Geometric, LogNormal};
use crate::error::InvalidProfile;

/// Parameters of a volume's arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalModel {
    /// Target long-run average request rate (requests per second) while
    /// the volume is live.
    pub avg_rate_rps: f64,
    /// Fraction of live time spent in the ON state, in `(0, 1]`.
    /// Burstiness ratio is roughly `1/on_fraction`.
    pub on_fraction: f64,
    /// Mean duration of one ON episode, seconds.
    pub mean_on_secs: f64,
    /// Mean number of requests per burst (≥ 1).
    pub burst_size_mean: f64,
    /// Median intra-burst gap, microseconds.
    pub intra_gap_median_us: f64,
    /// Log-normal sigma of the intra-burst gap.
    pub intra_gap_sigma: f64,
    /// Diurnal modulation amplitude in `[0, 1)`: the ON/OFF process is
    /// thinned by `1 + a·sin(2πt/24h + phase)`.
    pub diurnal_amplitude: f64,
    /// Diurnal phase in radians.
    pub diurnal_phase: f64,
    /// Fraction of the average rate delivered as a steady Poisson
    /// stream of single requests, independent of the ON/OFF bursts.
    ///
    /// This is the "heartbeat" traffic real volumes exhibit (metadata
    /// probes, periodic flushes): it keeps volumes *active* in nearly
    /// every 10-minute interval (Findings 5-7) without materially
    /// moving the peak intensity.
    pub background_fraction: f64,
}

impl ArrivalModel {
    /// A steady low-burstiness model: mostly-ON, small bursts.
    pub fn steady(avg_rate_rps: f64) -> Self {
        ArrivalModel {
            avg_rate_rps,
            on_fraction: 0.6,
            mean_on_secs: 120.0,
            burst_size_mean: 3.0,
            intra_gap_median_us: 200.0,
            intra_gap_sigma: 1.2,
            diurnal_amplitude: 0.3,
            diurnal_phase: 0.0,
            background_fraction: 0.2,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.avg_rate_rps.is_finite() && self.avg_rate_rps > 0.0) {
            return Err(format!(
                "avg_rate_rps must be positive, got {}",
                self.avg_rate_rps
            ));
        }
        if !(self.on_fraction > 0.0 && self.on_fraction <= 1.0) {
            return Err(format!(
                "on_fraction must be in (0,1], got {}",
                self.on_fraction
            ));
        }
        if !(self.mean_on_secs.is_finite() && self.mean_on_secs > 0.0) {
            return Err(format!(
                "mean_on_secs must be positive, got {}",
                self.mean_on_secs
            ));
        }
        if !(self.burst_size_mean.is_finite() && self.burst_size_mean >= 1.0) {
            return Err(format!(
                "burst_size_mean must be >= 1, got {}",
                self.burst_size_mean
            ));
        }
        if !(self.intra_gap_median_us.is_finite() && self.intra_gap_median_us > 0.0) {
            return Err(format!(
                "intra_gap_median_us must be positive, got {}",
                self.intra_gap_median_us
            ));
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err(format!(
                "diurnal_amplitude must be in [0,1), got {}",
                self.diurnal_amplitude
            ));
        }
        if !(0.0..=1.0).contains(&self.background_fraction) {
            return Err(format!(
                "background_fraction must be in [0,1], got {}",
                self.background_fraction
            ));
        }
        Ok(())
    }
}

/// Streaming generator of request timestamps from an [`ArrivalModel`]
/// within a live window `[start, end)`.
#[derive(Debug)]
pub struct ArrivalGen<R> {
    rng: R,
    end: Timestamp,
    /// Current position of the episode clock.
    now: Timestamp,
    /// End of the current ON episode (when in ON).
    on_until: Timestamp,
    /// Remaining requests of the burst in flight.
    burst_left: u64,
    /// Timestamp of the next emitted request.
    next_ts: Timestamp,
    exhausted: bool,

    on_len: Exponential,
    off_len: Option<Exponential>,
    burst_gap: Exponential,
    burst_size: Geometric,
    intra_gap: LogNormal,
    diurnal_amplitude: f64,
    diurnal_phase: f64,
}

impl<R: Rng> ArrivalGen<R> {
    /// Creates a generator over `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProfile`] if the model fails
    /// [`ArrivalModel::validate`] or `start >= end`.
    pub fn new(
        model: &ArrivalModel,
        start: Timestamp,
        end: Timestamp,
        rng: R,
    ) -> Result<Self, InvalidProfile> {
        model
            .validate()
            .map_err(|e| InvalidProfile(format!("arrival model: {e}")))?;
        if start >= end {
            return Err(InvalidProfile(format!(
                "empty live window: {start} >= {end}"
            )));
        }

        // The burst stream carries the non-background share of the
        // average rate: avg·(1-bg) = on_fraction · burst_rate_on · burst_size.
        // Diurnal thinning accepts 1/(1+a) of bursts on average, so the
        // raw rate is boosted by (1+a) to preserve the configured average.
        let burst_rate_on = model.avg_rate_rps
            * (1.0 - model.background_fraction)
            * (1.0 + model.diurnal_amplitude)
            / (model.on_fraction * model.burst_size_mean);
        let mean_off_secs = model.mean_on_secs * (1.0 - model.on_fraction) / model.on_fraction;
        let invalid = |what: &str| InvalidProfile(format!("arrival model: {what}"));
        let off_len = if model.on_fraction >= 1.0 || mean_off_secs <= f64::EPSILON {
            None
        } else {
            Some(Exponential::new(1.0 / mean_off_secs).ok_or_else(|| invalid("off-period rate"))?)
        };
        // log-normal gap: median = exp(mu)
        let intra_gap = LogNormal::from_median(model.intra_gap_median_us, model.intra_gap_sigma)
            .ok_or_else(|| invalid("intra-gap median"))?;

        let mut gen = ArrivalGen {
            rng,
            end,
            now: start,
            on_until: start,
            burst_left: 0,
            next_ts: start,
            exhausted: false,
            on_len: Exponential::new(1.0 / model.mean_on_secs)
                .ok_or_else(|| invalid("on-period rate"))?,
            off_len,
            burst_gap: Exponential::new(burst_rate_on.max(1e-12))
                .ok_or_else(|| invalid("burst rate"))?,
            burst_size: Geometric::from_mean(model.burst_size_mean)
                .ok_or_else(|| invalid("burst size mean"))?,
            intra_gap,
            diurnal_amplitude: model.diurnal_amplitude,
            diurnal_phase: model.diurnal_phase,
        };
        gen.begin_on_episode();
        gen.advance_to_next_burst();
        Ok(gen)
    }

    fn begin_on_episode(&mut self) {
        let dur = TimeDelta::from_secs_f64(self.on_len.sample(&mut self.rng).min(1e9));
        self.on_until = self.now.checked_add(dur).unwrap_or(Timestamp::MAX);
    }

    /// Diurnal thinning acceptance probability at time `t`.
    fn diurnal_accept(&mut self, t: Timestamp) -> bool {
        // cbs-lint: allow(no-float-eq) -- an amplitude of exactly zero disables modulation; any nonzero value must modulate
        if self.diurnal_amplitude == 0.0 {
            return true;
        }
        let day_frac = (t.as_micros() % cbs_trace::time::MICROS_PER_DAY) as f64
            / cbs_trace::time::MICROS_PER_DAY as f64;
        let factor = 1.0
            + self.diurnal_amplitude
                * (std::f64::consts::TAU * day_frac + self.diurnal_phase).sin();
        let p = factor / (1.0 + self.diurnal_amplitude);
        self.rng.gen::<f64>() < p
    }

    /// Moves the episode clock to the start of the next accepted burst
    /// and arms `burst_left`/`next_ts`. Sets `exhausted` past `end`.
    fn advance_to_next_burst(&mut self) {
        loop {
            if self.now >= self.end {
                self.exhausted = true;
                return;
            }
            // gap to the next burst within the ON state
            let gap = TimeDelta::from_secs_f64(self.burst_gap.sample(&mut self.rng).min(1e9));
            let mut t = self.now.checked_add(gap).unwrap_or(Timestamp::MAX);
            // skip OFF time: any portion of the gap beyond the ON episode
            // is stretched by inserting the OFF period.
            while t > self.on_until {
                let overshoot = t - self.on_until;
                let off = match &self.off_len {
                    Some(off_len) => {
                        TimeDelta::from_secs_f64(off_len.sample(&mut self.rng).min(1e9))
                    }
                    None => TimeDelta::ZERO,
                };
                self.now = self.on_until.checked_add(off).unwrap_or(Timestamp::MAX);
                self.begin_on_episode();
                t = self.now.checked_add(overshoot).unwrap_or(Timestamp::MAX);
            }
            self.now = t;
            if self.now >= self.end {
                self.exhausted = true;
                return;
            }
            if self.diurnal_accept(t) {
                self.burst_left = self.burst_size.sample(&mut self.rng);
                self.next_ts = t;
                return;
            }
        }
    }
}

impl<R: Rng> Iterator for ArrivalGen<R> {
    type Item = Timestamp;

    fn next(&mut self) -> Option<Timestamp> {
        if self.exhausted {
            return None;
        }
        let ts = self.next_ts;
        if ts >= self.end {
            self.exhausted = true;
            return None;
        }
        self.burst_left = self.burst_left.saturating_sub(1);
        if self.burst_left > 0 {
            let gap_us = self
                .intra_gap
                .sample(&mut self.rng)
                .clamp(1.0, 60_000_000.0);
            self.next_ts = self
                .next_ts
                .checked_add(TimeDelta::from_micros(gap_us as u64))
                .unwrap_or(Timestamp::MAX);
        } else {
            self.now = self.next_ts;
            self.advance_to_next_burst();
        }
        Some(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// `ArrivalGen` generates only the burst stream; the background
    /// share is added by the volume generator, so these tests zero it.
    fn no_bg(model: ArrivalModel) -> ArrivalModel {
        ArrivalModel {
            background_fraction: 0.0,
            ..model
        }
    }

    fn gen_times(model: &ArrivalModel, hours: u64, seed: u64) -> Vec<Timestamp> {
        ArrivalGen::new(
            model,
            Timestamp::ZERO,
            Timestamp::from_hours(hours),
            SmallRng::seed_from_u64(seed),
        )
        .expect("valid model")
        .collect()
    }

    #[test]
    fn timestamps_are_monotone_and_in_window() {
        let model = no_bg(ArrivalModel::steady(5.0));
        let times = gen_times(&model, 2, 1);
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| t < Timestamp::from_hours(2)));
    }

    #[test]
    fn average_rate_is_respected() {
        let model = no_bg(ArrivalModel::steady(10.0));
        let times = gen_times(&model, 6, 2);
        let rate = times.len() as f64 / (6.0 * 3600.0);
        assert!((rate - 10.0).abs() / 10.0 < 0.25, "rate={rate} (target 10)");
    }

    #[test]
    fn low_on_fraction_creates_high_burstiness() {
        let bursty = ArrivalModel {
            avg_rate_rps: 2.0,
            on_fraction: 0.002,
            mean_on_secs: 90.0,
            burst_size_mean: 60.0,
            intra_gap_median_us: 150.0,
            intra_gap_sigma: 1.0,
            diurnal_amplitude: 0.0,
            diurnal_phase: 0.0,
            background_fraction: 0.0,
        };
        let steady = no_bg(ArrivalModel::steady(2.0));
        let ratio = |model: &ArrivalModel, seed| {
            let times = gen_times(model, 12, seed);
            let mut per_min = std::collections::HashMap::<u64, u64>::new();
            for t in &times {
                *per_min.entry(t.as_micros() / 60_000_000).or_default() += 1;
            }
            let peak = per_min.values().copied().max().unwrap_or(0) as f64 / 60.0;
            let avg = times.len() as f64 / (12.0 * 3600.0);
            peak / avg
        };
        let r_bursty = ratio(&bursty, 3); // ~1/on_fraction when an ON span fills a minute
        let r_steady = ratio(&steady, 3);
        assert!(
            r_bursty > 10.0 * r_steady,
            "bursty={r_bursty} steady={r_steady}"
        );
        assert!(r_bursty > 100.0, "bursty={r_bursty}");
    }

    #[test]
    fn intra_burst_gaps_dominate_interarrivals() {
        let model = ArrivalModel {
            avg_rate_rps: 5.0,
            on_fraction: 0.05,
            mean_on_secs: 30.0,
            burst_size_mean: 40.0,
            intra_gap_median_us: 150.0,
            intra_gap_sigma: 1.0,
            diurnal_amplitude: 0.2,
            diurnal_phase: 0.0,
            background_fraction: 0.0,
        };
        let times = gen_times(&model, 6, 4);
        let mut gaps: Vec<u64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_micros())
            .collect();
        gaps.sort_unstable();
        let med = gaps[gaps.len() / 2];
        // median inter-arrival is µs/ms-scale despite a 5 req/s average
        assert!(med < 5_000, "median gap {med}us");
    }

    #[test]
    fn deterministic_per_seed() {
        let model = no_bg(ArrivalModel::steady(3.0));
        assert_eq!(gen_times(&model, 1, 9), gen_times(&model, 1, 9));
        assert_ne!(gen_times(&model, 1, 9), gen_times(&model, 1, 10));
    }

    #[test]
    fn full_on_fraction_has_no_off_state() {
        let model = no_bg(ArrivalModel {
            on_fraction: 1.0,
            ..ArrivalModel::steady(4.0)
        });
        let times = gen_times(&model, 2, 5);
        let rate = times.len() as f64 / (2.0 * 3600.0);
        assert!((rate - 4.0).abs() / 4.0 < 0.3, "rate={rate}");
    }

    #[test]
    fn rejects_invalid_model() {
        let model = ArrivalModel {
            on_fraction: 0.0,
            ..ArrivalModel::steady(1.0)
        };
        let err = ArrivalGen::new(
            &model,
            Timestamp::ZERO,
            Timestamp::from_hours(1),
            SmallRng::seed_from_u64(0),
        )
        .unwrap_err();
        assert!(err.message().contains("on_fraction"), "{err}");
    }

    #[test]
    fn rejects_empty_window() {
        let err = ArrivalGen::new(
            &ArrivalModel::steady(1.0),
            Timestamp::from_hours(1),
            Timestamp::from_hours(1),
            SmallRng::seed_from_u64(0),
        )
        .unwrap_err();
        assert!(err.message().contains("empty live window"), "{err}");
    }

    #[test]
    fn validate_messages_name_fields() {
        let mut m = ArrivalModel::steady(1.0);
        m.avg_rate_rps = -1.0;
        assert!(m.validate().unwrap_err().contains("avg_rate_rps"));
        let mut m = ArrivalModel::steady(1.0);
        m.burst_size_mean = 0.5;
        assert!(m.validate().unwrap_err().contains("burst_size_mean"));
        let mut m = ArrivalModel::steady(1.0);
        m.diurnal_amplitude = 1.5;
        assert!(m.validate().unwrap_err().contains("diurnal_amplitude"));
        let mut m = ArrivalModel::steady(1.0);
        m.intra_gap_median_us = 0.0;
        assert!(m.validate().unwrap_err().contains("intra_gap_median_us"));
        let mut m = ArrivalModel::steady(1.0);
        m.mean_on_secs = f64::NAN;
        assert!(m.validate().unwrap_err().contains("mean_on_secs"));
        assert!(ArrivalModel::steady(1.0).validate().is_ok());
    }
}
