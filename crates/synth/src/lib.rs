//! Synthetic cloud block storage workload generation.
//!
//! The IISWC'20 study analyzes two production corpora that cannot ship
//! with this repository (the AliCloud release is hundreds of GiB; the
//! MSRC release lives on SNIA). `cbs-synth` is the substitution
//! substrate: a deterministic, seeded generator of block-level I/O
//! traces whose *distributional shapes* match what the paper reports for
//! each corpus, so that every table and figure can be regenerated and
//! compared directionally.
//!
//! The model, bottom-up:
//!
//! * [`dist`] — self-contained samplers (exponential, log-normal, Zipf,
//!   Pareto, geometric, discrete mixtures) built on `rand`'s uniform
//!   source;
//! * [`arrival`] — a bursty ON/OFF arrival process with diurnal
//!   modulation: requests arrive in bursts with microsecond-scale
//!   intra-burst gaps (the paper's Finding 4), and the ON-fraction knob
//!   sets the peak-to-average *burstiness ratio* (Findings 2-3);
//! * [`spatial`] — a sequential/hot/uniform address mixture over
//!   configurable regions: the sequential share sets the randomness
//!   ratio (Finding 8), the hot set sets traffic aggregation
//!   (Finding 9), and region overlap sets read-mostly/write-mostly
//!   behaviour (Finding 10) and update coverage (Finding 11);
//! * [`size`] — request-size mixtures over aligned sizes (small-I/O
//!   dominance, Fig. 2);
//! * [`profile`] — [`VolumeProfile`]: everything one volume needs;
//! * [`presets`] — [`presets::alicloud_like`] and
//!   [`presets::msrc_like`] corpus mixtures calibrated to the paper's
//!   reported marginals;
//! * [`generator`] — turns profiles into a time-sorted
//!   [`cbs_trace::Trace`];
//! * [`builder`] — [`CorpusBuilder`]: compose custom corpora from named
//!   volume archetypes;
//! * [`mutate`] — what-if trace transformations (time scaling, op
//!   flipping, write amplification, sampling).
//!
//! # Example
//!
//! ```
//! use cbs_synth::presets::{self, CorpusConfig};
//!
//! // A miniature AliCloud-like corpus: 20 volumes, 3 days.
//! let config = CorpusConfig::new(20, 3, 42).with_intensity_scale(0.002);
//! let trace = presets::alicloud_like(&config).generate();
//! assert!(trace.volume_count() > 0);
//! assert!(!trace.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod builder;
pub mod dist;
pub mod error;
pub mod generator;
pub mod mutate;
pub mod presets;
pub mod profile;
pub mod size;
pub mod spatial;

pub use builder::CorpusBuilder;
pub use error::InvalidProfile;
pub use generator::CorpusGenerator;
pub use presets::CorpusConfig;
pub use profile::VolumeProfile;
