//! Custom corpus composition: [`CorpusBuilder`].
//!
//! The presets ([`crate::presets`]) reproduce the paper's two corpora;
//! `CorpusBuilder` lets downstream users compose their own mixes from
//! the same volume-class vocabulary — e.g. "20 write-heavy loggers, 5
//! read-cached web servers, 2 bursty analytics jobs" — without touching
//! raw [`VolumeProfile`]s.

use cbs_trace::{Timestamp, VolumeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::arrival::ArrivalModel;
use crate::dist::log_uniform;
use crate::generator::{validated, CorpusGenerator};
use crate::profile::VolumeProfile;
use crate::size::SizeModel;
use crate::spatial::SpatialModel;

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;
const BLOCK: u64 = 4096;

/// A named volume archetype with paper-motivated parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum VolumeClass {
    /// Journal/backup style: almost pure sequential-ish small writes,
    /// heavy overwrites (the paper's W:R > 100 class).
    WriteHeavyLogger,
    /// Balanced virtual-machine disk: write-dominant mixed I/O.
    MixedVm,
    /// Application with a warm read cache upstream: few reads reach the
    /// block layer.
    CacheBackedService,
    /// Read-dominant file/web server (the MSRC-style minority).
    ReadHeavyServer,
    /// Spiky analytics job: long idle stretches, intense bursts.
    BurstyAnalytics,
}

impl VolumeClass {
    /// All classes.
    pub const ALL: [VolumeClass; 5] = [
        VolumeClass::WriteHeavyLogger,
        VolumeClass::MixedVm,
        VolumeClass::CacheBackedService,
        VolumeClass::ReadHeavyServer,
        VolumeClass::BurstyAnalytics,
    ];
}

/// Builder composing a corpus from class counts.
///
/// # Example
///
/// ```
/// use cbs_synth::builder::{CorpusBuilder, VolumeClass};
///
/// let trace = CorpusBuilder::new(7)
///     .days(2)
///     .intensity_scale(0.01)
///     .add(VolumeClass::WriteHeavyLogger, 3)
///     .add(VolumeClass::ReadHeavyServer, 2)
///     .build()
///     .generate();
/// assert_eq!(trace.volume_count(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    seed: u64,
    days: u64,
    intensity_scale: f64,
    classes: Vec<(VolumeClass, usize)>,
}

impl CorpusBuilder {
    /// Creates a builder with the given master seed (1 day, full
    /// intensity, no volumes).
    pub fn new(seed: u64) -> Self {
        CorpusBuilder {
            seed,
            days: 1,
            intensity_scale: 1.0,
            classes: Vec::new(),
        }
    }

    /// Sets the trace duration in days.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    pub fn days(mut self, days: u64) -> Self {
        assert!(days > 0, "trace needs at least one day");
        self.days = days;
        self
    }

    /// Scales every volume's request rate (see
    /// [`crate::presets::CorpusConfig::intensity_scale`]).
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    pub fn intensity_scale(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "intensity scale must be positive"
        );
        self.intensity_scale = scale;
        self
    }

    /// Adds `count` volumes of `class`.
    pub fn add(mut self, class: VolumeClass, count: usize) -> Self {
        self.classes.push((class, count));
        self
    }

    /// Total volumes configured so far.
    pub fn volume_count(&self) -> usize {
        self.classes.iter().map(|(_, n)| n).sum()
    }

    /// Builds the generator.
    ///
    /// # Panics
    ///
    /// Panics if no volumes were added.
    pub fn build(&self) -> CorpusGenerator {
        assert!(self.volume_count() > 0, "corpus needs at least one volume");
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xB01D_E12B);
        let mut profiles = Vec::with_capacity(self.volume_count());
        let mut id = 0u32;
        for &(class, count) in &self.classes {
            for _ in 0..count {
                profiles.push(self.volume(class, id, &mut rng));
                id += 1;
            }
        }
        // every class's knobs sit inside the validated ranges
        validated(CorpusGenerator::new(profiles))
    }

    fn volume(&self, class: VolumeClass, id: u32, rng: &mut SmallRng) -> VolumeProfile {
        let seed = rng.gen();
        let live_end = Timestamp::from_days(self.days);
        let scale = self.intensity_scale;

        // per-class knobs: (write_fraction, base rate rps, on-fraction,
        // burst size, seq prob, writes-per-block)
        let (write_fraction, rate, on_fraction, burst, seq, wpb) = match class {
            VolumeClass::WriteHeavyLogger => (0.995, 4.0, 0.15, 12.0, 0.55, 25.0),
            VolumeClass::MixedVm => (0.75, 2.5, 0.25, 6.0, 0.15, 6.0),
            VolumeClass::CacheBackedService => (0.9, 3.0, 0.2, 8.0, 0.1, 10.0),
            VolumeClass::ReadHeavyServer => (0.3, 5.0, 0.3, 8.0, 0.5, 1.0),
            VolumeClass::BurstyAnalytics => (0.6, 1.5, 0.004, 120.0, 0.2, 3.0),
        };
        let avg_rate_rps = rate * scale * log_uniform(rng, 0.5, 2.0);
        let arrival = ArrivalModel {
            avg_rate_rps,
            on_fraction,
            mean_on_secs: 180.0,
            burst_size_mean: burst,
            intra_gap_median_us: log_uniform(rng, 50.0, 400.0),
            intra_gap_sigma: 1.2,
            diurnal_amplitude: rng.gen_range(0.2..0.6),
            diurnal_phase: rng.gen_range(0.0..std::f64::consts::TAU),
            background_fraction: 0.3,
        };

        let span_secs = (live_end - Timestamp::ZERO).as_secs_f64();
        let expected = avg_rate_rps * span_secs;
        let writes = expected * write_fraction;
        let reads = expected - writes;
        let region = |ops: f64, per_block: f64| -> u64 {
            (((ops / per_block.max(0.1)).ceil() as u64).max(256) * BLOCK).min(512 * GIB)
        };
        let write_len = region(writes.max(1.0), wpb);
        let read_len = region(reads.max(1.0), 2.0).max(64 * MIB);

        let write_spatial = SpatialModel {
            region_start: 0,
            region_len: write_len,
            seq_prob: seq,
            hot_prob: 0.5,
            hot_fraction: 0.01,
            hot_zipf_s: 1.2,
            block_size: cbs_trace::BlockSize::DEFAULT,
        };
        let read_spatial = SpatialModel {
            region_start: write_len,
            region_len: read_len,
            seq_prob: seq * 0.8,
            hot_prob: 0.5,
            hot_fraction: 0.01,
            hot_zipf_s: 1.1,
            block_size: cbs_trace::BlockSize::DEFAULT,
        };

        VolumeProfile {
            id: VolumeId::new(id),
            capacity_bytes: write_len + read_len + GIB,
            live_start: Timestamp::ZERO,
            live_end,
            write_fraction,
            arrival,
            read_spatial,
            write_spatial,
            read_size: SizeModel::small_reads(),
            write_size: SizeModel::small_writes(),
            daily_rewrite: None,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_mix() {
        let builder = CorpusBuilder::new(1)
            .days(1)
            .intensity_scale(0.02)
            .add(VolumeClass::WriteHeavyLogger, 2)
            .add(VolumeClass::ReadHeavyServer, 3);
        assert_eq!(builder.volume_count(), 5);
        let corpus = builder.build();
        assert_eq!(corpus.profiles().len(), 5);
        for p in corpus.profiles() {
            assert_eq!(p.validate(), Ok(()), "{}", p.id);
        }
        // loggers first (ids 0-1), write-dominant
        assert!(corpus.profiles()[0].write_fraction > 0.9);
        assert!(corpus.profiles()[4].write_fraction < 0.5);
    }

    #[test]
    fn classes_shape_the_traffic() {
        let trace = CorpusBuilder::new(5)
            .days(1)
            .intensity_scale(0.05)
            .add(VolumeClass::WriteHeavyLogger, 1)
            .add(VolumeClass::ReadHeavyServer, 1)
            .build()
            .generate();
        let logger = trace.volume(VolumeId::new(0)).unwrap();
        let server = trace.volume(VolumeId::new(1)).unwrap();
        let wf = |reqs: &[cbs_trace::IoRequest]| {
            reqs.iter().filter(|r| r.is_write()).count() as f64 / reqs.len() as f64
        };
        assert!(wf(logger.requests()) > 0.9);
        assert!(wf(server.requests()) < 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let build = |seed| {
            CorpusBuilder::new(seed)
                .days(1)
                .intensity_scale(0.02)
                .add(VolumeClass::MixedVm, 3)
                .build()
                .generate()
                .request_count()
        };
        assert_eq!(build(9), build(9));
    }

    #[test]
    #[should_panic(expected = "at least one volume")]
    fn rejects_empty_corpus() {
        let _ = CorpusBuilder::new(1).build();
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn rejects_zero_days() {
        let _ = CorpusBuilder::new(1).days(0);
    }

    #[test]
    #[should_panic(expected = "intensity scale")]
    fn rejects_bad_scale() {
        let _ = CorpusBuilder::new(1).intensity_scale(0.0);
    }

    #[test]
    fn all_classes_generate() {
        for class in VolumeClass::ALL {
            let trace = CorpusBuilder::new(3)
                .days(1)
                .intensity_scale(0.02)
                .add(class, 1)
                .build()
                .generate();
            assert!(trace.request_count() > 0, "{class:?}");
        }
    }
}
