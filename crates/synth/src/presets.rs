//! Calibrated corpus presets: [`alicloud_like`] and [`msrc_like`].
//!
//! Each preset samples per-volume profiles from a mixture of volume
//! classes whose parameters are tuned to the marginals the paper
//! reports. The calibration targets (paper → knob) are:
//!
//! | Paper observation | Knob |
//! |---|---|
//! | 91.5 % of AliCloud volumes write-dominant, 42.4 % with W:R > 100 (Fig. 4) | class weights × `write_fraction` ranges |
//! | median average intensity 2.55 / 3.36 req/s, ~2 % above 100 req/s (Finding 1) | log-normal rate (median, σ) |
//! | burstiness CDF: AliCloud 25.8 % < 10, 20.7 % > 100, 2.6 % > 1000; MSRC 2.8 % < 10, 38.9 % > 100, none > 1000 (Findings 2-3) | per-volume target ratio → the internal `solve_burst_shape` solver |
//! | µs-scale inter-arrival percentiles (Finding 4) | intra-burst gap medians |
//! | 15.7 % of AliCloud volumes active 1 day; all MSRC volumes active 7 days (Fig. 3) | live-window sampler |
//! | most volumes active ≥ 95 % of 10-min intervals (Findings 5-7) | `background_fraction` heartbeat |
//! | randomness: 20 % of AliCloud volumes > 50 % random; all MSRC < 46 % (Finding 8) | `seq_prob` ranges |
//! | write traffic aggregates in top-1 % blocks (Finding 9) | `hot_prob`, `hot_zipf_s` |
//! | AliCloud read WSS ⊂ write WSS (Table I: 34 % vs 89 % of total, overlap ≈ 24 %); MSRC write WSS ⊂ read WSS (13 % vs 98 %) | region containment layout |
//! | reads→read-mostly 59 %/76 %, writes→write-mostly 81 %/34 % (Finding 10) | same containment layout |
//! | update coverage median 61 % vs 9.4 % (Finding 11) | writes-per-block target |
//! | WAW ≫ RAW in AliCloud; bimodal MSRC update intervals (Findings 12, 14) | write hot sets + `src1_0` daily rewrite |
//!
//! # Intensity scaling caveats
//!
//! `CorpusConfig::intensity_scale` shrinks per-volume request rates so a
//! laptop-scale run stays in the tens of millions of requests. Rates,
//! traffic, and pair counts scale linearly and stay comparable as
//! ratios. Two artifacts remain and are documented per experiment:
//! peak intensities become noisier (a peak minute holds few requests,
//! so Poisson extremes inflate the measured burstiness ratio — the
//! generator compensates via the internal `solve_burst_shape` solver),
//! and the *overall*
//! burstiness of the aggregate stream (Table II) loses the massive
//! statistical multiplexing of 1,000 full-rate volumes.

use cbs_trace::{Timestamp, VolumeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::arrival::ArrivalModel;
use crate::dist::{log_uniform, LogNormal};
use crate::generator::{validated, CorpusGenerator};
use crate::profile::{DailyRewrite, VolumeProfile};
use crate::size::SizeModel;
use crate::spatial::SpatialModel;

const KIB: u64 = 1 << 10;
const GIB: u64 = 1 << 30;
const BLOCK: u64 = 4096;

/// Configuration of a synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Number of volumes.
    pub volumes: usize,
    /// Trace duration in days.
    pub days: u64,
    /// Extra trace duration in hours (on top of `days`) — lets a
    /// corpus cover a sub-day window, e.g. a one-hour full-intensity
    /// run for short-term metrics.
    pub hours: u64,
    /// Master seed; every volume derives its own stream from it.
    pub seed: u64,
    /// Multiplier on per-volume request rates. The paper's corpus has
    /// 20.2 B requests; scaling intensity (not duration) keeps every
    /// clock-based metric meaningful while bounding request counts.
    pub intensity_scale: f64,
}

impl CorpusConfig {
    /// Creates a config with the given shape and `intensity_scale = 1`.
    pub fn new(volumes: usize, days: u64, seed: u64) -> Self {
        CorpusConfig {
            volumes,
            days,
            hours: 0,
            seed,
            intensity_scale: 1.0,
        }
    }

    /// Adds extra hours to the trace duration.
    pub fn with_extra_hours(mut self, hours: u64) -> Self {
        self.hours = hours;
        self
    }

    /// Sets the intensity scale.
    pub fn with_intensity_scale(mut self, scale: f64) -> Self {
        self.intensity_scale = scale;
        self
    }

    /// End-of-trace timestamp.
    pub fn trace_end(&self) -> Timestamp {
        Timestamp::from_hours(self.days * 24 + self.hours)
    }
}

/// Samples the per-volume average request rate: log-normal with the
/// paper's median, capped to keep any single volume's request count
/// bounded.
fn sample_rate(rng: &mut SmallRng, median_rps: f64, sigma: f64, scale: f64) -> f64 {
    // the preset medians are positive constants, so the distribution
    // always constructs; the fallback is dead
    let rate = LogNormal::from_median(median_rps, sigma)
        .map(|dist| dist.sample(rng))
        .unwrap_or(median_rps);
    (rate * scale).clamp(1e-6, median_rps * scale * 150.0)
}

/// Solves the ON/OFF burst shape for a target burstiness ratio.
///
/// The measured peak intensity is a per-minute maximum, so at scaled
/// (low) rates Poisson extremes inflate it: over many minutes the peak
/// count is roughly `λ_on + k·√(λ_on·s)` where `λ_on = 60·r/f` is the
/// expected per-ON-minute count (burst-stream rate `r`, ON-fraction
/// `f`) and `s` the burst size (bursts make the count over-dispersed).
/// Given the target peak count `P = ratio·avg·60`, solving
/// `x + k·√(s·x) = P` for `x = λ_on` yields the ON fraction that
/// *realizes* the target ratio at this scale instead of overshooting
/// it.
///
/// Returns `(on_fraction, burst_size_mean, mean_on_secs)`.
fn solve_burst_shape(
    rng: &mut SmallRng,
    burst_rate_rps: f64,
    avg_rate_rps: f64,
    target_ratio: f64,
) -> (f64, f64, f64) {
    const K: f64 = 5.5;
    let target_peak_count = (target_ratio * avg_rate_rps * 60.0).max(1.0);
    // burst size: large enough that most requests sit in µs-gap bursts,
    // small enough that several bursts fit in a peak minute
    let burst_size = (target_peak_count / 6.0).clamp(1.5, 60.0);
    // solve x + K·√(s·x) = P  (quadratic in √x)
    let sqrt_x =
        ((K * K * burst_size + 4.0 * target_peak_count).sqrt() - K * burst_size.sqrt()) / 2.0;
    let lambda_on = (sqrt_x * sqrt_x).max(1e-9);
    let on_fraction = (60.0 * burst_rate_rps / lambda_on).clamp(2e-4, 1.0);
    // ON episodes must span whole minutes so a peak minute stays ON
    let mean_on_secs = log_uniform(rng, 90.0, 600.0);
    (on_fraction, burst_size, mean_on_secs)
}

/// Samples a target burstiness ratio from weighted log-uniform buckets.
fn sample_target_ratio(rng: &mut SmallRng, weights: [f64; 4], buckets: [(f64, f64); 4]) -> f64 {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            let (lo, hi) = buckets[i];
            return log_uniform(rng, lo, hi);
        }
        u -= w;
    }
    let (lo, hi) = buckets[3];
    log_uniform(rng, lo, hi)
}

/// The burstiness buckets matching the paper's Fig. 6 thresholds.
const RATIO_BUCKETS: [(f64, f64); 4] = [
    (2.0, 10.0),
    (10.0, 100.0),
    (100.0, 1000.0),
    (1000.0, 4000.0),
];
/// MSRC has no volume above 1000; its top bucket stops earlier.
const MSRC_RATIO_BUCKETS: [(f64, f64); 4] =
    [(3.0, 10.0), (10.0, 80.0), (80.0, 350.0), (350.0, 400.0)];

/// Sizes a region (in bytes) so the expected op count revisits each
/// block `per_block` times on average.
fn region_for(expected_ops: f64, per_block: f64, min_blocks: u64, max_bytes: u64) -> u64 {
    let blocks = (expected_ops / per_block.max(1e-9)).ceil() as u64;
    (blocks.max(min_blocks) * BLOCK).min(max_bytes.max(min_blocks * BLOCK))
}

/// Builds an AliCloud-like corpus: the paper's cloud block storage
/// workload mixture (write-dominant, diverse burstiness, short-lived
/// volumes, high update coverage, random-but-aggregated traffic, reads
/// mostly landing on previously written data).
pub fn alicloud_like(config: &CorpusConfig) -> CorpusGenerator {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xA11C_100D);
    let mut profiles = Vec::with_capacity(config.volumes);
    for i in 0..config.volumes {
        profiles.push(alicloud_volume(config, &mut rng, i as u32));
    }
    // the samplers draw every parameter from validated ranges
    validated(CorpusGenerator::new(profiles))
}

fn alicloud_volume(config: &CorpusConfig, rng: &mut SmallRng, id: u32) -> VolumeProfile {
    let seed = rng.gen();
    let capacity = log_uniform(rng, 40.0, 5120.0) as u64 * GIB;

    // --- read/write mix (Fig. 4 targets) ---
    let class = rng.gen::<f64>();
    let (write_fraction, logger) = if class < 0.424 {
        // W:R > 100 (heavy loggers / journals / backups)
        let ratio = log_uniform(rng, 110.0, 3000.0);
        (ratio / (1.0 + ratio), true)
    } else if class < 0.774 {
        // clearly write-dominant
        let ratio = log_uniform(rng, 2.0, 60.0);
        (ratio / (1.0 + ratio), false)
    } else if class < 0.914 {
        // mildly write-dominant
        let ratio = log_uniform(rng, 1.05, 2.0);
        (ratio / (1.0 + ratio), false)
    } else {
        // read-dominant minority (8.6 %)
        let ratio = log_uniform(rng, 0.05, 0.9);
        (ratio / (1.0 + ratio), false)
    };

    // --- live window (Fig. 3: 15.7 % single-day volumes) ---
    let life = rng.gen::<f64>();
    let (live_start, live_end) = if life < 0.157 && config.days > 1 {
        // short-lived batch job, confined to one calendar day
        let day = rng.gen_range(0..config.days);
        let start =
            Timestamp::from_days(day) + cbs_trace::TimeDelta::from_secs(rng.gen_range(0..46_800));
        let dur = cbs_trace::TimeDelta::from_secs(rng.gen_range(1_800..36_000));
        (start, start + dur)
    } else if life < 0.25 && config.days > 3 {
        let span_days = rng.gen_range(2..=(config.days - 1).min(12));
        let day = rng.gen_range(0..=(config.days - span_days));
        (
            Timestamp::from_days(day),
            Timestamp::from_days(day + span_days),
        )
    } else {
        (Timestamp::ZERO, config.trace_end())
    };

    // --- intensity & burstiness (Findings 1-4) ---
    // aggregate W:R is 3:1 while most volumes are write-dominant:
    // read-heavy volumes run slower, loggers a touch faster
    let rate_class_factor = if write_fraction < 0.5 {
        1.0
    } else if logger {
        0.7
    } else {
        1.0
    };
    let avg_rate_rps = sample_rate(rng, 2.55, 1.8, config.intensity_scale) * rate_class_factor;
    let background_fraction = rng.gen_range(0.45..0.70);
    let target_ratio = sample_target_ratio(rng, [0.26, 0.53, 0.18, 0.03], RATIO_BUCKETS);
    let (on_fraction, burst_size_mean, mean_on_secs) = solve_burst_shape(
        rng,
        avg_rate_rps * (1.0 - background_fraction),
        avg_rate_rps,
        target_ratio,
    );
    let arrival = ArrivalModel {
        avg_rate_rps,
        on_fraction,
        mean_on_secs,
        burst_size_mean,
        intra_gap_median_us: log_uniform(rng, 30.0, 600.0),
        intra_gap_sigma: rng.gen_range(0.8..1.6),
        diurnal_amplitude: rng.gen_range(0.1..0.6),
        diurnal_phase: rng.gen_range(0.0..std::f64::consts::TAU),
        background_fraction,
    };

    // --- spatial layout (Findings 8-11, Table I WSS fractions) ---
    let span_secs = (live_end - live_start).as_secs_f64();
    let expected = avg_rate_rps * span_secs;
    let expected_writes = expected * write_fraction;
    let expected_reads = expected - expected_writes;

    // high update coverage: most volumes revisit written blocks often
    let writes_per_block = log_uniform(rng, 1.2, 50.0);
    let write_len = region_for(expected_writes, writes_per_block, 256, capacity / 4);
    let reads_per_block = log_uniform(rng, 2.0, 20.0);
    let read_len = region_for(expected_reads.max(1.0), reads_per_block, 256, capacity / 4);

    // Table I: read WSS is only ~34 % of total while write WSS is
    // ~89 % and they overlap by ~24 % of the WSS — most read blocks
    // were also written. Model: for most volumes the read region sits
    // *inside* the write region (cache-miss reads of recently written
    // data); a minority reads a disjoint (never-written) region.
    // Only write-dominant volumes read back their own writes; the
    // read region is capped below the write region so the two hot sets
    // never coincide exactly.
    // High-rate volumes read the blocks they write (fully aligned hot
    // sets): they carry the corpus-level traffic, pulling the overall
    // read-to-read-mostly share toward the paper's 59 % while the
    // *median* volume keeps its reads on read-mostly blocks (Fig. 12).
    let high_rate = avg_rate_rps > 10.0 * 2.55 * config.intensity_scale;
    let contained = write_fraction > 0.5 && (high_rate || rng.gen::<f64>() < 0.30);
    let (read_start, read_len) = if contained {
        if high_rate || rng.gen::<f64>() < 0.08 {
            // fully aligned with the write region: the two hot sets
            // coincide, producing genuinely mixed blocks (keeps the
            // corpus-level read-mostly share near the paper's 59 %
            // and feeds RAW pairs)
            (0, write_len)
        } else {
            let len = read_len
                .min(write_len * 4 / 5)
                .max(256 * BLOCK)
                .min(write_len);
            let max_start = (write_len - len) / BLOCK;
            (rng.gen_range(0..=max_start) * BLOCK, len)
        }
    } else {
        (write_len, read_len)
    };

    // AliCloud is random-heavy (Finding 8): low sequential share except
    // for loggers
    let seq_prob = if logger {
        rng.gen_range(0.30..0.70)
    } else {
        rng.gen_range(0.02..0.30)
    };
    let write_spatial = SpatialModel {
        region_start: 0,
        region_len: write_len,
        seq_prob,
        hot_prob: rng.gen_range(0.40..0.88),
        hot_fraction: log_uniform(rng, 0.0015, 0.012),
        hot_zipf_s: rng.gen_range(1.2..1.5),
        block_size: cbs_trace::BlockSize::DEFAULT,
    };
    // reads re-hit a small hot set quickly (Finding 13: RAR median is
    // minutes)
    let read_spatial = SpatialModel {
        region_start: read_start,
        region_len: read_len,
        seq_prob: rng.gen_range(0.05..0.35),
        hot_prob: rng.gen_range(0.40..0.75),
        hot_fraction: log_uniform(rng, 0.002, 0.015),
        hot_zipf_s: rng.gen_range(1.0..1.35),
        block_size: cbs_trace::BlockSize::DEFAULT,
    };

    VolumeProfile {
        id: VolumeId::new(id),
        capacity_bytes: capacity.max(read_start + read_len + write_len + GIB),
        live_start,
        live_end,
        write_fraction,
        arrival,
        read_spatial,
        write_spatial,
        read_size: SizeModel::small_reads(),
        write_size: SizeModel::small_writes(),
        daily_rewrite: None,
        seed,
    }
}

/// Builds an MSRC-like corpus: the enterprise data-center mixture the
/// paper compares against (read-heavier in aggregate, steadier
/// activity, low update coverage, writes landing on read data, one
/// `src1_0`-style daily source-control rewrite).
pub fn msrc_like(config: &CorpusConfig) -> CorpusGenerator {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x5EED_4D5C_0000_0001);
    let mut profiles = Vec::with_capacity(config.volumes);
    for i in 0..config.volumes {
        profiles.push(msrc_volume(config, &mut rng, i as u32));
    }
    // the samplers draw every parameter from validated ranges
    validated(CorpusGenerator::new(profiles))
}

fn msrc_volume(config: &CorpusConfig, rng: &mut SmallRng, id: u32) -> VolumeProfile {
    let seed = rng.gen();
    let capacity = log_uniform(rng, 30.0, 800.0) as u64 * GIB;

    // one volume in ~36 is the src1_0-style daily updater
    let is_daily_updater = id as usize == 0;

    // --- read/write mix: 53 % of volumes write-dominant, yet the
    // corpus is read-dominant (0.42 W:R): write-dominant volumes are
    // the low-rate ones ---
    let write_dominant = is_daily_updater || rng.gen::<f64>() < 0.55;
    let write_fraction = if is_daily_updater {
        0.9
    } else if write_dominant {
        let ratio = log_uniform(rng, 1.1, 40.0);
        ratio / (1.0 + ratio)
    } else {
        let ratio = log_uniform(rng, 0.08, 0.95);
        ratio / (1.0 + ratio)
    };

    // --- all volumes live the whole week (Fig. 3) ---
    let (live_start, live_end) = (Timestamp::ZERO, config.trace_end());

    // --- intensity & burstiness ---
    let rate_class_factor = if write_dominant { 0.35 } else { 2.2 };
    let avg_rate_rps = sample_rate(rng, 3.36, 1.5, config.intensity_scale) * rate_class_factor;
    let background_fraction = rng.gen_range(0.02..0.10);
    let target_ratio = sample_target_ratio(rng, [0.03, 0.58, 0.39, 0.0], MSRC_RATIO_BUCKETS);
    let (on_fraction, burst_size_mean, mean_on_secs) = solve_burst_shape(
        rng,
        avg_rate_rps * (1.0 - background_fraction),
        avg_rate_rps,
        target_ratio,
    );
    let arrival = ArrivalModel {
        avg_rate_rps,
        on_fraction,
        mean_on_secs,
        burst_size_mean,
        intra_gap_median_us: log_uniform(rng, 8.0, 400.0),
        intra_gap_sigma: rng.gen_range(1.0..2.0),
        diurnal_amplitude: rng.gen_range(0.5..0.95),
        diurnal_phase: rng.gen_range(0.0..std::f64::consts::TAU),
        background_fraction,
    };

    // --- spatial layout ---
    let span_secs = (live_end - live_start).as_secs_f64();
    let expected = avg_rate_rps * span_secs;
    let expected_writes = expected * write_fraction;
    let expected_reads = expected - expected_writes;

    // low update coverage: write-dominant volumes write blocks about
    // once; read-heavy volumes rewrite their small hot sets
    let writes_per_block = if write_dominant {
        log_uniform(rng, 0.3, 2.0)
    } else {
        log_uniform(rng, 1.5, 8.0)
    };
    let write_len = region_for(
        expected_writes.max(1.0),
        writes_per_block,
        256,
        capacity / 4,
    );
    let reads_per_block = log_uniform(rng, 0.3, 3.0);
    let read_len = region_for(expected_reads.max(1.0), reads_per_block, 256, capacity / 4);

    // Table I: read WSS ≈ 98 % of total, write WSS ≈ 13 % — the write
    // working set is small, and on the (read-heavy, high-rate) volumes
    // it sits *inside* read territory (WAR pairs, weak corpus-level
    // write-mostly aggregation: Table III's 33.5 %) while most
    // write-dominant volumes write a disjoint area (the per-volume
    // write-mostly median stays high: Fig. 12's 75 %).
    let aligned = !write_dominant && rng.gen::<f64>() < 0.85; // read-heavy: writes land on read-hot blocks
    let contained = aligned || rng.gen::<f64>() < 0.25;
    let read_len = read_len.max(write_len + BLOCK * 64);
    let (write_start, write_len) = if aligned {
        (0, read_len)
    } else if contained {
        let max_start = (read_len - write_len) / BLOCK;
        (rng.gen_range(0..=max_start) * BLOCK, write_len)
    } else {
        (read_len, write_len) // disjoint, right after the read region
    };

    // MSRC is more sequential (Finding 8: all randomness ratios < 46 %)
    let read_hot_fraction = log_uniform(rng, 0.003, 0.015);
    let read_spatial = SpatialModel {
        region_start: 0,
        region_len: read_len,
        seq_prob: rng.gen_range(0.45..0.80),
        hot_prob: rng.gen_range(0.40..0.70),
        hot_fraction: read_hot_fraction,
        hot_zipf_s: rng.gen_range(1.0..1.35),
        block_size: cbs_trace::BlockSize::DEFAULT,
    };
    let write_spatial = SpatialModel {
        region_start: write_start,
        region_len: write_len,
        seq_prob: if aligned {
            rng.gen_range(0.55..0.85)
        } else {
            rng.gen_range(0.45..0.85)
        },
        hot_prob: if aligned {
            rng.gen_range(0.65..0.90)
        } else {
            rng.gen_range(0.50..0.80)
        },
        // aligned volumes share the read hot set (same region + same
        // deterministic stride → coinciding hot blocks)
        hot_fraction: if aligned {
            read_hot_fraction * rng.gen_range(0.4..1.0)
        } else {
            log_uniform(rng, 0.002, 0.008)
        },
        hot_zipf_s: rng.gen_range(1.2..1.5),
        block_size: cbs_trace::BlockSize::DEFAULT,
    };

    let daily_rewrite = is_daily_updater.then(|| {
        // a source-control tree rewritten once a day: enough blocks that
        // 24 h intervals form a visible mode in the corpus distribution
        let region_blocks = ((expected_writes * 4.0).max(8192.0) as u64).min(512 * 1024);
        DailyRewrite {
            at_hour: 2.0,
            region_start: capacity / 2,
            region_len: region_blocks * BLOCK,
            request_size: 16 * KIB as u32,
            gap_us: 300,
        }
    });

    VolumeProfile {
        id: VolumeId::new(id),
        capacity_bytes: capacity.max(read_len + write_len + read_len + GIB),
        live_start,
        live_end,
        write_fraction,
        arrival,
        read_spatial,
        write_spatial,
        read_size: SizeModel::bulk(),
        write_size: SizeModel::small_writes(),
        daily_rewrite,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(volumes: usize, days: u64) -> CorpusConfig {
        CorpusConfig::new(volumes, days, 1234).with_intensity_scale(0.001)
    }

    #[test]
    fn alicloud_profiles_validate() {
        let corpus = alicloud_like(&tiny(50, 5));
        assert_eq!(corpus.profiles().len(), 50);
        for p in corpus.profiles() {
            assert_eq!(p.validate(), Ok(()), "{}", p.id);
        }
    }

    #[test]
    fn msrc_profiles_validate() {
        let corpus = msrc_like(&tiny(36, 7));
        assert_eq!(corpus.profiles().len(), 36);
        for p in corpus.profiles() {
            assert_eq!(p.validate(), Ok(()), "{}", p.id);
        }
        // exactly one daily updater
        let updaters = corpus
            .profiles()
            .iter()
            .filter(|p| p.daily_rewrite.is_some())
            .count();
        assert_eq!(updaters, 1);
    }

    #[test]
    fn alicloud_is_write_dominant() {
        let corpus = alicloud_like(&tiny(200, 3));
        let dominant = corpus
            .profiles()
            .iter()
            .filter(|p| p.write_fraction > 0.5)
            .count();
        let frac = dominant as f64 / 200.0;
        assert!(
            (frac - 0.915).abs() < 0.07,
            "write-dominant fraction {frac}"
        );
        let extreme = corpus
            .profiles()
            .iter()
            .filter(|p| p.write_fraction > 100.0 / 101.0)
            .count();
        let frac = extreme as f64 / 200.0;
        assert!((frac - 0.424).abs() < 0.10, "W:R>100 fraction {frac}");
    }

    #[test]
    fn msrc_mix_is_balanced() {
        let corpus = msrc_like(&tiny(36, 7));
        let dominant = corpus
            .profiles()
            .iter()
            .filter(|p| p.write_fraction > 0.5)
            .count();
        // paper: 19 of 36
        assert!((10..=28).contains(&dominant), "dominant={dominant}");
        // everyone lives the whole trace
        assert!(corpus
            .profiles()
            .iter()
            .all(|p| p.live_start == Timestamp::ZERO && p.live_end == Timestamp::from_days(7)));
    }

    #[test]
    fn alicloud_has_short_lived_volumes() {
        let corpus = alicloud_like(&tiny(300, 31));
        let one_day = corpus
            .profiles()
            .iter()
            .filter(|p| (p.live_end - p.live_start).as_days_f64() <= 1.0)
            .count();
        let frac = one_day as f64 / 300.0;
        assert!((frac - 0.157).abs() < 0.06, "single-day fraction {frac}");
    }

    #[test]
    fn msrc_read_heavy_volumes_mostly_write_inside_read_region() {
        let corpus = msrc_like(&tiny(60, 3));
        let (mut read_heavy, mut contained) = (0, 0);
        for p in corpus.profiles() {
            if p.write_fraction < 0.5 {
                read_heavy += 1;
                if p.write_spatial.region_end() <= p.read_spatial.region_end() {
                    contained += 1;
                }
            }
            // every write region is either inside or right after it
            assert!(
                p.write_spatial.region_start <= p.read_spatial.region_end(),
                "{}",
                p.id
            );
        }
        assert!(read_heavy > 5, "fixture has read-heavy volumes");
        // ~85% aligned + a share of the rest contained
        assert!(
            contained * 3 >= read_heavy * 2,
            "{contained} of {read_heavy} contained"
        );
    }

    #[test]
    fn burst_shape_solver_tracks_target() {
        let mut rng = SmallRng::seed_from_u64(1);
        // high target ratio ⇒ small ON fraction
        let (f_hi, s_hi, _) = solve_burst_shape(&mut rng, 0.005, 0.007, 1000.0);
        let (f_lo, s_lo, _) = solve_burst_shape(&mut rng, 0.005, 0.007, 5.0);
        assert!(f_hi < f_lo, "f_hi={f_hi} f_lo={f_lo}");
        assert!(s_hi >= s_lo, "s_hi={s_hi} s_lo={s_lo}");
        assert!((2e-4..=1.0).contains(&f_hi));
        assert!((2e-4..=1.0).contains(&f_lo));
        // at full (unscaled) rates the solver approaches 1/ratio
        let (f, _, _) = solve_burst_shape(&mut rng, 2.0, 2.5, 100.0);
        assert!((0.002..0.06).contains(&f), "f={f}");
    }

    #[test]
    fn presets_are_deterministic() {
        let a = alicloud_like(&tiny(10, 2));
        let b = alicloud_like(&tiny(10, 2));
        assert_eq!(a.profiles(), b.profiles());
        let c = alicloud_like(&CorpusConfig::new(10, 2, 999).with_intensity_scale(0.001));
        assert_ne!(a.profiles(), c.profiles());
    }

    #[test]
    fn generated_corpora_are_non_trivial() {
        let trace = alicloud_like(&tiny(8, 2)).generate();
        assert!(trace.request_count() > 100, "got {}", trace.request_count());
        assert!(trace.volume_count() >= 6);
        let trace = msrc_like(&tiny(6, 2)).generate();
        assert!(trace.request_count() > 100);
    }

    #[test]
    fn config_builder() {
        let c = CorpusConfig::new(5, 3, 7).with_intensity_scale(0.5);
        assert_eq!(c.volumes, 5);
        assert_eq!(c.days, 3);
        assert_eq!(c.seed, 7);
        assert_eq!(c.intensity_scale, 0.5);
        assert_eq!(c.trace_end(), Timestamp::from_days(3));
    }
}
