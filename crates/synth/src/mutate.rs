//! What-if trace transformations.
//!
//! Characterization studies routinely ask counterfactuals: *what if the
//! read cache upstream disappeared* (more reads reach the block layer)?
//! *What if time ran twice as fast* (denser arrivals)? These helpers
//! derive new traces from existing ones — synthetic or real — so the
//! same analysis pipeline can answer such questions. All
//! transformations are deterministic given their seed.

use cbs_trace::{IoRequest, OpKind, TimeDelta, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Compresses or stretches trace time by `factor` around the trace
/// start: `factor = 2.0` makes everything arrive twice as fast
/// (halving all gaps), `0.5` slows it down.
///
/// # Panics
///
/// Panics unless `factor` is positive and finite.
///
/// # Example
///
/// ```
/// use cbs_synth::mutate::scale_time;
/// use cbs_trace::{IoRequest, OpKind, Timestamp, Trace, VolumeId};
///
/// let mk = |s| IoRequest::new(VolumeId::new(0), OpKind::Read, 0, 512, Timestamp::from_secs(s));
/// let trace = Trace::from_requests(vec![mk(0), mk(100)]);
/// let fast = scale_time(&trace, 2.0);
/// assert_eq!(fast.span().unwrap().as_secs(), 50);
/// ```
pub fn scale_time(trace: &Trace, factor: f64) -> Trace {
    assert!(
        factor.is_finite() && factor > 0.0,
        "time factor must be positive"
    );
    let Some(start) = trace.start() else {
        return Trace::new();
    };
    trace
        .requests()
        .iter()
        .map(|r| {
            let rel = (r.ts() - start).as_micros() as f64 / factor;
            IoRequest::new(
                r.volume(),
                r.op(),
                r.offset(),
                r.len(),
                start + TimeDelta::from_micros(rel.round() as u64),
            )
        })
        .collect()
}

/// Converts a fraction of writes into reads of the same blocks — the
/// "upstream read cache removed" counterfactual in reverse, or models
/// a replication layer that reads back what it wrote.
///
/// Each write flips independently with probability `fraction`
/// (seeded, deterministic).
///
/// # Panics
///
/// Panics unless `fraction` is in `[0, 1]`.
pub fn flip_writes_to_reads(trace: &Trace, fraction: f64, seed: u64) -> Trace {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    trace
        .requests()
        .iter()
        .map(|r| {
            if r.is_write() && rng.gen::<f64>() < fraction {
                IoRequest::new(r.volume(), OpKind::Read, r.offset(), r.len(), r.ts())
            } else {
                *r
            }
        })
        .collect()
}

/// Amplifies write traffic: each write is followed by `copies`
/// duplicate writes to the same block at `gap` intervals — a crude
/// replication/journaling model that inflates WAW pairs and update
/// coverage the way replicated block stores do.
pub fn amplify_writes(trace: &Trace, copies: u32, gap: TimeDelta) -> Trace {
    let mut out: Vec<IoRequest> = Vec::with_capacity(trace.request_count());
    for r in trace.requests() {
        out.push(*r);
        if r.is_write() {
            let mut ts = r.ts();
            for _ in 0..copies {
                ts += gap;
                out.push(IoRequest::new(r.volume(), r.op(), r.offset(), r.len(), ts));
            }
        }
    }
    Trace::from_requests(out)
}

/// Thins the trace by keeping each request independently with
/// probability `rate` — cheap load-scaling for quick what-ifs (unlike
/// [`crate::presets::CorpusConfig::intensity_scale`], this preserves
/// nothing about burst structure; it is a sampling tool, not a model).
///
/// # Panics
///
/// Panics unless `rate` is in `(0, 1]`.
pub fn sample_requests(trace: &Trace, rate: f64, seed: u64) -> Trace {
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    trace
        .requests()
        .iter()
        .filter(|_| rng.gen::<f64>() < rate)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_trace::{Timestamp, VolumeId};

    fn mk(op: OpKind, secs: u64) -> IoRequest {
        IoRequest::new(VolumeId::new(0), op, 4096, 4096, Timestamp::from_secs(secs))
    }

    fn sample_trace() -> Trace {
        Trace::from_requests(vec![
            mk(OpKind::Write, 10),
            mk(OpKind::Read, 20),
            mk(OpKind::Write, 30),
            mk(OpKind::Write, 40),
        ])
    }

    #[test]
    fn scale_time_compresses_gaps() {
        let fast = scale_time(&sample_trace(), 2.0);
        assert_eq!(fast.request_count(), 4);
        assert_eq!(
            fast.start(),
            Some(Timestamp::from_secs(10)),
            "anchored at start"
        );
        assert_eq!(fast.span().unwrap().as_secs(), 15);
        let slow = scale_time(&sample_trace(), 0.5);
        assert_eq!(slow.span().unwrap().as_secs(), 60);
    }

    #[test]
    fn scale_time_empty_trace() {
        assert!(scale_time(&Trace::new(), 2.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "time factor")]
    fn scale_time_rejects_zero() {
        let _ = scale_time(&sample_trace(), 0.0);
    }

    #[test]
    fn flip_extremes() {
        let none = flip_writes_to_reads(&sample_trace(), 0.0, 1);
        assert_eq!(none.requests().iter().filter(|r| r.is_write()).count(), 3);
        let all = flip_writes_to_reads(&sample_trace(), 1.0, 1);
        assert_eq!(all.requests().iter().filter(|r| r.is_write()).count(), 0);
        assert_eq!(all.request_count(), 4, "flips never drop requests");
        // offsets and timestamps untouched
        for (a, b) in sample_trace().requests().iter().zip(all.requests()) {
            assert_eq!(a.offset(), b.offset());
            assert_eq!(a.ts(), b.ts());
        }
    }

    #[test]
    fn flip_is_deterministic() {
        let a = flip_writes_to_reads(&sample_trace(), 0.5, 7);
        let b = flip_writes_to_reads(&sample_trace(), 0.5, 7);
        assert_eq!(a.requests(), b.requests());
    }

    #[test]
    fn amplify_adds_waw_pairs() {
        let amplified = amplify_writes(&sample_trace(), 2, TimeDelta::from_millis(1));
        // 3 writes × 2 copies added
        assert_eq!(amplified.request_count(), 4 + 6);
        // duplicates target the same block shortly after the original
        let writes: Vec<_> = amplified
            .requests()
            .iter()
            .filter(|r| r.is_write())
            .collect();
        assert_eq!(writes.len(), 9);
        assert!(writes.iter().all(|r| r.offset() == 4096));
    }

    #[test]
    fn amplify_zero_copies_is_identity() {
        let same = amplify_writes(&sample_trace(), 0, TimeDelta::from_millis(1));
        assert_eq!(same.requests(), sample_trace().requests());
    }

    #[test]
    fn sampling_keeps_roughly_rate() {
        let reqs: Vec<_> = (0..10_000).map(|i| mk(OpKind::Write, i)).collect();
        let trace = Trace::from_requests(reqs);
        let thinned = sample_requests(&trace, 0.25, 3);
        let frac = thinned.request_count() as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "kept {frac}");
        let full = sample_requests(&trace, 1.0, 3);
        assert_eq!(full.request_count(), 10_000);
    }

    #[test]
    #[should_panic(expected = "rate must be")]
    fn sampling_rejects_zero_rate() {
        let _ = sample_requests(&sample_trace(), 0.0, 1);
    }
}
