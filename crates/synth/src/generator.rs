//! Trace generation from profiles: [`VolumeGenerator`] and
//! [`CorpusGenerator`].

use cbs_trace::{IoRequest, OpKind, TimeDelta, Timestamp, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::arrival::ArrivalGen;
use crate::dist::Exponential;
use crate::error::InvalidProfile;
use crate::profile::VolumeProfile;
use crate::spatial::AddressGen;

/// Unwraps a model construction that profile validation has already
/// proven infallible: every sub-model constructor only fails on inputs
/// [`VolumeProfile::validate`] rejects, and the generator constructors
/// validate before building.
pub(crate) fn validated<T>(result: Result<T, InvalidProfile>) -> T {
    match result {
        Ok(value) => value,
        // cbs-lint: allow(no-panic-in-lib) -- the generator constructors validate every profile up front, so sub-model construction cannot fail
        Err(e) => unreachable!("validated profile rejected: {e}"),
    }
}

/// Steady Poisson stream of single-request arrivals — the background
/// ("heartbeat") component of a volume's traffic.
#[derive(Debug)]
struct BackgroundGen {
    rng: SmallRng,
    gap: Exponential,
    next_ts: Timestamp,
    end: Timestamp,
}

impl BackgroundGen {
    fn new(rate_rps: f64, start: Timestamp, end: Timestamp, mut rng: SmallRng) -> Option<Self> {
        let gap = Exponential::new(rate_rps)?;
        // saturating: a pathological rate can push the first arrival past
        // the clock's end; MAX means "never", which `next` handles.
        let first = start.saturating_add(TimeDelta::from_secs_f64(gap.sample(&mut rng).min(1e9)));
        Some(BackgroundGen {
            rng,
            gap,
            next_ts: first,
            end,
        })
    }
}

impl Iterator for BackgroundGen {
    type Item = Timestamp;

    fn next(&mut self) -> Option<Timestamp> {
        if self.next_ts >= self.end {
            return None;
        }
        let ts = self.next_ts;
        let delta = TimeDelta::from_secs_f64(self.gap.sample(&mut self.rng).min(1e9));
        self.next_ts = self.next_ts.checked_add(delta).unwrap_or(Timestamp::MAX);
        Some(ts)
    }
}

/// Merges two sorted timestamp streams.
fn merge_sorted(a: Vec<Timestamp>, b: Vec<Timestamp>) -> Vec<Timestamp> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Generates one volume's time-sorted request stream from its profile.
#[derive(Debug)]
pub struct VolumeGenerator {
    profile: VolumeProfile,
}

impl VolumeGenerator {
    /// Creates a generator.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProfile`] if the profile fails
    /// [`VolumeProfile::validate`].
    pub fn new(profile: VolumeProfile) -> Result<Self, InvalidProfile> {
        profile
            .validate()
            .map_err(|e| InvalidProfile(format!("volume {}: {e}", profile.id)))?;
        Ok(VolumeGenerator { profile })
    }

    /// The profile being generated.
    pub fn profile(&self) -> &VolumeProfile {
        &self.profile
    }

    /// Returns a pull-based iterator over the volume's time-sorted
    /// request stream.
    ///
    /// The iterator produces **exactly** the sequence of
    /// [`VolumeGenerator::generate`] (same RNG draws in the same order,
    /// same tie-breaking between arrival traffic and daily-rewrite
    /// runs) while holding only O(1) state — this is what lets presets
    /// feed a streaming analysis without materializing the trace.
    pub fn iter(&self) -> VolumeIter {
        VolumeIter::new(self.profile.clone())
    }

    /// Generates the volume's full request stream, sorted by timestamp.
    pub fn generate(&self) -> Vec<IoRequest> {
        let p = &self.profile;
        let mut rng = SmallRng::seed_from_u64(p.seed);
        let arrival_rng = SmallRng::seed_from_u64(rng.gen());
        let mut read_addr = validated(AddressGen::new(p.read_spatial.clone()));
        let mut write_addr = validated(AddressGen::new(p.write_spatial.clone()));

        let mut requests: Vec<IoRequest> = Vec::new();
        let burst_times: Vec<Timestamp> = validated(ArrivalGen::new(
            &p.arrival,
            p.live_start,
            p.live_end,
            arrival_rng,
        ))
        .collect();
        let bg_rate = p.arrival.avg_rate_rps * p.arrival.background_fraction;
        let background: Vec<Timestamp> = if bg_rate > 0.0 {
            BackgroundGen::new(
                bg_rate,
                p.live_start,
                p.live_end,
                SmallRng::seed_from_u64(rng.gen()),
            )
            .map(Iterator::collect)
            .unwrap_or_default()
        } else {
            Vec::new()
        };
        let arrivals = merge_sorted(burst_times, background);
        for ts in arrivals {
            let is_write = rng.gen::<f64>() < p.write_fraction;
            let (op, size, addr) = if is_write {
                (
                    OpKind::Write,
                    p.write_size.sample(&mut rng),
                    &mut write_addr,
                )
            } else {
                (OpKind::Read, p.read_size.sample(&mut rng), &mut read_addr)
            };
            let offset = addr.next_offset(&mut rng, size);
            requests.push(IoRequest::new(p.id, op, offset, size, ts));
        }

        if let Some(job) = &p.daily_rewrite {
            let mut job_requests = self.generate_daily_rewrites(job);
            requests.append(&mut job_requests);
            requests.sort_by_key(IoRequest::ts);
        }
        requests
    }

    /// Emits the daily sequential rewrite runs that fall inside the
    /// live window.
    fn generate_daily_rewrites(&self, job: &crate::profile::DailyRewrite) -> Vec<IoRequest> {
        let p = &self.profile;
        let mut out = Vec::new();
        let first_day = p.live_start.day_index();
        let last_day = p.live_end.day_index();
        for day in first_day..=last_day {
            let start_us = day * cbs_trace::time::MICROS_PER_DAY
                + (job.at_hour * cbs_trace::time::MICROS_PER_HOUR as f64) as u64;
            let mut ts = Timestamp::from_micros(start_us);
            if ts < p.live_start {
                continue;
            }
            let mut offset = job.region_start;
            let end = job.region_start + job.region_len;
            while offset < end && ts < p.live_end {
                // the min against a u32 keeps the cast lossless
                let len = (end - offset).min(u64::from(job.request_size)) as u32;
                out.push(IoRequest::new(p.id, OpKind::Write, offset, len, ts));
                offset += u64::from(len);
                // saturating: `ts < live_end` terminates the loop, so a
                // clamped MAX ends the run instead of wrapping/panicking
                ts = ts.saturating_add(TimeDelta::from_micros(job.gap_us));
            }
        }
        out
    }
}

/// One pending daily sequential rewrite run (lazy counterpart of one
/// `generate_daily_rewrites` day loop iteration).
#[derive(Debug)]
struct RewriteRun {
    id: cbs_trace::VolumeId,
    ts: Timestamp,
    offset: u64,
    end: u64,
    request_size: u32,
    gap_us: u64,
    live_end: Timestamp,
}

impl RewriteRun {
    /// Timestamp of the next request this run would emit, if any.
    fn peek_ts(&self) -> Option<Timestamp> {
        (self.offset < self.end && self.ts < self.live_end).then_some(self.ts)
    }
}

impl Iterator for RewriteRun {
    type Item = IoRequest;

    fn next(&mut self) -> Option<IoRequest> {
        if self.offset >= self.end || self.ts >= self.live_end {
            return None;
        }
        // the min against a u32 keeps the cast lossless
        let len = (self.end - self.offset).min(u64::from(self.request_size)) as u32;
        let req = IoRequest::new(self.id, OpKind::Write, self.offset, len, self.ts);
        self.offset += u64::from(len);
        // saturating, for the same reason as the batch path above
        self.ts = self.ts.saturating_add(TimeDelta::from_micros(self.gap_us));
        Some(req)
    }
}

/// Lazy, time-sorted request stream of one volume — see
/// [`VolumeGenerator::iter`].
///
/// Internally merges three sorted sources while replicating the batch
/// path's draw order and tie-breaking exactly:
///
/// * burst arrivals ([`ArrivalGen`]) and background arrivals
///   ([`BackgroundGen`]) merge with bursts winning timestamp ties
///   (mirroring `merge_sorted`);
/// * per-request op/size/offset draws happen in merged *arrival* order
///   from the main RNG, untouched by rewrite traffic;
/// * daily rewrite runs merge in afterwards, losing timestamp ties to
///   arrival traffic and breaking run-vs-run ties by day order
///   (mirroring the batch path's stable sort over the concatenation).
#[derive(Debug)]
pub struct VolumeIter {
    profile: VolumeProfile,
    rng: SmallRng,
    read_addr: AddressGen,
    write_addr: AddressGen,
    burst: ArrivalGen<SmallRng>,
    background: Option<BackgroundGen>,
    next_burst: Option<Timestamp>,
    next_background: Option<Timestamp>,
    runs: Vec<RewriteRun>,
}

impl VolumeIter {
    fn new(p: VolumeProfile) -> Self {
        // The draw order from the seed RNG must match `generate()`:
        // arrival seed first, then (only if background traffic exists)
        // the background seed.
        let mut rng = SmallRng::seed_from_u64(p.seed);
        let arrival_rng = SmallRng::seed_from_u64(rng.gen());
        let read_addr = validated(AddressGen::new(p.read_spatial.clone()));
        let write_addr = validated(AddressGen::new(p.write_spatial.clone()));
        let burst = validated(ArrivalGen::new(
            &p.arrival,
            p.live_start,
            p.live_end,
            arrival_rng,
        ));
        let bg_rate = p.arrival.avg_rate_rps * p.arrival.background_fraction;
        let background = if bg_rate > 0.0 {
            BackgroundGen::new(
                bg_rate,
                p.live_start,
                p.live_end,
                SmallRng::seed_from_u64(rng.gen()),
            )
        } else {
            None
        };
        let mut runs = Vec::new();
        if let Some(job) = &p.daily_rewrite {
            let first_day = p.live_start.day_index();
            let last_day = p.live_end.day_index();
            for day in first_day..=last_day {
                let start_us = day * cbs_trace::time::MICROS_PER_DAY
                    + (job.at_hour * cbs_trace::time::MICROS_PER_HOUR as f64) as u64;
                let ts = Timestamp::from_micros(start_us);
                if ts < p.live_start {
                    continue;
                }
                runs.push(RewriteRun {
                    id: p.id,
                    ts,
                    offset: job.region_start,
                    end: job.region_start + job.region_len,
                    request_size: job.request_size,
                    gap_us: job.gap_us,
                    live_end: p.live_end,
                });
            }
        }
        VolumeIter {
            profile: p,
            rng,
            read_addr,
            write_addr,
            burst,
            background,
            next_burst: None,
            next_background: None,
            runs,
        }
    }

    /// Fills the peek slots and returns the next merged arrival
    /// timestamp without consuming it.
    fn peek_arrival(&mut self) -> Option<Timestamp> {
        if self.next_burst.is_none() {
            self.next_burst = self.burst.next();
        }
        if self.next_background.is_none() {
            self.next_background = self.background.as_mut().and_then(Iterator::next);
        }
        match (self.next_burst, self.next_background) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Consumes the peeked arrival timestamp (bursts win ties, matching
    /// `merge_sorted`'s `a <= b` branch).
    fn pop_arrival(&mut self) -> Option<Timestamp> {
        match (self.next_burst, self.next_background) {
            (Some(a), Some(b)) if a <= b => self.next_burst.take(),
            (Some(_), Some(_)) => self.next_background.take(),
            (Some(_), None) => self.next_burst.take(),
            (None, _) => self.next_background.take(),
        }
    }

    /// Draws op, size, and offset for one arrival — the only place the
    /// main RNG advances, in merged arrival order like the batch path.
    fn emit_arrival(&mut self, ts: Timestamp) -> IoRequest {
        let p = &self.profile;
        let is_write = self.rng.gen::<f64>() < p.write_fraction;
        let (op, size, addr) = if is_write {
            (
                OpKind::Write,
                p.write_size.sample(&mut self.rng),
                &mut self.write_addr,
            )
        } else {
            (
                OpKind::Read,
                p.read_size.sample(&mut self.rng),
                &mut self.read_addr,
            )
        };
        let offset = addr.next_offset(&mut self.rng, size);
        IoRequest::new(p.id, op, offset, size, ts)
    }
}

impl Iterator for VolumeIter {
    type Item = IoRequest;

    fn next(&mut self) -> Option<IoRequest> {
        let arrival_ts = self.peek_arrival();
        // Earliest-timestamp rewrite run; earlier days win ties, which
        // reproduces the stable sort over [arrivals, day 0, day 1, ...].
        let mut best_run: Option<(usize, Timestamp)> = None;
        for (i, run) in self.runs.iter().enumerate() {
            if let Some(ts) = run.peek_ts() {
                if best_run.map_or(true, |(_, best)| ts < best) {
                    best_run = Some((i, ts));
                }
            }
        }
        match (arrival_ts, best_run) {
            // A run emits only when strictly earlier: on equal
            // timestamps the arrival requests preceded the appended
            // rewrites in the batch concatenation.
            (Some(a), Some((i, r))) if r < a => self.runs[i].next(),
            (Some(ts), _) => {
                // consume the peek slot the min came from; `ts` equals
                // the consumed value by construction
                let _ = self.pop_arrival();
                Some(self.emit_arrival(ts))
            }
            (None, Some((i, _))) => self.runs[i].next(),
            (None, None) => None,
        }
    }
}

/// Generates a whole corpus from a set of profiles.
#[derive(Debug)]
pub struct CorpusGenerator {
    profiles: Vec<VolumeProfile>,
}

impl CorpusGenerator {
    /// Creates a generator over `profiles`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProfile`] for the first profile that fails
    /// validation.
    pub fn new(profiles: Vec<VolumeProfile>) -> Result<Self, InvalidProfile> {
        for p in &profiles {
            p.validate()
                .map_err(|e| InvalidProfile(format!("volume {}: {e}", p.id)))?;
        }
        Ok(CorpusGenerator { profiles })
    }

    /// The profiles in the corpus.
    pub fn profiles(&self) -> &[VolumeProfile] {
        &self.profiles
    }

    /// Generates the full corpus trace.
    pub fn generate(&self) -> Trace {
        let mut all: Vec<IoRequest> = Vec::new();
        for profile in &self.profiles {
            all.extend(validated(VolumeGenerator::new(profile.clone())).generate());
        }
        Trace::from_requests(all)
    }

    /// Generates only the volume at `index` (for incremental /
    /// parallel drivers); `None` if `index` is out of range.
    pub fn generate_volume(&self, index: usize) -> Option<Vec<IoRequest>> {
        let profile = self.profiles.get(index)?;
        Some(validated(VolumeGenerator::new(profile.clone())).generate())
    }

    /// Returns a pull-based, globally time-ordered stream over the whole
    /// corpus, holding only O(volumes) state.
    ///
    /// The stream k-way merges one [`VolumeIter`] per profile (earlier
    /// profiles win timestamp ties), so the per-volume subsequences are
    /// exactly the per-volume runs of [`CorpusGenerator::generate`] and
    /// the first item carries the trace's epoch timestamp. This is the
    /// entry point for analyzing synthetic corpora of hundreds of
    /// millions of requests without materializing a `Trace`.
    pub fn stream(&self) -> CorpusStream {
        let volumes: Vec<VolumeIter> = self
            .profiles
            .iter()
            .map(|p| validated(VolumeGenerator::new(p.clone())).iter())
            .collect();
        let pending = volumes.iter().map(|_| None).collect();
        CorpusStream { volumes, pending }
    }
}

/// Lazy, globally time-ordered corpus stream — see
/// [`CorpusGenerator::stream`].
#[derive(Debug)]
pub struct CorpusStream {
    volumes: Vec<VolumeIter>,
    /// Peeked head of each volume stream.
    pending: Vec<Option<IoRequest>>,
}

impl Iterator for CorpusStream {
    type Item = IoRequest;

    fn next(&mut self) -> Option<IoRequest> {
        let mut best: Option<(usize, Timestamp)> = None;
        for i in 0..self.volumes.len() {
            if self.pending[i].is_none() {
                self.pending[i] = self.volumes[i].next();
            }
            if let Some(req) = &self.pending[i] {
                if best.map_or(true, |(_, ts)| req.ts() < ts) {
                    best = Some((i, req.ts()));
                }
            }
        }
        best.and_then(|(i, _)| self.pending[i].take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DailyRewrite;
    use crate::size::SizeModel;
    use crate::spatial::SpatialModel;
    use cbs_trace::VolumeId;

    const MIB: u64 = 1 << 20;

    fn profile(id: u32, seed: u64) -> VolumeProfile {
        VolumeProfile {
            id: VolumeId::new(id),
            capacity_bytes: 1024 * MIB,
            live_start: Timestamp::ZERO,
            live_end: Timestamp::from_hours(4),
            write_fraction: 0.75,
            arrival: crate::arrival::ArrivalModel::steady(2.0),
            read_spatial: SpatialModel::uniform(512 * MIB, 128 * MIB),
            write_spatial: SpatialModel::uniform(0, 64 * MIB),
            read_size: SizeModel::small_reads(),
            write_size: SizeModel::small_writes(),
            daily_rewrite: None,
            seed,
        }
    }

    #[test]
    fn stream_is_sorted_and_windowed() {
        let reqs = VolumeGenerator::new(profile(3, 1))
            .expect("valid profile")
            .generate();
        assert!(!reqs.is_empty());
        assert!(reqs.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        assert!(reqs.iter().all(|r| r.ts() < Timestamp::from_hours(4)));
        assert!(reqs.iter().all(|r| r.volume() == VolumeId::new(3)));
    }

    #[test]
    fn write_fraction_is_respected() {
        let reqs = VolumeGenerator::new(profile(0, 2))
            .expect("valid profile")
            .generate();
        let writes = reqs.iter().filter(|r| r.is_write()).count();
        let frac = writes as f64 / reqs.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn reads_and_writes_target_their_regions() {
        let reqs = VolumeGenerator::new(profile(0, 3))
            .expect("valid profile")
            .generate();
        for r in &reqs {
            if r.is_write() {
                assert!(r.end_offset() <= 64 * MIB, "{r}");
            } else {
                assert!(
                    r.offset() >= 512 * MIB && r.end_offset() <= 640 * MIB,
                    "{r}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = VolumeGenerator::new(profile(0, 42))
            .expect("valid profile")
            .generate();
        let b = VolumeGenerator::new(profile(0, 42))
            .expect("valid profile")
            .generate();
        assert_eq!(a, b);
        let c = VolumeGenerator::new(profile(0, 43))
            .expect("valid profile")
            .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn daily_rewrite_runs_every_day() {
        let mut p = profile(0, 4);
        p.live_end = Timestamp::from_days(3);
        p.write_fraction = 1.0;
        p.daily_rewrite = Some(DailyRewrite {
            at_hour: 2.0,
            region_start: 900 * MIB,
            region_len: MIB,
            request_size: 64 * 1024,
            gap_us: 500,
        });
        let reqs = VolumeGenerator::new(p).expect("valid profile").generate();
        let job_reqs: Vec<_> = reqs
            .iter()
            .filter(|r| r.offset() >= 900 * MIB && r.offset() < 901 * MIB)
            .collect();
        // 3 full days × 16 requests per run
        assert_eq!(job_reqs.len(), 3 * 16);
        // each run covers the whole region sequentially
        let day0: Vec<_> = job_reqs
            .iter()
            .filter(|r| r.ts().day_index() == 0)
            .collect();
        assert_eq!(day0.len(), 16);
        assert!(day0.windows(2).all(|w| w[1].offset() == w[0].end_offset()));
        // runs are 24h apart on the same blocks
        let first_of_day: Vec<_> = job_reqs
            .iter()
            .filter(|r| r.offset() == 900 * MIB)
            .collect();
        assert_eq!(first_of_day.len(), 3);
        let gap = first_of_day[1].ts() - first_of_day[0].ts();
        assert_eq!(gap, TimeDelta::from_hours(24));
        // the merged stream stays sorted
        assert!(reqs.windows(2).all(|w| w[0].ts() <= w[1].ts()));
    }

    #[test]
    fn corpus_combines_volumes() {
        let corpus = CorpusGenerator::new(vec![profile(0, 1), profile(1, 2), profile(7, 3)])
            .expect("valid profiles");
        assert_eq!(corpus.profiles().len(), 3);
        let trace = corpus.generate();
        assert_eq!(trace.volume_count(), 3);
        let ids: Vec<u32> = trace.volume_ids().map(|v| v.get()).collect();
        assert_eq!(ids, vec![0, 1, 7]);
        // per-volume generation matches the combined trace
        let v7 = corpus.generate_volume(2).expect("in range");
        assert_eq!(
            trace.volume(VolumeId::new(7)).unwrap().requests(),
            v7.as_slice()
        );
        assert_eq!(corpus.generate_volume(3), None);
    }

    #[test]
    fn iter_matches_generate_exactly() {
        // The lazy stream must replicate the batch output bit-for-bit:
        // plain profile, background-free profile, and a profile with
        // daily rewrites (exercising the three-way merge).
        for seed in [1, 7, 42, 31] {
            let plain = profile(2, seed);
            let mut no_bg = profile(3, seed);
            no_bg.arrival.background_fraction = 0.0;
            let mut rewriting = profile(4, seed);
            rewriting.live_end = Timestamp::from_days(2);
            rewriting.daily_rewrite = Some(DailyRewrite {
                at_hour: 1.0,
                region_start: 800 * MIB,
                region_len: MIB,
                request_size: 128 * 1024,
                gap_us: 250,
            });
            for p in [plain, no_bg, rewriting] {
                let generator = VolumeGenerator::new(p).expect("valid profile");
                let eager = generator.generate();
                let lazy: Vec<IoRequest> = generator.iter().collect();
                assert_eq!(eager, lazy, "seed {seed}");
            }
        }
    }

    #[test]
    fn iter_matches_generate_with_overlapping_rewrite_runs() {
        // A rewrite run long enough to cross the next day's run start:
        // the batch path handles this via a stable sort, the lazy path
        // via run-priority merging — they must still agree.
        let mut p = profile(5, 9);
        p.live_end = Timestamp::from_days(3);
        p.daily_rewrite = Some(DailyRewrite {
            at_hour: 23.5,
            region_start: 700 * MIB,
            region_len: 4 * MIB,
            request_size: 4096,
            // 1024 requests/run × 2s gap ≈ 34 min > the 30 min left in
            // the day, so each run spills into the next day.
            gap_us: 2_000_000,
        });
        let generator = VolumeGenerator::new(p).expect("valid profile");
        let eager = generator.generate();
        let lazy: Vec<IoRequest> = generator.iter().collect();
        assert_eq!(eager, lazy);
    }

    #[test]
    fn corpus_stream_matches_generate() {
        let corpus = CorpusGenerator::new(vec![profile(0, 1), profile(1, 2), profile(7, 3)])
            .expect("valid profiles");
        let trace = corpus.generate();
        let streamed: Vec<IoRequest> = corpus.stream().collect();
        assert_eq!(streamed.len(), trace.request_count());
        // Globally time-ordered...
        assert!(streamed.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        // ...first element carries the batch trace's epoch...
        assert_eq!(streamed[0].ts(), trace.start().unwrap());
        // ...and rebuilding a trace from the stream reproduces the
        // batch trace exactly (volume-major layout included).
        let rebuilt = cbs_trace::Trace::from_requests(streamed);
        assert_eq!(rebuilt.requests(), trace.requests());
    }

    #[test]
    fn rejects_invalid_profile() {
        let mut p = profile(0, 1);
        p.write_fraction = 2.0;
        let err = VolumeGenerator::new(p.clone()).unwrap_err();
        assert!(err.message().contains("write_fraction"), "{err}");
        let err = CorpusGenerator::new(vec![profile(1, 1), p]).unwrap_err();
        assert!(err.message().contains("volume vol-0"), "{err}");
    }
}
