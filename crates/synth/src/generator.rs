//! Trace generation from profiles: [`VolumeGenerator`] and
//! [`CorpusGenerator`].

use cbs_trace::{IoRequest, OpKind, TimeDelta, Timestamp, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::arrival::ArrivalGen;
use crate::dist::Exponential;
use crate::profile::VolumeProfile;
use crate::spatial::AddressGen;

/// Steady Poisson stream of single-request arrivals — the background
/// ("heartbeat") component of a volume's traffic.
#[derive(Debug)]
struct BackgroundGen {
    rng: SmallRng,
    gap: Exponential,
    next_ts: Timestamp,
    end: Timestamp,
}

impl BackgroundGen {
    fn new(rate_rps: f64, start: Timestamp, end: Timestamp, mut rng: SmallRng) -> Option<Self> {
        let gap = Exponential::new(rate_rps)?;
        let first = start + TimeDelta::from_secs_f64(gap.sample(&mut rng).min(1e9));
        Some(BackgroundGen {
            rng,
            gap,
            next_ts: first,
            end,
        })
    }
}

impl Iterator for BackgroundGen {
    type Item = Timestamp;

    fn next(&mut self) -> Option<Timestamp> {
        if self.next_ts >= self.end {
            return None;
        }
        let ts = self.next_ts;
        let delta = TimeDelta::from_secs_f64(self.gap.sample(&mut self.rng).min(1e9));
        self.next_ts = self.next_ts.checked_add(delta).unwrap_or(Timestamp::MAX);
        Some(ts)
    }
}

/// Merges two sorted timestamp streams.
fn merge_sorted(a: Vec<Timestamp>, b: Vec<Timestamp>) -> Vec<Timestamp> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Generates one volume's time-sorted request stream from its profile.
#[derive(Debug)]
pub struct VolumeGenerator {
    profile: VolumeProfile,
}

impl VolumeGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`VolumeProfile::validate`].
    pub fn new(profile: VolumeProfile) -> Self {
        if let Err(e) = profile.validate() {
            panic!("invalid volume profile for {}: {e}", profile.id);
        }
        VolumeGenerator { profile }
    }

    /// The profile being generated.
    pub fn profile(&self) -> &VolumeProfile {
        &self.profile
    }

    /// Generates the volume's full request stream, sorted by timestamp.
    pub fn generate(&self) -> Vec<IoRequest> {
        let p = &self.profile;
        let mut rng = SmallRng::seed_from_u64(p.seed);
        let arrival_rng = SmallRng::seed_from_u64(rng.gen());
        let mut read_addr = AddressGen::new(p.read_spatial.clone());
        let mut write_addr = AddressGen::new(p.write_spatial.clone());

        let mut requests: Vec<IoRequest> = Vec::new();
        let burst_times: Vec<Timestamp> =
            ArrivalGen::new(&p.arrival, p.live_start, p.live_end, arrival_rng).collect();
        let bg_rate = p.arrival.avg_rate_rps * p.arrival.background_fraction;
        let background: Vec<Timestamp> = if bg_rate > 0.0 {
            BackgroundGen::new(
                bg_rate,
                p.live_start,
                p.live_end,
                SmallRng::seed_from_u64(rng.gen()),
            )
            .map(Iterator::collect)
            .unwrap_or_default()
        } else {
            Vec::new()
        };
        let arrivals = merge_sorted(burst_times, background);
        for ts in arrivals {
            let is_write = rng.gen::<f64>() < p.write_fraction;
            let (op, size, addr) = if is_write {
                (OpKind::Write, p.write_size.sample(&mut rng), &mut write_addr)
            } else {
                (OpKind::Read, p.read_size.sample(&mut rng), &mut read_addr)
            };
            let offset = addr.next_offset(&mut rng, size);
            requests.push(IoRequest::new(p.id, op, offset, size, ts));
        }

        if let Some(job) = &p.daily_rewrite {
            let mut job_requests = self.generate_daily_rewrites(job);
            requests.append(&mut job_requests);
            requests.sort_by_key(IoRequest::ts);
        }
        requests
    }

    /// Emits the daily sequential rewrite runs that fall inside the
    /// live window.
    fn generate_daily_rewrites(&self, job: &crate::profile::DailyRewrite) -> Vec<IoRequest> {
        let p = &self.profile;
        let mut out = Vec::new();
        let first_day = p.live_start.day_index();
        let last_day = p.live_end.day_index();
        for day in first_day..=last_day {
            let start_us = day * cbs_trace::time::MICROS_PER_DAY
                + (job.at_hour * cbs_trace::time::MICROS_PER_HOUR as f64) as u64;
            let mut ts = Timestamp::from_micros(start_us);
            if ts < p.live_start {
                continue;
            }
            let mut offset = job.region_start;
            let end = job.region_start + job.region_len;
            while offset < end && ts < p.live_end {
                let len = u32::try_from((end - offset).min(u64::from(job.request_size)))
                    .expect("request_size fits u32");
                out.push(IoRequest::new(p.id, OpKind::Write, offset, len, ts));
                offset += u64::from(len);
                ts = ts + TimeDelta::from_micros(job.gap_us);
            }
        }
        out
    }
}

/// Generates a whole corpus from a set of profiles.
#[derive(Debug)]
pub struct CorpusGenerator {
    profiles: Vec<VolumeProfile>,
}

impl CorpusGenerator {
    /// Creates a generator over `profiles`.
    ///
    /// # Panics
    ///
    /// Panics if any profile fails validation.
    pub fn new(profiles: Vec<VolumeProfile>) -> Self {
        for p in &profiles {
            if let Err(e) = p.validate() {
                panic!("invalid volume profile for {}: {e}", p.id);
            }
        }
        CorpusGenerator { profiles }
    }

    /// The profiles in the corpus.
    pub fn profiles(&self) -> &[VolumeProfile] {
        &self.profiles
    }

    /// Generates the full corpus trace.
    pub fn generate(&self) -> Trace {
        let mut all: Vec<IoRequest> = Vec::new();
        for profile in &self.profiles {
            all.extend(VolumeGenerator::new(profile.clone()).generate());
        }
        Trace::from_requests(all)
    }

    /// Generates only the volume at `index` (for incremental /
    /// parallel drivers).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn generate_volume(&self, index: usize) -> Vec<IoRequest> {
        VolumeGenerator::new(self.profiles[index].clone()).generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DailyRewrite;
    use crate::size::SizeModel;
    use crate::spatial::SpatialModel;
    use cbs_trace::VolumeId;

    const MIB: u64 = 1 << 20;

    fn profile(id: u32, seed: u64) -> VolumeProfile {
        VolumeProfile {
            id: VolumeId::new(id),
            capacity_bytes: 1024 * MIB,
            live_start: Timestamp::ZERO,
            live_end: Timestamp::from_hours(4),
            write_fraction: 0.75,
            arrival: crate::arrival::ArrivalModel::steady(2.0),
            read_spatial: SpatialModel::uniform(512 * MIB, 128 * MIB),
            write_spatial: SpatialModel::uniform(0, 64 * MIB),
            read_size: SizeModel::small_reads(),
            write_size: SizeModel::small_writes(),
            daily_rewrite: None,
            seed,
        }
    }

    #[test]
    fn stream_is_sorted_and_windowed() {
        let reqs = VolumeGenerator::new(profile(3, 1)).generate();
        assert!(!reqs.is_empty());
        assert!(reqs.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        assert!(reqs.iter().all(|r| r.ts() < Timestamp::from_hours(4)));
        assert!(reqs.iter().all(|r| r.volume() == VolumeId::new(3)));
    }

    #[test]
    fn write_fraction_is_respected() {
        let reqs = VolumeGenerator::new(profile(0, 2)).generate();
        let writes = reqs.iter().filter(|r| r.is_write()).count();
        let frac = writes as f64 / reqs.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn reads_and_writes_target_their_regions() {
        let reqs = VolumeGenerator::new(profile(0, 3)).generate();
        for r in &reqs {
            if r.is_write() {
                assert!(r.end_offset() <= 64 * MIB, "{r}");
            } else {
                assert!(r.offset() >= 512 * MIB && r.end_offset() <= 640 * MIB, "{r}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = VolumeGenerator::new(profile(0, 42)).generate();
        let b = VolumeGenerator::new(profile(0, 42)).generate();
        assert_eq!(a, b);
        let c = VolumeGenerator::new(profile(0, 43)).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn daily_rewrite_runs_every_day() {
        let mut p = profile(0, 4);
        p.live_end = Timestamp::from_days(3);
        p.write_fraction = 1.0;
        p.daily_rewrite = Some(DailyRewrite {
            at_hour: 2.0,
            region_start: 900 * MIB,
            region_len: MIB,
            request_size: 64 * 1024,
            gap_us: 500,
        });
        let reqs = VolumeGenerator::new(p).generate();
        let job_reqs: Vec<_> = reqs
            .iter()
            .filter(|r| r.offset() >= 900 * MIB && r.offset() < 901 * MIB)
            .collect();
        // 3 full days × 16 requests per run
        assert_eq!(job_reqs.len(), 3 * 16);
        // each run covers the whole region sequentially
        let day0: Vec<_> = job_reqs
            .iter()
            .filter(|r| r.ts().day_index() == 0)
            .collect();
        assert_eq!(day0.len(), 16);
        assert!(day0.windows(2).all(|w| w[1].offset() == w[0].end_offset()));
        // runs are 24h apart on the same blocks
        let first_of_day: Vec<_> = job_reqs
            .iter()
            .filter(|r| r.offset() == 900 * MIB)
            .collect();
        assert_eq!(first_of_day.len(), 3);
        let gap = first_of_day[1].ts() - first_of_day[0].ts();
        assert_eq!(gap, TimeDelta::from_hours(24));
        // the merged stream stays sorted
        assert!(reqs.windows(2).all(|w| w[0].ts() <= w[1].ts()));
    }

    #[test]
    fn corpus_combines_volumes() {
        let corpus = CorpusGenerator::new(vec![profile(0, 1), profile(1, 2), profile(7, 3)]);
        assert_eq!(corpus.profiles().len(), 3);
        let trace = corpus.generate();
        assert_eq!(trace.volume_count(), 3);
        let ids: Vec<u32> = trace.volume_ids().map(|v| v.get()).collect();
        assert_eq!(ids, vec![0, 1, 7]);
        // per-volume generation matches the combined trace
        let v7 = corpus.generate_volume(2);
        assert_eq!(
            trace.volume(VolumeId::new(7)).unwrap().requests(),
            v7.as_slice()
        );
    }

    #[test]
    #[should_panic(expected = "invalid volume profile")]
    fn rejects_invalid_profile() {
        let mut p = profile(0, 1);
        p.write_fraction = 2.0;
        let _ = VolumeGenerator::new(p);
    }
}
