//! Spatial (address) models: [`SpatialModel`] and [`AddressGen`].
//!
//! Each generated access picks its start offset from a three-way
//! mixture over a configurable *region* of the volume's address space:
//!
//! * **sequential** — continue from the previous access's end offset
//!   (wrapping within the region); keeps the offset delta small, so the
//!   paper's randomness metric (min distance to the previous 32 offsets
//!   vs. a 128 KiB threshold, Finding 8) classifies it as non-random;
//! * **hot** — a Zipf-weighted draw from a small hot set of blocks;
//!   spatially scattered (counts as random) but heavily aggregated,
//!   which is exactly the paper's combination of Finding 8 (high
//!   randomness) with Finding 9 (traffic aggregates in the top 1-10 %
//!   of blocks);
//! * **uniform** — a uniform draw over the whole region (random and
//!   unaggregated).
//!
//! The region's *size relative to the op count* controls how often
//! blocks are revisited, which drives update coverage (Finding 11) and
//! WAW/update-interval behaviour (Findings 12, 14). Overlap between the
//! read and write regions of a volume controls the read-mostly /
//! write-mostly block split (Finding 10).

use cbs_trace::BlockSize;
use rand::Rng;

use crate::dist::Zipf;
use crate::error::InvalidProfile;

/// Parameters of one op-kind's address generator over a region.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialModel {
    /// First byte of the region within the volume.
    pub region_start: u64,
    /// Region length in bytes (the working-set ceiling for this op).
    pub region_len: u64,
    /// Probability of continuing the current sequential run.
    pub seq_prob: f64,
    /// Probability (after losing the sequential coin flip) of drawing
    /// from the hot set instead of uniformly.
    pub hot_prob: f64,
    /// Hot-set size as a fraction of the region's blocks, in `(0, 1]`.
    pub hot_fraction: f64,
    /// Zipf exponent over the hot set (0 = uniform within the hot set).
    pub hot_zipf_s: f64,
    /// Block unit used to align generated offsets.
    pub block_size: BlockSize,
}

impl SpatialModel {
    /// A uniform-random model over `[region_start, region_start + len)`.
    pub fn uniform(region_start: u64, region_len: u64) -> Self {
        SpatialModel {
            region_start,
            region_len,
            seq_prob: 0.0,
            hot_prob: 0.0,
            hot_fraction: 0.01,
            hot_zipf_s: 0.0,
            block_size: BlockSize::DEFAULT,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let bs = u64::from(self.block_size.bytes());
        if self.region_len < bs {
            return Err(format!(
                "region_len must hold at least one block ({} B), got {}",
                bs, self.region_len
            ));
        }
        for (name, p) in [("seq_prob", self.seq_prob), ("hot_prob", self.hot_prob)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        if !(self.hot_fraction > 0.0 && self.hot_fraction <= 1.0) {
            return Err(format!(
                "hot_fraction must be in (0,1], got {}",
                self.hot_fraction
            ));
        }
        if !self.hot_zipf_s.is_finite() || self.hot_zipf_s < 0.0 {
            return Err(format!("hot_zipf_s must be >= 0, got {}", self.hot_zipf_s));
        }
        Ok(())
    }

    /// Number of whole blocks in the region.
    pub fn region_blocks(&self) -> u64 {
        self.region_len / u64::from(self.block_size.bytes())
    }

    /// First byte past the region.
    pub fn region_end(&self) -> u64 {
        self.region_start + self.region_len
    }
}

/// Stateful offset generator for one op kind of one volume.
#[derive(Debug)]
pub struct AddressGen {
    model: SpatialModel,
    hot_blocks: u64,
    zipf: Zipf,
    /// Next sequential offset (end of the previous sequential access).
    cursor: u64,
    /// Multiplicative hash stride decorrelating hot ranks from block
    /// positions, so the hot set is scattered across the region.
    hot_stride: u64,
}

impl AddressGen {
    /// Creates a generator.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProfile`] if the model fails
    /// [`SpatialModel::validate`].
    pub fn new(model: SpatialModel) -> Result<Self, InvalidProfile> {
        model
            .validate()
            .map_err(|e| InvalidProfile(format!("spatial model: {e}")))?;
        let region_blocks = model.region_blocks();
        let hot_blocks =
            ((region_blocks as f64 * model.hot_fraction).ceil() as u64).clamp(1, region_blocks);
        // min against MAX_N keeps the cast lossless
        let zipf_n = hot_blocks.min(Zipf::MAX_N as u64) as usize;
        let zipf = Zipf::new(zipf_n, model.hot_zipf_s)
            .ok_or_else(|| InvalidProfile("spatial model: hot-set Zipf".to_owned()))?;
        let cursor = model.region_start;
        Ok(AddressGen {
            model,
            hot_blocks,
            zipf,
            cursor,
            // odd multiplier → bijection over Z_{2^64}, keeps hot blocks
            // deterministic but spread out
            hot_stride: 0x9E37_79B9_7F4A_7C15,
        })
    }

    /// The model in use.
    pub fn model(&self) -> &SpatialModel {
        &self.model
    }

    /// Number of blocks in the hot set.
    pub fn hot_blocks(&self) -> u64 {
        self.hot_blocks
    }

    /// Maps a hot rank to a block index within the region.
    fn hot_rank_to_block(&self, rank: u64) -> u64 {
        (rank.wrapping_mul(self.hot_stride)) % self.model.region_blocks()
    }

    /// Draws the start offset for an access of `len` bytes.
    ///
    /// The returned offset is block-aligned and the access
    /// `[offset, offset + len)` stays inside the region (the offset is
    /// clamped back for lengths that would overhang the region end).
    pub fn next_offset<R: Rng + ?Sized>(&mut self, rng: &mut R, len: u32) -> u64 {
        let bs = u64::from(self.model.block_size.bytes());
        let region_blocks = self.model.region_blocks();
        let len_blocks = u64::from(len).div_ceil(bs);

        let offset = if rng.gen::<f64>() < self.model.seq_prob {
            // continue the run; wrap to region start when past the end
            let mut o = self.cursor;
            if o + u64::from(len) > self.model.region_end() {
                o = self.model.region_start;
            }
            o
        } else if rng.gen::<f64>() < self.model.hot_prob {
            let rank = self.zipf.sample(rng) as u64;
            let block = self.hot_rank_to_block(rank);
            self.model.region_start + block * bs
        } else {
            let max_block = region_blocks.saturating_sub(len_blocks).max(1);
            let block = rng.gen_range(0..max_block);
            self.model.region_start + block * bs
        };

        // clamp overhanging accesses back into the region
        let offset = if offset + u64::from(len) > self.model.region_end() {
            self.model
                .region_end()
                .saturating_sub(u64::from(len).max(bs))
                .max(self.model.region_start)
        } else {
            offset
        };
        // re-align after clamping
        let offset = self.model.region_start + (offset - self.model.region_start) / bs * bs;
        self.cursor = offset + u64::from(len);
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const MIB: u64 = 1 << 20;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn offsets_stay_in_region_and_aligned() {
        let model = SpatialModel {
            region_start: 10 * MIB,
            region_len: 64 * MIB,
            seq_prob: 0.5,
            hot_prob: 0.5,
            hot_fraction: 0.02,
            hot_zipf_s: 1.0,
            block_size: BlockSize::DEFAULT,
        };
        let mut gen = AddressGen::new(model.clone()).expect("valid model");
        let mut r = rng();
        for _ in 0..20_000 {
            let len = 4096 * (1 + (r.gen::<u32>() % 16));
            let off = gen.next_offset(&mut r, len);
            assert!(off >= model.region_start);
            assert!(
                off + u64::from(len) <= model.region_end(),
                "off={off} len={len}"
            );
            assert_eq!((off - model.region_start) % 4096, 0);
        }
    }

    #[test]
    fn pure_sequential_walks_forward() {
        let model = SpatialModel {
            region_start: 0,
            region_len: 16 * MIB,
            seq_prob: 1.0,
            hot_prob: 0.0,
            hot_fraction: 0.01,
            hot_zipf_s: 0.0,
            block_size: BlockSize::DEFAULT,
        };
        let mut gen = AddressGen::new(model).expect("valid model");
        let mut r = rng();
        let mut prev_end = 0u64;
        for i in 0..100 {
            let off = gen.next_offset(&mut r, 8192);
            if i > 0 {
                assert_eq!(off, prev_end, "sequential continuation");
            }
            prev_end = off + 8192;
        }
    }

    #[test]
    fn sequential_wraps_at_region_end() {
        let model = SpatialModel {
            region_start: 4096,
            region_len: 8 * 4096,
            seq_prob: 1.0,
            hot_prob: 0.0,
            hot_fraction: 0.5,
            hot_zipf_s: 0.0,
            block_size: BlockSize::DEFAULT,
        };
        let mut gen = AddressGen::new(model.clone()).expect("valid model");
        let mut r = rng();
        let offs: Vec<u64> = (0..20).map(|_| gen.next_offset(&mut r, 4096)).collect();
        assert!(offs
            .iter()
            .all(|&o| o >= 4096 && o + 4096 <= model.region_end()));
        // the run must wrap (more accesses than blocks in region)
        assert!(offs.iter().filter(|&&o| o == 4096).count() >= 2);
    }

    #[test]
    fn hot_traffic_aggregates() {
        let model = SpatialModel {
            region_start: 0,
            region_len: 256 * MIB, // 65536 blocks
            seq_prob: 0.0,
            hot_prob: 1.0,
            hot_fraction: 0.01, // 656 hot blocks
            hot_zipf_s: 1.1,
            block_size: BlockSize::DEFAULT,
        };
        let mut gen = AddressGen::new(model).expect("valid model");
        let mut r = rng();
        let mut counts = std::collections::HashMap::<u64, u64>::new();
        let n = 50_000;
        for _ in 0..n {
            *counts.entry(gen.next_offset(&mut r, 4096)).or_default() += 1;
        }
        // traffic touches at most the hot set
        assert!(counts.len() as u64 <= gen.hot_blocks() + 1);
        // top-10% of touched blocks carry most traffic (Zipf 1.1)
        let mut traffic: Vec<u64> = counts.values().copied().collect();
        traffic.sort_unstable_by(|a, b| b.cmp(a));
        let top10pct: u64 = traffic[..traffic.len().div_ceil(10)].iter().sum();
        assert!(
            top10pct as f64 / n as f64 > 0.3,
            "top-10% share {}",
            top10pct as f64 / n as f64
        );
    }

    #[test]
    fn uniform_covers_region() {
        let model = SpatialModel::uniform(0, 4 * MIB); // 1024 blocks
        let mut gen = AddressGen::new(model).expect("valid model");
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            seen.insert(gen.next_offset(&mut r, 4096));
        }
        assert!(seen.len() > 900, "covered {} of 1024 blocks", seen.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let model = SpatialModel {
            region_start: 0,
            region_len: MIB,
            seq_prob: 0.3,
            hot_prob: 0.4,
            hot_fraction: 0.05,
            hot_zipf_s: 0.8,
            block_size: BlockSize::DEFAULT,
        };
        let run = |seed| {
            let mut gen = AddressGen::new(model.clone()).expect("valid model");
            let mut r = SmallRng::seed_from_u64(seed);
            (0..100)
                .map(|_| gen.next_offset(&mut r, 4096))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn rejects_tiny_region() {
        let err = AddressGen::new(SpatialModel::uniform(0, 100)).unwrap_err();
        assert!(err.message().contains("region_len"), "{err}");
    }

    #[test]
    fn validate_names_offending_field() {
        let mut m = SpatialModel::uniform(0, MIB);
        m.seq_prob = 2.0;
        assert!(m.validate().unwrap_err().contains("seq_prob"));
        let mut m = SpatialModel::uniform(0, MIB);
        m.hot_fraction = 0.0;
        assert!(m.validate().unwrap_err().contains("hot_fraction"));
        let mut m = SpatialModel::uniform(0, MIB);
        m.hot_zipf_s = -0.5;
        assert!(m.validate().unwrap_err().contains("hot_zipf_s"));
    }

    #[test]
    fn region_block_math() {
        let m = SpatialModel::uniform(4096, 10 * 4096);
        assert_eq!(m.region_blocks(), 10);
        assert_eq!(m.region_end(), 11 * 4096);
    }
}
