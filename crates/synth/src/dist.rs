//! Self-contained distribution samplers.
//!
//! Implemented here rather than pulling `rand_distr`: the generator is a
//! substrate this reproduction is expected to own, the set needed is
//! small, and each sampler is property-tested against its analytic
//! moments. All samplers draw from any [`rand::Rng`].

use rand::Rng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// # Example
///
/// ```
/// use cbs_synth::dist::Exponential;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let exp = Exponential::new(2.0).unwrap();
/// let x = exp.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates the distribution; `None` unless `lambda` is finite and
    /// positive.
    pub fn new(lambda: f64) -> Option<Self> {
        (lambda.is_finite() && lambda > 0.0).then_some(Exponential { lambda })
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The mean (`1/lambda`).
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Draws one sample (inverse transform).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Uniform in (0, 1]: avoid ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }
}

/// Standard normal via Box–Muller (one value per call; the pair's twin
/// is discarded for simplicity — samplers here are not hot paths).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Log-normal distribution: `exp(mu + sigma · N(0,1))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution; `None` unless `mu` is finite and
    /// `sigma` is finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Option<Self> {
        (mu.is_finite() && sigma.is_finite() && sigma >= 0.0).then_some(LogNormal { mu, sigma })
    }

    /// Creates the distribution from its median (`exp(mu)`) and sigma.
    ///
    /// The median parameterization reads naturally when calibrating to
    /// reported medians ("median average intensity 2.55 req/s").
    pub fn from_median(median: f64, sigma: f64) -> Option<Self> {
        (median > 0.0)
            .then(|| Self::new(median.ln(), sigma))
            .flatten()
    }

    /// The median (`exp(mu)`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Zipf distribution over ranks `0..n` (rank 0 is the hottest), with
/// exponent `s ≥ 0` (s = 0 degenerates to uniform).
///
/// Uses an exact precomputed inverse CDF — hot sets in this workbench
/// are small (at most a few hundred thousand blocks), where exactness
/// beats rejection sampling in both simplicity and speed.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k]` = P(rank ≤ k).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Maximum supported support size.
    pub const MAX_N: usize = 1 << 22;

    /// Creates the distribution; `None` if `n` is 0 or exceeds
    /// [`Self::MAX_N`], or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Option<Self> {
        if n == 0 || n > Self::MAX_N || !s.is_finite() || s < 0.0 {
            return None;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Some(Zipf { cdf })
    }

    /// The support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Geometric distribution on `{1, 2, ...}` with success probability `p`
/// (mean `1/p`) — burst sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates the distribution; `None` unless `0 < p <= 1`.
    pub fn new(p: f64) -> Option<Self> {
        (p > 0.0 && p <= 1.0).then_some(Geometric { p })
    }

    /// Creates a geometric with the given mean (`p = 1/mean`).
    ///
    /// Means below 1 are clamped to 1 (a burst has at least one
    /// request).
    pub fn from_mean(mean: f64) -> Option<Self> {
        if !mean.is_finite() {
            return None;
        }
        Self::new((1.0 / mean.max(1.0)).min(1.0))
    }

    /// The mean (`1/p`).
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draws one sample ≥ 1 (inverse transform).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        let k = (u.ln() / (1.0 - self.p).ln()).floor() as u64 + 1;
        k.max(1)
    }
}

/// Bounded Pareto (power-law) distribution on `[min, max]` with shape
/// `alpha` — heavy-tailed sizes and durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    min: f64,
    max: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates the distribution; `None` unless
    /// `0 < min < max` and `alpha > 0`.
    pub fn new(min: f64, max: f64, alpha: f64) -> Option<Self> {
        (min > 0.0 && max > min && alpha > 0.0 && alpha.is_finite()).then_some(BoundedPareto {
            min,
            max,
            alpha,
        })
    }

    /// Draws one sample in `[min, max]` (inverse transform).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let (l, h, a) = (self.min, self.max, self.alpha);
        let la = l.powf(a);
        let ha = h.powf(a);
        // inverse CDF of the bounded Pareto
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a)
    }
}

/// A discrete distribution over arbitrary items with explicit weights.
///
/// # Example
///
/// ```
/// use cbs_synth::dist::Discrete;
/// use rand::SeedableRng;
///
/// let sizes = Discrete::new(vec![(4096u32, 0.7), (65536, 0.3)]).unwrap();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
/// let s = *sizes.sample(&mut rng);
/// assert!(s == 4096 || s == 65536);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete<T> {
    items: Vec<T>,
    cdf: Vec<f64>,
}

impl<T> Discrete<T> {
    /// Creates the distribution; `None` if `weighted` is empty or any
    /// weight is negative/non-finite or all weights are zero.
    pub fn new(weighted: Vec<(T, f64)>) -> Option<Self> {
        if weighted.is_empty() {
            return None;
        }
        let mut items = Vec::with_capacity(weighted.len());
        let mut cdf = Vec::with_capacity(weighted.len());
        let mut acc = 0.0;
        for (item, w) in weighted {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            acc += w;
            items.push(item);
            cdf.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Some(Discrete { items, cdf })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if there are no items (never: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Draws one item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &T {
        let u: f64 = rng.gen();
        let idx = self
            .cdf
            .partition_point(|&c| c < u)
            .min(self.items.len() - 1);
        &self.items[idx]
    }
}

/// Samples log-uniformly from `[lo, hi]` — the natural spread for
/// parameters spanning orders of magnitude (volume capacities,
/// ON-fractions).
///
/// # Panics
///
/// Panics unless `0 < lo <= hi`.
pub fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi >= lo, "log_uniform requires 0 < lo <= hi");
    let u: f64 = rng.gen();
    (lo.ln() + u * (hi.ln() - lo.ln())).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let exp = Exponential::new(0.5).unwrap();
        assert_eq!(exp.lambda(), 0.5);
        assert_eq!(exp.mean(), 2.0);
        let samples: Vec<f64> = (0..20_000).map(|_| exp.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x >= 0.0));
        assert!((mean_of(&samples) - 2.0).abs() < 0.1);
    }

    #[test]
    fn exponential_rejects_bad_lambda() {
        assert!(Exponential::new(0.0).is_none());
        assert!(Exponential::new(-1.0).is_none());
        assert!(Exponential::new(f64::NAN).is_none());
        assert!(Exponential::new(f64::INFINITY).is_none());
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut r)).collect();
        let mean = mean_of(&samples);
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng();
        let ln = LogNormal::from_median(2.55, 1.0).unwrap();
        assert!((ln.median() - 2.55).abs() < 1e-12);
        let mut samples: Vec<f64> = (0..20_001).map(|_| ln.sample(&mut r)).collect();
        samples.sort_by(f64::total_cmp);
        let med = samples[samples.len() / 2];
        assert!((med - 2.55).abs() < 0.15, "med={med}");
    }

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_none());
        assert!(LogNormal::new(0.0, -1.0).is_none());
        assert!(LogNormal::from_median(0.0, 1.0).is_none());
        assert!(LogNormal::from_median(-2.0, 1.0).is_none());
    }

    #[test]
    fn zipf_rank_zero_is_hottest() {
        let mut r = rng();
        let z = Zipf::new(100, 1.0).unwrap();
        assert_eq!(z.n(), 100);
        let mut counts = vec![0u64; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // rank-0 share for Zipf(1.0, n=100) ≈ 1/H_100 ≈ 0.193
        let share0 = counts[0] as f64 / 50_000.0;
        assert!((share0 - 0.193).abs() < 0.02, "share0={share0}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let mut r = rng();
        let z = Zipf::new(10, 0.0).unwrap();
        let mut counts = vec![0u64; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 20_000.0;
            assert!((frac - 0.1).abs() < 0.02, "frac={frac}");
        }
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(10, -1.0).is_none());
        assert!(Zipf::new(10, f64::NAN).is_none());
        assert!(Zipf::new(Zipf::MAX_N + 1, 1.0).is_none());
    }

    #[test]
    fn geometric_mean_and_support() {
        let mut r = rng();
        let g = Geometric::from_mean(20.0).unwrap();
        assert!((g.mean() - 20.0).abs() < 1e-9);
        let samples: Vec<f64> = (0..20_000).map(|_| g.sample(&mut r) as f64).collect();
        assert!(samples.iter().all(|&x| x >= 1.0));
        assert!((mean_of(&samples) - 20.0).abs() < 0.6);
    }

    #[test]
    fn geometric_mean_one_is_constant() {
        let mut r = rng();
        let g = Geometric::from_mean(0.5).unwrap(); // clamped to 1
        for _ in 0..100 {
            assert_eq!(g.sample(&mut r), 1);
        }
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let mut r = rng();
        let p = BoundedPareto::new(1.0, 1000.0, 1.2).unwrap();
        for _ in 0..10_000 {
            let x = p.sample(&mut r);
            assert!((1.0..=1000.0 + 1e-9).contains(&x), "x={x}");
        }
    }

    #[test]
    fn bounded_pareto_rejects_bad_params() {
        assert!(BoundedPareto::new(0.0, 10.0, 1.0).is_none());
        assert!(BoundedPareto::new(10.0, 10.0, 1.0).is_none());
        assert!(BoundedPareto::new(1.0, 10.0, 0.0).is_none());
    }

    #[test]
    fn discrete_respects_weights() {
        let mut r = rng();
        let d = Discrete::new(vec![("a", 3.0), ("b", 1.0)]).unwrap();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        let mut a = 0;
        for _ in 0..20_000 {
            if *d.sample(&mut r) == "a" {
                a += 1;
            }
        }
        let frac = a as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn discrete_zero_weight_item_never_sampled() {
        let mut r = rng();
        let d = Discrete::new(vec![(1, 1.0), (2, 0.0)]).unwrap();
        for _ in 0..1000 {
            assert_eq!(*d.sample(&mut r), 1);
        }
    }

    #[test]
    fn discrete_rejects_bad_weights() {
        assert!(Discrete::<u8>::new(vec![]).is_none());
        assert!(Discrete::new(vec![(1, -1.0)]).is_none());
        assert!(Discrete::new(vec![(1, 0.0)]).is_none());
        assert!(Discrete::new(vec![(1, f64::NAN)]).is_none());
    }

    #[test]
    fn log_uniform_range_and_spread() {
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000)
            .map(|_| log_uniform(&mut r, 1.0, 10_000.0))
            .collect();
        assert!(samples.iter().all(|&x| (1.0..=10_000.0).contains(&x)));
        // median of log-uniform [1, 10^4] is 10^2
        let mut s = samples.clone();
        s.sort_by(f64::total_cmp);
        let med = s[s.len() / 2];
        assert!((med.log10() - 2.0).abs() < 0.1, "med={med}");
    }

    #[test]
    #[should_panic(expected = "log_uniform")]
    fn log_uniform_rejects_bad_range() {
        let _ = log_uniform(&mut rng(), 0.0, 1.0);
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let sample_all = |seed: u64| {
            let mut r = SmallRng::seed_from_u64(seed);
            let e = Exponential::new(1.0).unwrap().sample(&mut r);
            let l = LogNormal::new(0.0, 1.0).unwrap().sample(&mut r);
            let z = Zipf::new(50, 1.0).unwrap().sample(&mut r);
            let g = Geometric::new(0.25).unwrap().sample(&mut r);
            (e, l, z, g)
        };
        assert_eq!(sample_all(7), sample_all(7));
        assert_ne!(sample_all(7), sample_all(8));
    }
}
