//! Request-size models: [`SizeModel`].
//!
//! Both corpora are dominated by small requests (Fig. 2: 75 % of
//! AliCloud reads ≤ 32 KiB, writes ≤ 16 KiB), with a thin tail of large
//! transfers. A discrete mixture over aligned sizes captures that shape
//! and keeps every generated request block-aligned.

use rand::Rng;

use crate::dist::Discrete;

/// One KiB in bytes.
pub const KIB: u32 = 1024;

/// A weighted mixture over fixed request sizes (bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct SizeModel {
    dist: Discrete<u32>,
    max_size: u32,
}

impl SizeModel {
    /// Creates a model from `(size_bytes, weight)` pairs.
    ///
    /// Returns `None` if the table is empty, any size is zero, or the
    /// weights are invalid (negative / non-finite / all zero).
    pub fn new(weighted: Vec<(u32, f64)>) -> Option<Self> {
        if weighted.iter().any(|&(s, _)| s == 0) {
            return None;
        }
        let max_size = weighted.iter().map(|&(s, _)| s).max()?;
        Some(SizeModel {
            dist: Discrete::new(weighted)?,
            max_size,
        })
    }

    /// Builds a preset from a compile-time table.
    fn preset(table: Vec<(u32, f64)>) -> Self {
        match SizeModel::new(table) {
            Some(model) => model,
            // cbs-lint: allow(no-panic-in-lib) -- preset tables are compile-time constants with nonzero sizes and positive weights
            None => unreachable!("static size table rejected"),
        }
    }

    /// The small-I/O mixture typical of AliCloud-like *writes*
    /// (75th percentile ≈ 16 KiB).
    pub fn small_writes() -> Self {
        SizeModel::preset(vec![
            (4 * KIB, 0.45),
            (8 * KIB, 0.20),
            (16 * KIB, 0.15),
            (32 * KIB, 0.10),
            (64 * KIB, 0.06),
            (128 * KIB, 0.03),
            (512 * KIB, 0.01),
        ])
    }

    /// The small-I/O mixture typical of AliCloud-like *reads*
    /// (75th percentile ≈ 32 KiB).
    pub fn small_reads() -> Self {
        SizeModel::preset(vec![
            (4 * KIB, 0.35),
            (8 * KIB, 0.18),
            (16 * KIB, 0.17),
            (32 * KIB, 0.14),
            (64 * KIB, 0.10),
            (128 * KIB, 0.04),
            (512 * KIB, 0.02),
        ])
    }

    /// A larger sequential-transfer mixture (media/backup style,
    /// 75th percentile ≈ 64 KiB) used by some MSRC-like volumes.
    pub fn bulk() -> Self {
        SizeModel::preset(vec![
            (8 * KIB, 0.15),
            (16 * KIB, 0.20),
            (32 * KIB, 0.20),
            (64 * KIB, 0.25),
            (128 * KIB, 0.12),
            (256 * KIB, 0.06),
            (1024 * KIB, 0.02),
        ])
    }

    /// The largest size the model can emit.
    pub fn max_size(&self) -> u32 {
        self.max_size
    }

    /// Draws one request size in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        *self.dist.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn percentile(model: &SizeModel, p: f64) -> u32 {
        let mut r = rng();
        let mut samples: Vec<u32> = (0..20_000).map(|_| model.sample(&mut r)).collect();
        samples.sort_unstable();
        samples[(samples.len() as f64 * p) as usize]
    }

    #[test]
    fn presets_hit_paper_quartiles() {
        // Fig. 2(a): 75% of AliCloud writes ≤ 16 KiB, reads ≤ 32 KiB.
        assert!(percentile(&SizeModel::small_writes(), 0.75) <= 16 * KIB);
        assert!(percentile(&SizeModel::small_reads(), 0.75) <= 32 * KIB);
        // MSRC reads skew bigger (75% ≤ 64 KiB).
        assert!(percentile(&SizeModel::bulk(), 0.75) <= 64 * KIB);
        assert!(percentile(&SizeModel::bulk(), 0.5) >= 16 * KIB);
    }

    #[test]
    fn samples_come_from_the_table() {
        let model = SizeModel::new(vec![(4096, 1.0), (8192, 1.0)]).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            let s = model.sample(&mut r);
            assert!(s == 4096 || s == 8192);
        }
        assert_eq!(model.max_size(), 8192);
    }

    #[test]
    fn rejects_invalid_tables() {
        assert!(SizeModel::new(vec![]).is_none());
        assert!(SizeModel::new(vec![(0, 1.0)]).is_none());
        assert!(SizeModel::new(vec![(4096, -1.0)]).is_none());
        assert!(SizeModel::new(vec![(4096, 0.0)]).is_none());
    }

    #[test]
    fn weights_shape_the_distribution() {
        let model = SizeModel::new(vec![(4096, 9.0), (65536, 1.0)]).unwrap();
        let mut r = rng();
        let small = (0..10_000).filter(|_| model.sample(&mut r) == 4096).count();
        let frac = small as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac={frac}");
    }
}
