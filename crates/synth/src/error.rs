//! The crate's construction error: [`InvalidProfile`].

use std::fmt;

/// A workload model or profile was rejected by validation.
///
/// Returned by the fallible constructors ([`crate::generator::VolumeGenerator::new`],
/// [`crate::generator::CorpusGenerator::new`], [`crate::arrival::ArrivalGen::new`],
/// [`crate::spatial::AddressGen::new`]); the message names the first
/// offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidProfile(pub(crate) String);

impl InvalidProfile {
    /// The human-readable rejection reason.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for InvalidProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload profile: {}", self.0)
    }
}

impl std::error::Error for InvalidProfile {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_reason() {
        let e = InvalidProfile("write_fraction out of range".to_owned());
        assert_eq!(e.message(), "write_fraction out of range");
        assert_eq!(
            e.to_string(),
            "invalid workload profile: write_fraction out of range"
        );
    }
}
