//! Per-volume workload description: [`VolumeProfile`].

use cbs_trace::{Timestamp, VolumeId};

use crate::arrival::ArrivalModel;
use crate::size::SizeModel;
use crate::spatial::SpatialModel;

/// Everything needed to generate one volume's request stream.
///
/// A profile is *pure data*: two volumes with equal profiles (including
/// `seed`) generate identical streams. Presets build profiles by
/// sampling class mixtures; custom workloads can construct them
/// directly.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeProfile {
    /// The volume's id in the generated trace.
    pub id: VolumeId,
    /// Raw capacity in bytes (regions must fit inside).
    pub capacity_bytes: u64,
    /// First instant the volume may issue requests.
    pub live_start: Timestamp,
    /// End of the live window (exclusive).
    pub live_end: Timestamp,
    /// Probability that a request is a write.
    pub write_fraction: f64,
    /// The arrival process.
    pub arrival: ArrivalModel,
    /// Address model for reads.
    pub read_spatial: SpatialModel,
    /// Address model for writes.
    pub write_spatial: SpatialModel,
    /// Request-size model for reads.
    pub read_size: SizeModel,
    /// Request-size model for writes.
    pub write_size: SizeModel,
    /// Optional daily sequential rewrite job (the MSRC `src1_0`
    /// source-control pattern behind Finding 14's bimodal update
    /// intervals).
    pub daily_rewrite: Option<DailyRewrite>,
    /// Per-volume RNG seed (presets derive it from the corpus seed and
    /// the volume index).
    pub seed: u64,
}

impl VolumeProfile {
    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.live_start >= self.live_end {
            return Err(format!(
                "live window is empty: {} >= {}",
                self.live_start, self.live_end
            ));
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err(format!(
                "write_fraction must be in [0,1], got {}",
                self.write_fraction
            ));
        }
        self.arrival
            .validate()
            .map_err(|e| format!("arrival: {e}"))?;
        self.read_spatial
            .validate()
            .map_err(|e| format!("read_spatial: {e}"))?;
        self.write_spatial
            .validate()
            .map_err(|e| format!("write_spatial: {e}"))?;
        for (name, m) in [
            ("read_spatial", &self.read_spatial),
            ("write_spatial", &self.write_spatial),
        ] {
            if m.region_end() > self.capacity_bytes {
                return Err(format!(
                    "{name} region [{}, {}) exceeds capacity {}",
                    m.region_start,
                    m.region_end(),
                    self.capacity_bytes
                ));
            }
        }
        if let Some(job) = &self.daily_rewrite {
            job.validate().map_err(|e| format!("daily_rewrite: {e}"))?;
            if job.region_start + job.region_len > self.capacity_bytes {
                return Err("daily_rewrite region exceeds capacity".to_owned());
            }
        }
        Ok(())
    }

    /// Expected number of requests over the live window (rate × span).
    pub fn expected_requests(&self) -> f64 {
        let span = (self.live_end - self.live_start).as_secs_f64();
        self.arrival.avg_rate_rps * span
    }
}

/// A daily sequential rewrite of a fixed region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DailyRewrite {
    /// Hour of day (0-24) the job starts.
    pub at_hour: f64,
    /// First byte of the rewritten region.
    pub region_start: u64,
    /// Region length in bytes.
    pub region_len: u64,
    /// Size of each sequential write request, bytes.
    pub request_size: u32,
    /// Gap between consecutive job requests, microseconds.
    pub gap_us: u64,
}

impl DailyRewrite {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..24.0).contains(&self.at_hour) {
            return Err(format!("at_hour must be in [0,24), got {}", self.at_hour));
        }
        if self.request_size == 0 {
            return Err("request_size must be non-zero".to_owned());
        }
        if self.region_len < u64::from(self.request_size) {
            return Err(format!(
                "region_len {} smaller than one request ({})",
                self.region_len, self.request_size
            ));
        }
        if self.gap_us == 0 {
            return Err("gap_us must be non-zero".to_owned());
        }
        Ok(())
    }

    /// Number of write requests one job run issues.
    pub fn requests_per_run(&self) -> u64 {
        self.region_len.div_ceil(u64::from(self.request_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::SizeModel;
    use crate::spatial::SpatialModel;

    pub(crate) fn small_profile(id: u32, seed: u64) -> VolumeProfile {
        const MIB: u64 = 1 << 20;
        VolumeProfile {
            id: VolumeId::new(id),
            capacity_bytes: 1024 * MIB,
            live_start: Timestamp::ZERO,
            live_end: Timestamp::from_hours(6),
            write_fraction: 0.8,
            arrival: ArrivalModel::steady(2.0),
            read_spatial: SpatialModel::uniform(512 * MIB, 128 * MIB),
            write_spatial: SpatialModel::uniform(0, 64 * MIB),
            read_size: SizeModel::small_reads(),
            write_size: SizeModel::small_writes(),
            daily_rewrite: None,
            seed,
        }
    }

    #[test]
    fn valid_profile_passes() {
        assert_eq!(small_profile(0, 1).validate(), Ok(()));
    }

    #[test]
    fn expected_requests_is_rate_times_span() {
        let p = small_profile(0, 1);
        assert!((p.expected_requests() - 2.0 * 6.0 * 3600.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_empty_window() {
        let mut p = small_profile(0, 1);
        p.live_end = p.live_start;
        assert!(p.validate().unwrap_err().contains("live window"));
    }

    #[test]
    fn rejects_bad_write_fraction() {
        let mut p = small_profile(0, 1);
        p.write_fraction = 1.5;
        assert!(p.validate().unwrap_err().contains("write_fraction"));
    }

    #[test]
    fn rejects_region_past_capacity() {
        let mut p = small_profile(0, 1);
        p.capacity_bytes = 1 << 20;
        let err = p.validate().unwrap_err();
        assert!(err.contains("exceeds capacity"), "{err}");
    }

    #[test]
    fn rejects_invalid_nested_models() {
        let mut p = small_profile(0, 1);
        p.arrival.avg_rate_rps = 0.0;
        assert!(p.validate().unwrap_err().starts_with("arrival:"));
        let mut p = small_profile(0, 1);
        p.read_spatial.seq_prob = 7.0;
        assert!(p.validate().unwrap_err().starts_with("read_spatial:"));
    }

    #[test]
    fn daily_rewrite_validation() {
        let ok = DailyRewrite {
            at_hour: 2.0,
            region_start: 0,
            region_len: 1 << 20,
            request_size: 16384,
            gap_us: 200,
        };
        assert_eq!(ok.validate(), Ok(()));
        assert_eq!(ok.requests_per_run(), 64);

        let mut bad = ok;
        bad.at_hour = 24.0;
        assert!(bad.validate().unwrap_err().contains("at_hour"));
        let mut bad = ok;
        bad.request_size = 0;
        assert!(bad.validate().unwrap_err().contains("request_size"));
        let mut bad = ok;
        bad.region_len = 100;
        assert!(bad.validate().unwrap_err().contains("region_len"));
        let mut bad = ok;
        bad.gap_us = 0;
        assert!(bad.validate().unwrap_err().contains("gap_us"));
    }

    #[test]
    fn daily_rewrite_region_checked_against_capacity() {
        let mut p = small_profile(0, 1);
        p.daily_rewrite = Some(DailyRewrite {
            at_hour: 1.0,
            region_start: p.capacity_bytes - 4096,
            region_len: 1 << 20,
            request_size: 16384,
            gap_us: 100,
        });
        assert!(p.validate().unwrap_err().contains("daily_rewrite"));
    }
}
