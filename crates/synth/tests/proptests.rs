//! Property-based tests for the synthetic workload generator.

use proptest::prelude::*;

use cbs_synth::arrival::ArrivalModel;
use cbs_synth::generator::VolumeGenerator;
use cbs_synth::presets::{self, CorpusConfig};
use cbs_synth::profile::VolumeProfile;
use cbs_synth::size::SizeModel;
use cbs_synth::spatial::SpatialModel;
use cbs_trace::{Timestamp, VolumeId};

const MIB: u64 = 1 << 20;

prop_compose! {
    /// A random-but-valid volume profile.
    fn arb_profile()(
        seed in 0u64..10_000,
        rate in 0.05f64..5.0,
        write_fraction in 0.0f64..=1.0,
        hours in 1u64..12,
        on_fraction in 0.005f64..=1.0,
        burst in 1.0f64..50.0,
        seq in 0.0f64..=1.0,
        hot in 0.0f64..=1.0,
        bg in 0.0f64..0.6,
        write_mib in 8u64..256,
        read_mib in 8u64..256,
        read_start_mib in 0u64..512,
    ) -> VolumeProfile {
        VolumeProfile {
            id: VolumeId::new(7),
            capacity_bytes: 4096 * MIB,
            live_start: Timestamp::ZERO,
            live_end: Timestamp::from_hours(hours),
            write_fraction,
            arrival: ArrivalModel {
                avg_rate_rps: rate,
                on_fraction,
                mean_on_secs: 120.0,
                burst_size_mean: burst,
                intra_gap_median_us: 150.0,
                intra_gap_sigma: 1.0,
                diurnal_amplitude: 0.4,
                diurnal_phase: 1.0,
                background_fraction: bg,
            },
            read_spatial: SpatialModel {
                region_start: read_start_mib * MIB,
                region_len: read_mib * MIB,
                seq_prob: seq,
                hot_prob: hot,
                hot_fraction: 0.01,
                hot_zipf_s: 1.1,
                block_size: cbs_trace::BlockSize::DEFAULT,
            },
            write_spatial: SpatialModel {
                region_start: 1024 * MIB,
                region_len: write_mib * MIB,
                seq_prob: seq * 0.5,
                hot_prob: hot,
                hot_fraction: 0.01,
                hot_zipf_s: 1.2,
                block_size: cbs_trace::BlockSize::DEFAULT,
            },
            read_size: SizeModel::small_reads(),
            write_size: SizeModel::small_writes(),
            daily_rewrite: None,
            seed,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any valid profile generates a well-formed stream: time-sorted,
    /// inside the live window, inside the regions, correct volume id.
    #[test]
    fn generated_streams_are_well_formed(profile in arb_profile()) {
        prop_assert_eq!(profile.validate(), Ok(()));
        let reqs = VolumeGenerator::new(profile.clone()).expect("valid profile").generate();
        prop_assert!(reqs.windows(2).all(|w| w[0].ts() <= w[1].ts()), "sorted");
        for r in &reqs {
            prop_assert_eq!(r.volume(), profile.id);
            prop_assert!(r.ts() >= profile.live_start && r.ts() < profile.live_end);
            let spatial = if r.is_write() {
                &profile.write_spatial
            } else {
                &profile.read_spatial
            };
            prop_assert!(r.offset() >= spatial.region_start, "{r}");
            prop_assert!(r.end_offset() <= spatial.region_end(), "{r}");
            prop_assert!(!r.is_empty());
        }
    }

    /// The stream honours the write fraction (when enough requests).
    #[test]
    fn write_fraction_is_respected(profile in arb_profile()) {
        let reqs = VolumeGenerator::new(profile.clone()).expect("valid profile").generate();
        if reqs.len() >= 500 {
            let writes = reqs.iter().filter(|r| r.is_write()).count() as f64;
            let frac = writes / reqs.len() as f64;
            prop_assert!(
                (frac - profile.write_fraction).abs() < 0.08,
                "target {} got {frac}",
                profile.write_fraction
            );
        }
    }

    /// Identical profiles generate identical streams; different seeds
    /// differ (when the stream is non-trivial).
    #[test]
    fn generation_is_seed_deterministic(profile in arb_profile()) {
        let a = VolumeGenerator::new(profile.clone()).expect("valid profile").generate();
        let b = VolumeGenerator::new(profile.clone()).expect("valid profile").generate();
        prop_assert_eq!(&a, &b);
        let mut other = profile;
        other.seed ^= 0xDEAD_BEEF;
        let c = VolumeGenerator::new(other).expect("valid profile").generate();
        if a.len() > 20 {
            prop_assert_ne!(&a, &c);
        }
    }

    /// The long-run request rate tracks the configured average.
    #[test]
    fn average_rate_is_tracked(
        seed in 0u64..1000,
        rate in 0.5f64..8.0,
    ) {
        let mut profile = VolumeProfile {
            arrival: ArrivalModel {
                avg_rate_rps: rate,
                background_fraction: 0.3,
                ..ArrivalModel::steady(rate)
            },
            ..base_profile(seed)
        };
        profile.arrival.avg_rate_rps = rate;
        let reqs = VolumeGenerator::new(profile).expect("valid profile").generate();
        let measured = reqs.len() as f64 / (12.0 * 3600.0);
        prop_assert!(
            (measured - rate).abs() / rate < 0.35,
            "target {rate} got {measured}"
        );
    }

    /// Corpus presets always produce valid profiles for any seed and
    /// reasonable shape.
    #[test]
    fn presets_always_validate(
        seed in 0u64..5000,
        volumes in 1usize..30,
        days in 1u64..10,
    ) {
        let config = CorpusConfig::new(volumes, days, seed).with_intensity_scale(0.001);
        for p in presets::alicloud_like(&config).profiles() {
            prop_assert_eq!(p.validate(), Ok(()));
        }
        for p in presets::msrc_like(&config).profiles() {
            prop_assert_eq!(p.validate(), Ok(()));
        }
    }
}

fn base_profile(seed: u64) -> VolumeProfile {
    VolumeProfile {
        id: VolumeId::new(0),
        capacity_bytes: 4096 * MIB,
        live_start: Timestamp::ZERO,
        live_end: Timestamp::from_hours(12),
        write_fraction: 0.7,
        arrival: ArrivalModel::steady(1.0),
        read_spatial: SpatialModel::uniform(0, 64 * MIB),
        write_spatial: SpatialModel::uniform(1024 * MIB, 64 * MIB),
        read_size: SizeModel::small_reads(),
        write_size: SizeModel::small_writes(),
        daily_rewrite: None,
        seed,
    }
}
