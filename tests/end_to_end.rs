//! End-to-end integration: synthesize both corpora, run the full
//! characterization, and assert the *directional* findings of the paper
//! — the qualitative claims that must hold for any faithful
//! reproduction regardless of scale.

use cbs_core::prelude::*;
use cbs_core::Analysis;

fn analyze_alicloud() -> Analysis {
    let config = CorpusConfig::new(40, 4, 31).with_intensity_scale(0.003);
    let trace = cbs_synth::presets::alicloud_like(&config).generate();
    Workbench::new(trace).analyze()
}

fn analyze_msrc() -> Analysis {
    let config = CorpusConfig::new(36, 4, 31).with_intensity_scale(0.01);
    let trace = cbs_synth::presets::msrc_like(&config).generate();
    Workbench::new(trace).analyze()
}

#[test]
fn directional_findings_hold() {
    let ali = analyze_alicloud();
    let msrc = analyze_msrc();

    // --- Fig. 4 / §III-C: AliCloud is write-dominant, MSRC is not ---
    let ali_wr = ali.write_read_ratios();
    let msrc_wr = msrc.write_read_ratios();
    assert!(
        ali_wr.fraction_write_dominant() > 0.80,
        "AliCloud write-dominant fraction {}",
        ali_wr.fraction_write_dominant()
    );
    assert!(
        msrc_wr.fraction_write_dominant() < 0.75,
        "MSRC write-dominant fraction {}",
        msrc_wr.fraction_write_dominant()
    );
    assert!(
        ali_wr.fraction_above(100.0) > 0.25,
        "AliCloud W:R > 100 volumes"
    );
    // corpus-level: AliCloud's aggregate skews to writes much harder
    // than MSRC's (the absolute MSRC ratio is seed-noisy at 36
    // volumes, so only the comparative claim is asserted tightly)
    let ali_ratio = ali.totals().write_read_ratio().unwrap();
    let msrc_ratio = msrc.totals().write_read_ratio().unwrap();
    assert!(ali_ratio > 1.5, "ali corpus W:R {ali_ratio}");
    assert!(msrc_ratio < 1.5, "msrc corpus W:R {msrc_ratio}");
    assert!(
        ali_ratio > 2.0 * msrc_ratio,
        "ali {ali_ratio} vs msrc {msrc_ratio}"
    );

    // --- Table I: AliCloud read WSS is a small share; MSRC read WSS
    //     is nearly everything ---
    let ali_read_wss = ali.totals().read_wss_fraction().unwrap();
    let msrc_read_wss = msrc.totals().read_wss_fraction().unwrap();
    assert!(ali_read_wss < 0.6, "AliCloud read WSS share {ali_read_wss}");
    assert!(
        msrc_read_wss > ali_read_wss,
        "enterprise read WSS share exceeds cloud's: {msrc_read_wss} vs {ali_read_wss}"
    );
    assert!(msrc_read_wss > 0.6, "MSRC read WSS share {msrc_read_wss}");
    assert!(ali.totals().write_wss_fraction().unwrap() > 0.7);
    assert!(msrc.totals().write_wss_fraction().unwrap() < 0.5);

    // --- Finding 8: AliCloud is more random than MSRC ---
    let ali_rand = ali.randomness();
    let msrc_rand = msrc.randomness();
    assert!(
        ali_rand.max().unwrap() > msrc_rand.max().unwrap(),
        "randomness: ali max {} vs msrc max {}",
        ali_rand.max().unwrap(),
        msrc_rand.max().unwrap()
    );
    assert!(
        msrc_rand.fraction_above(0.6) < 0.15,
        "MSRC mostly non-random"
    );

    // --- Finding 11: AliCloud update coverage far exceeds MSRC ---
    let ali_cov = ali.update_coverage().median().unwrap();
    let msrc_cov = msrc.update_coverage().median().unwrap();
    assert!(
        ali_cov > msrc_cov + 0.2,
        "coverage: ali {ali_cov} vs msrc {msrc_cov}"
    );

    // --- Finding 12: WAW dominates RAW in AliCloud; they are of the
    //     same order in MSRC ---
    use cbs_analysis::findings::adjacency::PairKind;
    let ali_adj = ali.adjacency();
    let msrc_adj = msrc.adjacency();
    assert!(
        ali_adj.waw_to_raw_ratio().unwrap() > 3.0,
        "AliCloud WAW:RAW {}",
        ali_adj.waw_to_raw_ratio().unwrap()
    );
    assert!(
        msrc_adj.waw_to_raw_ratio().unwrap() < ali_adj.waw_to_raw_ratio().unwrap(),
        "MSRC WAW:RAW below AliCloud's"
    );
    // AliCloud: rewrites come sooner than read-backs; in both corpora
    // a substantial share of rewrites happens within the hour (the
    // paper's "small WAW time" — asserted as a fraction because the
    // absolute medians stretch with intensity scaling)
    let ali_raw = ali_adj.median(PairKind::Raw).unwrap();
    let ali_waw = ali_adj.median(PairKind::Waw).unwrap();
    assert!(
        ali_waw < ali_raw,
        "WAW median {ali_waw} >= RAW median {ali_raw}"
    );
    for (name, adj) in [("ali", &ali_adj), ("msrc", &msrc_adj)] {
        let short = adj.fraction_within(PairKind::Waw, cbs_trace::TimeDelta::from_hours(1));
        assert!(short > 0.2, "{name}: only {short} of WAW times under 1h");
    }

    // --- Finding 15: bigger caches help, and help AliCloud more ---
    let ali_lru = ali.lru_miss_ratios();
    let msrc_lru = msrc.lru_miss_ratios();
    assert!(ali_lru.mean_read_reduction().unwrap() > 0.0);
    assert!(ali_lru.mean_write_reduction().unwrap() > 0.0);
    assert!(msrc_lru.mean_read_reduction().unwrap() > 0.0);

    // --- Findings 5-7: writes drive activeness (the "Active" and
    //     "Write-active" curves nearly overlap in most intervals) ---
    for (name, analysis) in [("ali", &ali), ("msrc", &msrc)] {
        let series = analysis.activeness_series();
        let busy: Vec<(u32, u32)> = series
            .active
            .iter()
            .zip(&series.write_active)
            .filter(|(a, _)| **a > 0)
            .map(|(a, w)| (*a, *w))
            .collect();
        let close = busy.iter().filter(|(a, w)| w * 2 >= *a).count();
        assert!(
            close * 10 >= busy.len() * 8,
            "{name}: write-active >= half of active in only {close}/{} intervals",
            busy.len()
        );
    }
}

#[test]
fn scaling_invariance_of_ratio_metrics() {
    // Ratio-type metrics should be stable under intensity scaling: run
    // the same corpus shape at two scales and compare.
    let small = CorpusConfig::new(20, 3, 5).with_intensity_scale(0.002);
    let large = CorpusConfig::new(20, 3, 5).with_intensity_scale(0.004);
    let a = Workbench::new(cbs_synth::presets::alicloud_like(&small).generate()).analyze();
    let b = Workbench::new(cbs_synth::presets::alicloud_like(&large).generate()).analyze();

    let wd_a = a.write_read_ratios().fraction_write_dominant();
    let wd_b = b.write_read_ratios().fraction_write_dominant();
    assert!(
        (wd_a - wd_b).abs() < 0.15,
        "write dominance: {wd_a} vs {wd_b}"
    );

    let cov_a = a.update_coverage().median().unwrap();
    let cov_b = b.update_coverage().median().unwrap();
    assert!((cov_a - cov_b).abs() < 0.25, "coverage: {cov_a} vs {cov_b}");
}

#[test]
fn determinism_across_full_pipeline() {
    let run = || {
        let config = CorpusConfig::new(10, 2, 31).with_intensity_scale(0.002);
        let trace = cbs_synth::presets::alicloud_like(&config).generate();
        let analysis = Workbench::new(trace).analyze_with_threads(2);
        let t = analysis.totals();
        (
            t.reads,
            t.writes,
            t.total_wss_bytes,
            t.updated_bytes,
            analysis.metrics().len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn analysis_internal_consistency() {
    let analysis = analyze_alicloud();
    let totals = analysis.totals();
    let mut reads = 0;
    let mut writes = 0;
    for m in analysis.metrics() {
        reads += m.reads;
        writes += m.writes;
        // WSS component inequalities
        assert!(m.wss_update_blocks <= m.wss_write_blocks);
        assert!(m.wss_read_blocks <= m.wss_blocks);
        assert!(m.wss_write_blocks <= m.wss_blocks);
        assert!(m.wss_read_blocks + m.wss_write_blocks >= m.wss_blocks);
        // updated bytes cannot exceed written bytes
        assert!(m.updated_bytes <= m.write_bytes);
        // adjacency pair total = block accesses − cold blocks
        let pairs =
            m.raw_hist.total() + m.waw_hist.total() + m.rar_hist.total() + m.war_hist.total();
        let accesses = m.read_mrc.total_accesses() + m.write_mrc.total_accesses();
        assert_eq!(pairs, accesses - m.wss_blocks, "{}", m.id);
        // randomness ratio is a probability
        let r = m.randomness_ratio();
        assert!((0.0..=1.0).contains(&r));
    }
    assert_eq!(totals.reads, reads);
    assert_eq!(totals.writes, writes);
    assert_eq!(totals.requests() as usize, analysis.trace().request_count());
}
