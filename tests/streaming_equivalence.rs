//! Streaming ≡ batch: the sharded one-pass pipeline must produce
//! per-volume metrics identical to `Workbench::analyze`, whether the
//! records arrive from a lazy synthetic corpus stream or from the
//! parallel CSV decoder.

use cbs_core::prelude::*;
use cbs_trace::codec::alicloud::AliCloudWriter;
use cbs_trace::ParallelDecoder;

fn corpus() -> cbs_synth::CorpusGenerator {
    let config = CorpusConfig::new(24, 3, 11).with_intensity_scale(0.002);
    cbs_synth::presets::alicloud_like(&config)
}

#[test]
fn streaming_matches_batch_on_synthetic_corpus() {
    let generator = corpus();
    let batch = Workbench::new(generator.generate()).analyze();
    for shards in [1, 4] {
        let streaming = StreamingWorkbench::new()
            .with_shards(shards)
            .with_batch_size(1024)
            .analyze(generator.stream());
        assert_eq!(
            streaming,
            batch.metrics(),
            "streaming metrics diverge from batch at {shards} shards"
        );
    }
}

#[test]
fn streaming_matches_batch_through_parallel_decoder() {
    // Full pipeline: synthesize → serialize to AliCloud CSV → chunked
    // parallel decode → sharded streaming analysis, compared against
    // deserialize-everything → batch analysis.
    let generator = corpus();
    let mut csv = Vec::new();
    {
        let mut w = AliCloudWriter::new(&mut csv);
        for req in generator.stream() {
            w.write_request(&req).unwrap();
        }
    }

    let trace: Trace = cbs_trace::codec::alicloud::AliCloudReader::new(&csv[..])
        .collect::<Result<Vec<_>, _>>()
        .unwrap()
        .into_iter()
        .collect();
    let batch = Workbench::new(trace).analyze();

    let mut session = StreamingWorkbench::new().with_shards(3).start();
    let decoder = ParallelDecoder::new()
        .with_threads(4)
        .with_chunk_size(64 * 1024);
    let stats = decoder
        .decode_alicloud(&csv[..], |records| session.observe_batch(records))
        .unwrap();
    let streaming = session.finish();

    assert_eq!(stats.records, batch.trace().request_count() as u64);
    assert_eq!(streaming, batch.metrics());
}

#[test]
fn streaming_totals_match_batch_totals() {
    // Corpus-level findings derive from the metrics alone, so the
    // streamed metrics feed the same finding constructors.
    let generator = corpus();
    let batch = Workbench::new(generator.generate()).analyze();
    let streaming = StreamingWorkbench::new().analyze(generator.stream());

    let block = u64::from(batch.config().block_size.bytes());
    let batch_totals = batch.totals();
    let stream_totals = cbs_analysis::findings::basic::TraceTotals::from_metrics(&streaming, block);
    assert_eq!(batch_totals.reads, stream_totals.reads);
    assert_eq!(batch_totals.writes, stream_totals.writes);
    assert_eq!(batch_totals.total_wss_bytes, stream_totals.total_wss_bytes);
    assert_eq!(batch_totals.updated_bytes, stream_totals.updated_bytes);
}
