//! Integration: a synthetic corpus survives a round-trip through each
//! on-disk codec with identical analysis results.

use std::io::{BufReader, BufWriter};

use cbs_analysis::{analyze_trace, AnalysisConfig};
use cbs_core::prelude::*;
use cbs_trace::codec::alicloud::{AliCloudReader, AliCloudWriter};
use cbs_trace::codec::msrc::{MsrcReader, MsrcWriter};

fn corpus() -> Trace {
    let config = CorpusConfig::new(6, 1, 13).with_intensity_scale(0.002);
    cbs_synth::presets::alicloud_like(&config).generate()
}

#[test]
fn alicloud_codec_roundtrip_preserves_analysis() {
    let trace = corpus();
    let path = std::env::temp_dir().join("cbs_test_roundtrip.alicloud.csv");
    {
        let file = std::fs::File::create(&path).unwrap();
        let mut writer = AliCloudWriter::new(BufWriter::new(file));
        for req in trace.iter_time_ordered() {
            writer.write_request(&req).unwrap();
        }
        writer.into_inner().unwrap();
    }
    let reader = AliCloudReader::new(BufReader::new(std::fs::File::open(&path).unwrap()));
    let restored = Trace::from_records(reader).unwrap();
    std::fs::remove_file(&path).unwrap();

    assert_eq!(restored.request_count(), trace.request_count());
    assert_eq!(restored.volume_count(), trace.volume_count());

    // The analyses must be identical, not just the counts.
    let config = AnalysisConfig::default();
    let before = analyze_trace(&trace, &config).expect("valid config");
    let after = analyze_trace(&restored, &config).expect("valid config");
    assert_eq!(before.len(), after.len());
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(b.id, a.id);
        assert_eq!(b.reads, a.reads);
        assert_eq!(b.writes, a.writes);
        assert_eq!(b.read_bytes, a.read_bytes);
        assert_eq!(b.write_bytes, a.write_bytes);
        assert_eq!(b.wss_blocks, a.wss_blocks);
        assert_eq!(b.wss_update_blocks, a.wss_update_blocks);
        assert_eq!(b.random_requests, a.random_requests);
        assert_eq!(b.raw_hist, a.raw_hist);
        assert_eq!(b.waw_hist, a.waw_hist);
        assert_eq!(b.rar_hist, a.rar_hist);
        assert_eq!(b.war_hist, a.war_hist);
        assert_eq!(b.update_interval_hist, a.update_interval_hist);
        assert_eq!(b.interarrival_hist, a.interarrival_hist);
        assert_eq!(b.active_intervals, a.active_intervals);
        assert_eq!(b.peak_interval_requests, a.peak_interval_requests);
    }
}

#[test]
fn msrc_codec_roundtrip_preserves_requests() {
    let trace = corpus();
    let mut buf = Vec::new();
    {
        let mut writer = MsrcWriter::new(&mut buf);
        for req in trace.iter_time_ordered() {
            writer
                .write_record(&req, "host", req.volume().get(), TimeDelta::from_micros(50))
                .unwrap();
        }
    }
    let mut reader = MsrcReader::new(&buf[..]);
    let mut count = 0usize;
    let mut bytes = 0u64;
    for record in &mut reader {
        let record = record.unwrap();
        bytes += u64::from(record.request().len());
        assert_eq!(record.response_time(), TimeDelta::from_micros(50));
        count += 1;
    }
    assert_eq!(count, trace.request_count());
    let expected_bytes: u64 = trace.requests().iter().map(|r| u64::from(r.len())).sum();
    assert_eq!(bytes, expected_bytes);
    // every distinct volume got a registry entry
    assert_eq!(reader.into_registry().len(), trace.volume_count());
}

#[test]
fn corrupt_rows_are_reported_with_line_numbers() {
    let text = "419,W,0,4096,10\n419,BAD,0,4096,20\n419,R,0,4096,30\n";
    let results: Vec<_> = AliCloudReader::new(text.as_bytes()).collect();
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok());
    assert_eq!(results[1].as_ref().unwrap_err().line(), Some(2));
    assert!(results[2].is_ok(), "reader recovers after a bad row");
}
