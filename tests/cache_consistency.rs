//! Integration: the analyzer's reuse-distance-derived LRU miss ratios
//! (Finding 15) must agree *exactly* with an explicit LRU simulation —
//! two independent implementations of the same quantity.

use cbs_analysis::{analyze_trace, AnalysisConfig};
use cbs_cache::{CacheSim, Lru};
use cbs_core::prelude::*;

fn corpus() -> Trace {
    let config = CorpusConfig::new(8, 1, 21).with_intensity_scale(0.003);
    cbs_synth::presets::alicloud_like(&config).generate()
}

#[test]
fn mrc_predictions_match_explicit_lru_simulation() {
    let trace = corpus();
    let config = AnalysisConfig::default();
    let metrics = analyze_trace(&trace, &config).expect("valid config");

    let mut volumes_checked = 0;
    for m in &metrics {
        for fraction in [0.01, 0.10, 0.5] {
            let capacity = m.cache_blocks_for_fraction(fraction);
            // explicit simulation of the same unified cache
            let mut sim = CacheSim::new(Lru::new(capacity), config.block_size);
            sim.run(trace.volume(m.id).unwrap().requests());
            let stats = sim.stats();

            if let Some(predicted) = m.read_miss_ratio(fraction) {
                let simulated = stats.read_miss_ratio().unwrap();
                assert!(
                    (predicted - simulated).abs() < 1e-12,
                    "{} reads at {fraction}: mrc {predicted} vs sim {simulated}",
                    m.id
                );
            }
            if let Some(predicted) = m.write_miss_ratio(fraction) {
                let simulated = stats.write_miss_ratio().unwrap();
                assert!(
                    (predicted - simulated).abs() < 1e-12,
                    "{} writes at {fraction}: mrc {predicted} vs sim {simulated}",
                    m.id
                );
            }
        }
        volumes_checked += 1;
    }
    assert!(volumes_checked >= 6, "corpus produced enough volumes");
}

#[test]
fn alternative_policies_bound_lru_sensibly() {
    // On hot-set-heavy AliCloud-like volumes, ARC should be at least
    // competitive with FIFO, and all policies must produce valid
    // ratios. (Not a theorem for arbitrary traces — this corpus is
    // fixed and seeded.)
    let trace = corpus();
    let config = AnalysisConfig::default();
    let metrics = analyze_trace(&trace, &config).expect("valid config");
    let m = metrics
        .iter()
        .max_by_key(|m| m.requests())
        .expect("non-empty corpus");
    let capacity = m.cache_blocks_for_fraction(0.05).max(4);
    let requests = trace.volume(m.id).unwrap().requests();

    let run = |policy: &mut dyn FnMut() -> f64| policy();
    let mut simulate_lru = || {
        let mut sim = CacheSim::new(cbs_cache::Lru::new(capacity), config.block_size);
        sim.run(requests);
        sim.stats().overall_miss_ratio().unwrap()
    };
    let mut simulate_fifo = || {
        let mut sim = CacheSim::new(cbs_cache::Fifo::new(capacity), config.block_size);
        sim.run(requests);
        sim.stats().overall_miss_ratio().unwrap()
    };
    let mut simulate_arc = || {
        let mut sim = CacheSim::new(cbs_cache::Arc::new(capacity), config.block_size);
        sim.run(requests);
        sim.stats().overall_miss_ratio().unwrap()
    };
    let mut simulate_clock = || {
        let mut sim = CacheSim::new(cbs_cache::Clock::new(capacity), config.block_size);
        sim.run(requests);
        sim.stats().overall_miss_ratio().unwrap()
    };
    let lru = run(&mut simulate_lru);
    let fifo = run(&mut simulate_fifo);
    let arc = run(&mut simulate_arc);
    let clock = run(&mut simulate_clock);
    for (name, ratio) in [("lru", lru), ("fifo", fifo), ("arc", arc), ("clock", clock)] {
        assert!((0.0..=1.0).contains(&ratio), "{name} ratio {ratio}");
    }
    // CLOCK approximates LRU; they should be close on this workload
    assert!((clock - lru).abs() < 0.15, "clock {clock} vs lru {lru}");
    // ARC adapts; it should not be drastically worse than LRU here
    assert!(arc <= lru + 0.1, "arc {arc} vs lru {lru}");
}

#[test]
fn shards_approximates_exact_mrc_on_real_volume() {
    let trace = corpus();
    let config = AnalysisConfig::default();
    let view = trace.volumes().max_by_key(|v| v.len()).unwrap();

    let mut exact = cbs_cache::ReuseDistances::new();
    let mut sampled = cbs_cache::ShardsSampler::new(0.2);
    for req in view.requests() {
        for block in config.block_size.span_of(req) {
            exact.access(block);
            sampled.access(block);
        }
    }
    let exact_mrc = exact.to_mrc();
    let approx_mrc = sampled.to_mrc();
    let wss = exact.cold_misses() as usize;
    // compare at a few cache sizes: SHARDS should be within a few
    // points of the exact curve on a working set this large
    for fraction in [0.05, 0.1, 0.5] {
        let c = ((wss as f64 * fraction) as usize).max(1);
        let e = exact_mrc.miss_ratio_at(c);
        let a = approx_mrc.miss_ratio_at(c);
        assert!(
            (e - a).abs() < 0.12,
            "at {c} blocks: exact {e} vs shards {a}"
        );
    }
}
