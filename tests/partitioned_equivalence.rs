//! Partitioned ≡ sequential: [`PartitionedWorkbench`] at any worker
//! count must reproduce the inline (`workers = 0`) run bit-for-bit —
//! every per-volume record *and* every finding verdict — and a worker
//! panic must poison the whole run instead of yielding a partial
//! corpus (parity with `StreamingSession`). Also pins the
//! [`Analysis::merge`] monoid laws the `cbs-ctl` fold relies on
//! (associativity evidence for `cbs-lint`'s CBS-L13 `mergeable-audit`).

use proptest::prelude::*;

use cbs_core::prelude::*;

prop_compose! {
    /// One request over a small multi-volume corpus.
    fn arb_request()(
        vol in 0u32..5,
        op_bit in 0u8..2,
        block in 0u64..64,
        len_blocks in 1u32..4,
        ts in 0u64..(1 << 34),
    ) -> IoRequest {
        IoRequest::new(
            VolumeId::new(vol),
            if op_bit == 0 { OpKind::Read } else { OpKind::Write },
            block * 4096,
            len_blocks * 4096,
            Timestamp::from_micros(ts),
        )
    }
}

fn trace_from(mut reqs: Vec<IoRequest>) -> Trace {
    cbs_trace::iter::sort_by_time(&mut reqs);
    Trace::from_requests(reqs)
}

/// Every finding verdict of an analysis, as one deterministic string.
/// Two analyses with equal verdict dumps answer all 15 paper findings
/// identically.
fn verdicts(analysis: &cbs_core::Analysis) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        analysis.totals(),
        analysis.request_sizes(),
        analysis.mean_sizes(),
        analysis.active_days(),
        analysis.write_read_ratios(),
        analysis.overall_intensity(),
        analysis.burstiness(),
        analysis.interarrival_boxplots(),
        analysis.active_periods(),
        analysis.randomness(),
        analysis.aggregation(),
        analysis.rw_mostly(),
        analysis.update_coverage(),
        analysis.adjacency(),
        analysis.update_intervals(),
        analysis.lru_miss_ratios(),
        analysis.assessments(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any worker count reproduces the inline fallback exactly:
    /// identical metric records and identical finding verdicts.
    #[test]
    fn partitioned_matches_inline_at_any_worker_count(
        reqs in proptest::collection::vec(arb_request(), 1..400),
    ) {
        let trace = trace_from(reqs);
        let inline = PartitionedWorkbench::new().with_workers(0).analyze(trace.clone());
        for workers in [1usize, 2, 4, 8] {
            let parallel = PartitionedWorkbench::new()
                .with_workers(workers)
                .analyze(trace.clone());
            prop_assert_eq!(parallel.metrics(), inline.metrics(), "workers={}", workers);
            prop_assert_eq!(verdicts(&parallel), verdicts(&inline), "workers={}", workers);
        }
    }

    /// The inline fallback itself equals the sequential `Workbench`
    /// path, closing the chain: sequential == inline == partitioned.
    #[test]
    fn inline_fallback_matches_sequential_workbench(
        reqs in proptest::collection::vec(arb_request(), 1..400),
    ) {
        let trace = trace_from(reqs);
        let sequential = Workbench::new(trace.clone()).analyze_with_threads(1);
        let inline = PartitionedWorkbench::new().with_workers(0).analyze(trace);
        prop_assert_eq!(inline.metrics(), sequential.metrics());
        prop_assert_eq!(verdicts(&inline), verdicts(&sequential));
    }

    /// `Analysis::merge` is associative and commutative on disjoint
    /// volume partitions, with an empty analysis as identity — the law
    /// the `cbs-ctl` cross-process fold depends on.
    #[test]
    fn analysis_merge_is_associative(
        reqs in proptest::collection::vec(arb_request(), 3..300),
    ) {
        let trace = trace_from(reqs);
        // Partition the corpus by volume id residue into three
        // disjoint sub-corpora.
        let part = |r: u32| {
            trace_from(
                trace
                    .requests()
                    .iter()
                    .filter(|q| q.volume().get() % 3 == r)
                    .copied()
                    .collect(),
            )
        };
        let analyze = |t: &Trace| Workbench::new(t.clone()).analyze_with_threads(1);
        let (a, b, c) = (analyze(&part(0)), analyze(&part(1)), analyze(&part(2)));

        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        let mut right_tail = b.clone();
        right_tail.merge(c.clone());
        let mut right = a.clone();
        right.merge(right_tail);
        prop_assert_eq!(left.metrics(), right.metrics());
        prop_assert_eq!(verdicts(&left), verdicts(&right));

        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b.clone();
        ba.merge(a.clone());
        prop_assert_eq!(ab.metrics(), ba.metrics());

        let mut with_identity = a.clone();
        with_identity.merge(analyze(&Trace::new()));
        prop_assert_eq!(with_identity.metrics(), a.metrics());

        // The three-way fold equals the whole-corpus analysis when the
        // partials share the corpus epoch — the `cbs-ctl` contract
        // (the JOB frame ships the epoch so per-agent interval indices
        // align). Build each partition the way an agent does.
        let whole = analyze(&trace);
        let epoch = trace.start().unwrap_or(Timestamp::ZERO);
        let config = AnalysisConfig::default();
        let partial = |r: u32| {
            let sub = part(r);
            let metrics: Vec<VolumeMetrics> = sub
                .volumes()
                .map(|view| {
                    cbs_analysis::VolumeAnalyzer::analyze_volume(view, epoch, &config)
                        .expect("valid config")
                })
                .collect();
            cbs_core::Analysis::from_parts(sub, config.clone(), metrics).expect("valid config")
        };
        let mut folded = partial(0);
        folded.merge(partial(1));
        folded.merge(partial(2));
        prop_assert_eq!(folded.metrics(), whole.metrics());
        prop_assert_eq!(verdicts(&folded), verdicts(&whole));
    }
}

#[test]
fn scaling_curve_is_identical_on_synthetic_corpus() {
    // The bench-grade corpus: every workers value of the
    // `analyze_partitioned` scaling curve must report identical
    // verdicts (this is the property the BENCH_ingest.json phase
    // asserts at the full corpus scale).
    let config = CorpusConfig::new(16, 2, 23).with_intensity_scale(0.002);
    let trace = cbs_synth::presets::alicloud_like(&config).generate();
    let baseline = PartitionedWorkbench::new()
        .with_workers(1)
        .analyze(trace.clone());
    for workers in [2usize, 4, 8] {
        let run = PartitionedWorkbench::new()
            .with_workers(workers)
            .analyze(trace.clone());
        assert_eq!(run.metrics(), baseline.metrics(), "workers={workers}");
        assert_eq!(verdicts(&run), verdicts(&baseline), "workers={workers}");
    }
}

/// A worker panic mid-corpus must resurface on the caller — never a
/// partial `Analysis`. The trigger is a debug-build arithmetic
/// overflow inside the analyzer's block walk (an offset near
/// `u64::MAX`), the same trigger the streaming poison test uses.
#[cfg(debug_assertions)]
#[test]
fn worker_panic_poisons_the_partitioned_run() {
    let mut reqs: Vec<IoRequest> = (0..200u64)
        .map(|i| {
            IoRequest::new(
                VolumeId::new((i % 4) as u32),
                OpKind::Write,
                (i % 16) * 4096,
                4096,
                Timestamp::from_secs(i),
            )
        })
        .collect();
    // Poison pill on volume 2: end_offset = offset + len overflows u64.
    reqs.push(IoRequest::new(
        VolumeId::new(2),
        OpKind::Write,
        u64::MAX - 100,
        4096,
        Timestamp::from_secs(500),
    ));
    cbs_trace::iter::sort_by_time(&mut reqs);
    let trace = Trace::from_requests(reqs);
    for workers in [0usize, 1, 3] {
        let trace = trace.clone();
        let result = std::panic::catch_unwind(move || {
            PartitionedWorkbench::new()
                .with_workers(workers)
                .analyze(trace)
        });
        assert!(
            result.is_err(),
            "workers={workers} returned a partial analysis"
        );
    }
}
