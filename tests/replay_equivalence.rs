//! Replay ≡ analysis: a null-backend replay observed back into the
//! workbench must be *metric-identical* to analyzing the source trace
//! directly — replay changes when requests are issued, never what they
//! are. This is the end-to-end conservation law on top of the
//! per-request remap laws proptested in `crates/replay/tests`.

use cbs_core::prelude::*;
use cbs_replay::CbtSliceRequests;
use cbs_trace::{CbtSliceReader, CbtWriter};

/// A small mixed trace spanning ~40 ms so even recorded (×1) pacing
/// replays in well under a second.
fn short_trace() -> Trace {
    let reqs: Vec<IoRequest> = (0..600u64)
        .map(|i| {
            IoRequest::new(
                VolumeId::new((i % 7) as u32),
                if i % 3 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
                (i * 37 % 512) * 4096,
                ((i % 4) as u32 + 1) * 4096,
                Timestamp::from_micros(i * 66),
            )
        })
        .collect();
    Trace::from_requests(reqs)
}

fn analyze_requests(reqs: Vec<IoRequest>) -> Analysis {
    Workbench::new(Trace::from_requests(reqs)).analyze()
}

#[test]
fn recorded_x1_replay_matches_direct_analysis() {
    let trace = short_trace();
    let direct = Workbench::new(trace.clone()).analyze();

    let mut replayed = Vec::new();
    let mut replayer = Replayer::new(NullBackend::new()); // Timing::recorded() default
    let report = replayer
        .run_observed(trace.iter_time_ordered(), |req| replayed.push(req))
        .expect("null replay cannot fail");

    assert_eq!(report.requests, trace.request_count() as u64);
    assert!(
        report.wall_nanos >= report.offered_nanos,
        "recorded pacing must take at least the trace span"
    );

    let re = analyze_requests(replayed);
    assert_eq!(
        direct.metrics(),
        re.metrics(),
        "×1 replayed stream must re-analyze metric-identical"
    );
}

#[test]
fn x1000_replay_of_synthetic_corpus_matches_direct() {
    // A one-hour synthetic corpus compresses to ~3.6 s at ×1000.
    let config = CorpusConfig::new(6, 0, 17)
        .with_extra_hours(1)
        .with_intensity_scale(0.02);
    let generator = cbs_synth::presets::alicloud_like(&config);
    let direct = Workbench::new(generator.generate()).analyze();

    let mut replayed = Vec::new();
    let mut replayer = Replayer::new(NullBackend::new())
        .with_timing(Timing::multiplier(1000.0).expect("valid rate"));
    let report = replayer
        .run_observed(generator.stream(), |req| replayed.push(req))
        .expect("null replay cannot fail");

    assert_eq!(report.requests, direct.trace().request_count() as u64);
    let re = analyze_requests(replayed);
    assert_eq!(
        direct.metrics(),
        re.metrics(),
        "×1000 replayed corpus must re-analyze metric-identical"
    );
}

#[test]
fn replay_through_cbt_round_trip_matches_direct() {
    // Full pipeline: trace → CBT encode → zero-copy slice decode →
    // replay → re-analysis, against analyzing the original directly.
    let trace = short_trace();
    let direct = Workbench::new(trace.clone()).analyze();

    let mut encoded = Vec::new();
    let mut w = CbtWriter::new(&mut encoded);
    for req in trace.iter_time_ordered() {
        w.write_request(&req).expect("in-memory CBT write");
    }
    w.finish().expect("in-memory CBT finish");

    let mut replayed = Vec::new();
    let mut replayer = Replayer::new(MemBackend::new())
        .with_timing(Timing::multiplier(1000.0).expect("valid rate"));
    let source = CbtSliceRequests::new(CbtSliceReader::new(&encoded));
    let mut failed = false;
    let report = replayer
        .run_observed(
            source.map_while(|r| match r {
                Ok(req) => Some(req),
                Err(_) => {
                    failed = true;
                    None
                }
            }),
            |req| replayed.push(req),
        )
        .expect("mem replay cannot fail");
    assert!(!failed, "clean CBT stream must decode fully");
    assert_eq!(report.requests, trace.request_count() as u64);
    assert!(
        replayer.backend().page_count() > 0,
        "writes must materialize pages"
    );

    let re = analyze_requests(replayed);
    assert_eq!(direct.metrics(), re.metrics());
}

/// The lane counts every multi-lane law must hold at: an even split,
/// a larger even split, and a prime that never divides the volume
/// count evenly.
const LANE_COUNTS: [usize; 3] = [2, 4, 7];

#[test]
fn recorded_x1_lane_replay_matches_direct_analysis() {
    // The ×1 identity law survives sharding: the feeder observes the
    // post-remap stream in source order before fanning out, so the
    // re-analysis is lane-count-invariant.
    let trace = short_trace();
    let direct = Workbench::new(trace.clone()).analyze();

    for lanes in LANE_COUNTS {
        let mut replayed = Vec::new();
        let mut set = LaneSet::new(lanes, |_| NullBackend::new()); // recorded pacing default
        let multi = set
            .run_observed(trace.iter_time_ordered(), |req| replayed.push(req))
            .expect("null lane replay cannot fail");

        assert_eq!(multi.merged.requests, trace.request_count() as u64);
        assert!(
            multi.merged.wall_nanos >= multi.merged.offered_nanos,
            "recorded pacing must take at least the trace span at {lanes} lanes"
        );

        let re = analyze_requests(replayed);
        assert_eq!(
            direct.metrics(),
            re.metrics(),
            "×1 lane-replayed stream must re-analyze metric-identical at {lanes} lanes"
        );
    }
}

#[test]
fn x1000_lane_replay_of_synthetic_corpus_matches_direct() {
    // The ×1000 identity law at every lane count, over the same
    // corpus as the single-lane test above.
    let config = CorpusConfig::new(6, 0, 17)
        .with_extra_hours(1)
        .with_intensity_scale(0.02);
    let generator = cbs_synth::presets::alicloud_like(&config);
    let direct = Workbench::new(generator.generate()).analyze();

    for lanes in LANE_COUNTS {
        let mut replayed = Vec::new();
        let mut set = LaneSet::new(lanes, |_| NullBackend::new())
            .with_timing(Timing::multiplier(1000.0).expect("valid rate"));
        let multi = set
            .run_observed(generator.stream(), |req| replayed.push(req))
            .expect("null lane replay cannot fail");

        assert_eq!(multi.merged.requests, direct.trace().request_count() as u64);
        let re = analyze_requests(replayed);
        assert_eq!(
            direct.metrics(),
            re.metrics(),
            "×1000 lane-replayed corpus must re-analyze metric-identical at {lanes} lanes"
        );
    }
}

#[test]
fn lane_fan_out_then_merge_round_trips_metrics() {
    // fanout:3 ∘ merge:3 ≡ identity must survive sharding both
    // stages — remap happens centrally in the feeder, so routing can
    // never split one post-remap volume across lanes.
    let trace = short_trace();
    let direct = Workbench::new(trace.clone()).analyze();

    for lanes in LANE_COUNTS {
        let mut fanned = Vec::new();
        let mut set = LaneSet::new(lanes, |_| NullBackend::new())
            .with_timing(Timing::multiplier(1000.0).expect("valid rate"))
            .with_remap(Remap::fan_out(3).expect("nonzero factor"));
        set.run_observed(trace.iter_time_ordered(), |req| fanned.push(req))
            .expect("fan-out lane replay");

        let mut merged = Vec::new();
        let mut set = LaneSet::new(lanes, |_| NullBackend::new())
            .with_timing(Timing::multiplier(1000.0).expect("valid rate"))
            .with_remap(Remap::merge_into(3).expect("nonzero factor"));
        set.run_observed(fanned, |req| merged.push(req))
            .expect("merge lane replay");

        let re = analyze_requests(merged);
        assert_eq!(
            direct.metrics(),
            re.metrics(),
            "fanout:3 ∘ merge:3 must be the identity on metrics at {lanes} lanes"
        );
    }
}

#[test]
fn lane_mem_backend_state_is_deterministic() {
    // Mem-backend determinism: sticky per-volume routing makes the
    // union of the lane page stores equal the single-lane store, and
    // repeating the run reproduces it exactly.
    let trace = short_trace();

    let mut single = Replayer::new(MemBackend::new())
        .with_timing(Timing::multiplier(1000.0).expect("valid rate"));
    single
        .run(trace.iter_time_ordered())
        .expect("single-lane mem replay");
    let single_pages = single.backend().page_count();
    let single_bytes = single.backend().resident_bytes();
    assert!(single_pages > 0, "writes must materialize pages");

    for lanes in LANE_COUNTS {
        let mut seen = None;
        for _run in 0..2 {
            let mut set = LaneSet::new(lanes, |_| MemBackend::new())
                .with_timing(Timing::multiplier(1000.0).expect("valid rate"));
            set.run(trace.iter_time_ordered())
                .expect("multi-lane mem replay");
            let pages: usize = set.backends().iter().map(MemBackend::page_count).sum();
            let bytes: u64 = set.backends().iter().map(MemBackend::resident_bytes).sum();
            assert_eq!(
                (pages, bytes),
                (single_pages, single_bytes),
                "lane mem state must conserve the single-lane store at {lanes} lanes"
            );
            if let Some(prev) = seen {
                assert_eq!(
                    prev,
                    (pages, bytes),
                    "repeat runs must be deterministic at {lanes} lanes"
                );
            }
            seen = Some((pages, bytes));
        }
    }
}

#[test]
fn fan_out_then_merge_round_trips_metrics() {
    // fanout:n relocates volume v's requests onto v*n..v*n+n and
    // merge:n folds them straight back — the composition is the
    // identity on every per-volume metric.
    let trace = short_trace();
    let direct = Workbench::new(trace.clone()).analyze();

    let mut fanned = Vec::new();
    let mut replayer = Replayer::new(NullBackend::new())
        .with_timing(Timing::multiplier(1000.0).expect("valid rate"))
        .with_remap(Remap::fan_out(3).expect("nonzero factor"));
    replayer
        .run_observed(trace.iter_time_ordered(), |req| fanned.push(req))
        .expect("fan-out replay");

    let mut merged = Vec::new();
    let mut replayer = Replayer::new(NullBackend::new())
        .with_timing(Timing::multiplier(1000.0).expect("valid rate"))
        .with_remap(Remap::merge_into(3).expect("nonzero factor"));
    replayer
        .run_observed(fanned, |req| merged.push(req))
        .expect("merge replay");

    let re = analyze_requests(merged);
    assert_eq!(
        direct.metrics(),
        re.metrics(),
        "fanout:3 ∘ merge:3 must be the identity on metrics"
    );
}
