//! Cross-crate observability gates.
//!
//! Two properties anchor the `cbs-obs` layer:
//!
//! 1. **Reconciliation** — registry counters must agree with the
//!    pipeline's own accounting (`StreamingSession::observed`,
//!    `DecodeStats`) on every feed path: per-request `observe`,
//!    columnar `observe_request_batch`, and CBT blocks. A counter that
//!    drifts from ground truth is worse than no counter.
//! 2. **All-or-error** — a stream interrupted by a shard-worker panic
//!    never yields partial metrics: the panic surfaces during feeding
//!    or at `finish`, and a poisoned session refuses to produce
//!    results.

use cbs_core::StreamingWorkbench;
use cbs_obs::Registry;
use cbs_trace::{CbtReader, CbtWriter, IoRequest, OpKind, RequestBatch, Timestamp, VolumeId};

fn requests(n: u64) -> Vec<IoRequest> {
    (0..n)
        .map(|i| {
            IoRequest::new(
                VolumeId::new((i % 11) as u32),
                if i % 3 == 0 {
                    OpKind::Read
                } else {
                    OpKind::Write
                },
                (i % 64) * 4096,
                4096,
                Timestamp::from_micros(i * 250),
            )
        })
        .collect()
}

fn shard_request_total(registry: &Registry, shards: usize) -> u64 {
    (0..shards)
        .map(|s| registry.counter(&format!("stream.shard{s}.requests")).get())
        .sum()
}

#[test]
fn counters_reconcile_across_all_feed_paths() {
    const N: u64 = 20_000;
    const SHARDS: usize = 3;
    let reqs = requests(N);

    // Path 1: per-request observe.
    let registry = Registry::new();
    let mut session = StreamingWorkbench::new()
        .with_shards(SHARDS)
        .with_batch_size(512)
        .with_registry(&registry)
        .start();
    for req in &reqs {
        session.observe(*req);
    }
    assert_eq!(session.observed(), N);
    let per_request = session.finish();
    assert_eq!(registry.counter("stream.observed").get(), N);
    assert_eq!(shard_request_total(&registry, SHARDS), N);

    // Path 2: columnar observe_request_batch.
    let registry = Registry::new();
    let mut session = StreamingWorkbench::new()
        .with_shards(SHARDS)
        .with_batch_size(512)
        .with_registry(&registry)
        .start();
    for piece in reqs.chunks(777) {
        session.observe_request_batch(&RequestBatch::from(piece));
    }
    assert_eq!(session.observed(), N);
    let per_batch = session.finish();
    assert_eq!(registry.counter("stream.observed").get(), N);
    assert_eq!(shard_request_total(&registry, SHARDS), N);

    // Path 3: CBT blocks straight into the session, with the reader
    // publishing into the same registry.
    let mut writer = CbtWriter::with_block_capacity(Vec::new(), 4096);
    for req in &reqs {
        writer.write_request(req).expect("encode");
    }
    let cbt = writer.finish().expect("finish");
    let registry = Registry::new();
    let mut session = StreamingWorkbench::new()
        .with_shards(SHARDS)
        .with_batch_size(512)
        .with_registry(&registry)
        .start();
    let mut reader = CbtReader::new(&cbt[..]).with_registry(&registry);
    while let Some(batch) = reader.read_batch().expect("clean stream") {
        session.observe_request_batch(&batch);
    }
    assert_eq!(session.observed(), N);
    let from_cbt = session.finish();
    assert_eq!(registry.counter("cbt.records").get(), N);
    assert_eq!(registry.counter("stream.observed").get(), N);
    assert_eq!(shard_request_total(&registry, SHARDS), N);

    // Same pipeline, same answers.
    assert_eq!(per_request, per_batch);
    assert_eq!(per_request, from_cbt);

    // The export carries everything the gates above checked.
    let json = registry.to_json();
    assert!(json.contains("\"stream.observed\":{\"type\":\"counter\",\"value\":20000}"));
    assert!(json.contains("\"cbt.records\":{\"type\":\"counter\",\"value\":20000}"));
}

/// Worker-panic injection relies on the analyzer's debug-build ordering
/// assertion, so the all-or-error property is only testable when
/// `debug_assertions` are on (the default for `cargo test`).
#[cfg(debug_assertions)]
mod panic_interruption {
    use super::*;
    use proptest::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// However the stream around the fatal record is shaped, and
        /// however the session is tuned, a panic-interrupted stream is
        /// all-or-error: `finish` never returns partial metrics.
        #[test]
        fn panic_interrupted_stream_never_returns_metrics(
            prefix in 0usize..300,
            suffix in 0usize..300,
            shards in 1usize..4,
            batch_size in 1usize..64,
            depth in 1usize..4,
        ) {
            let registry = Registry::new();
            let session = StreamingWorkbench::new()
                .with_shards(shards)
                .with_batch_size(batch_size)
                .with_channel_depth(depth)
                .with_registry(&registry)
                .start();
            let req = |secs: u64| {
                IoRequest::new(VolumeId::new(0), OpKind::Write, 0, 4096, Timestamp::from_secs(secs))
            };
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                let mut session = session;
                for i in 0..prefix {
                    session.observe(req(10 + i as u64));
                }
                session.observe(req(10 + prefix as u64));
                // Out of order for volume 0: the shard worker panics on
                // the analyzer's ordering assertion.
                session.observe(req(1));
                for i in 0..suffix {
                    session.observe(req(5_000 + i as u64));
                }
                session.finish()
            }));
            prop_assert!(
                outcome.is_err(),
                "a panic-interrupted stream must never yield metrics"
            );
        }
    }
}
