//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the `proptest` API its test suites use:
//! [`proptest!`], [`prop_compose!`], [`prop_oneof!`], the
//! `prop_assert*` family, numeric-range strategies,
//! [`collection::vec`], [`Just`], and [`ProptestConfig`].
//!
//! Semantics: each test runs `cases` random inputs drawn from a
//! deterministic per-test seed. There is **no shrinking** — a failing
//! case panics with the normal assertion message, and because the seed
//! is derived from the test name, reruns reproduce the same inputs.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Per-run configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator driving strategies.
pub mod test_runner {
    /// SplitMix64-based test RNG, seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for the named test (stable across runs).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[0, span)`; `span == 0` is the full domain.
        pub fn below(&mut self, span: u64) -> u64 {
            if span == 0 {
                return self.next_u64();
            }
            let threshold = span.wrapping_neg() % span;
            loop {
                let m = (self.next_u64() as u128) * (span as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A source of random values of one type.
///
/// This is the generation half of proptest's `Strategy`; shrinking is
/// intentionally absent.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                // Hit the endpoints occasionally — boundary cases matter
                // more than the interior.
                match rng.below(64) {
                    0 => lo,
                    1 => hi,
                    _ => lo + (rng.unit_f64() as $t) * (hi - lo),
                }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy combinators and adapters.
pub mod strategy {
    use super::{test_runner::TestRng, Strategy};

    /// A strategy defined by a generation closure (used by
    /// [`prop_compose!`](crate::prop_compose)).
    pub struct FnStrategy<F>(pub F);

    impl<F> core::fmt::Debug for FnStrategy<F> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("FnStrategy")
        }
    }

    impl<V, F: Fn(&mut TestRng) -> V> Strategy for FnStrategy<F> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice among boxed strategies (see
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> core::fmt::Debug for OneOf<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "OneOf({} strategies)", self.0.len())
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use core::ops::Range;

    /// A strategy for `Vec`s with element strategy `element` and a
    /// length drawn from `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a proptest-style test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Chooses uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Defines a function returning a composite strategy:
/// `fn name()(binding in strategy, ...) -> Type { body }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($outer:tt)* ) ( $($pat:pat in $strat:expr),+ $(,)? )
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Declares property tests: each `#[test] fn name(x in strategy, ...)`
/// runs its body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        /// A pair with the second element at least the first.
        fn arb_ordered()(lo in 0u32..100, delta in 0u32..50) -> (u32, u32) {
            (lo, lo + delta)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u8..niche(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn composed_and_oneof(pair in arb_ordered(), flag in prop_oneof![Just(true), Just(false)]) {
            prop_assert!(pair.0 <= pair.1);
            // `flag` must be one of the two oneof branches (trivially
            // true; exercises bool-typed strategies through the macro).
            prop_assert!(usize::from(flag) <= 1);
        }
    }

    const fn niche() -> u8 {
        200
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
