//! Offline placeholder for `serde`.
//!
//! The workspace's `serde` integration is an **optional, off-by-default
//! feature** of `cbs-trace` and `cbs-stats`. The build environment has
//! no access to crates.io, so this placeholder exists purely to let
//! dependency resolution succeed offline. Enabling the downstream
//! `serde` features is unsupported until a real `serde` is vendored —
//! the derive macros are not provided here.

#![forbid(unsafe_code)]
