//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the `criterion` API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] knobs
//! (`sample_size`, `warm_up_time`, `measurement_time`, `throughput`),
//! [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each `bench_function` is warmed up, an iteration
//! count is calibrated so one sample lasts roughly
//! `measurement_time / sample_size`, and the mean/min/max over the
//! samples is printed as `ns/iter` plus derived throughput. There are
//! no statistical comparisons against saved baselines — this harness
//! exists to produce honest wall-clock numbers offline, not
//! publication-grade confidence intervals.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement abstraction (wall clock only).
pub mod measurement {
    /// Marker trait mirroring criterion's measurement abstraction.
    pub trait Measurement {}

    /// Wall-clock time measurement.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;

    impl Measurement for WallTime {}
}

use measurement::WallTime;

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// The benchmark driver: holds global configuration and the CLI filter.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards everything after `--`;
        // cargo itself adds `--bench`. Treat the first non-flag token
        // as a substring filter, like criterion does.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_, WallTime> {
        BenchmarkGroup {
            name: name.into(),
            filter: self.filter.clone(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup::<WallTime> {
            name: String::new(),
            filter: self.filter.clone(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _marker: std::marker::PhantomData,
        };
        group.bench_function(id, f);
        self
    }

    /// Criterion-compat no-op (CLI args are read in `Default`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Criterion-compat final hook; prints nothing extra.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing throughput and timing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M: measurement::Measurement = WallTime> {
    name: String,
    filter: Option<String>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a M>,
}

impl<M: measurement::Measurement> BenchmarkGroup<'_, M> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total sampling budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }

        // Warm-up: run until the warm-up budget is spent, tracking the
        // per-iteration cost to calibrate the sample iteration count.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up_time {
            bencher.iters = 1;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let per_sample_budget = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters_per_sample =
            (per_sample_budget / per_iter.max(1)).clamp(1, u128::from(u32::MAX)) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = samples_ns.first().copied().unwrap_or(0.0);
        let max = samples_ns.last().copied().unwrap_or(0.0);
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len().max(1) as f64;

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {} elem/s", format_rate(n as f64 / (mean / 1e9)))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {}B/s", format_rate(n as f64 / (mean / 1e9)))
            }
            None => String::new(),
        };
        println!(
            "{full:<52} time: [{} {} {}]{rate}",
            format_ns(min),
            format_ns(mean),
            format_ns(max),
        );
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Runs the measured closure and records elapsed wall-clock time.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, executing it as many times as the harness asks.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(20),
        };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("zzz-never".into()),
            sample_size: 2,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(2),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
