//! Offline, API- and stream-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand` 0.8 it actually uses: the
//! [`Rng`] / [`SeedableRng`] traits, uniform sampling over ranges, and
//! [`rngs::SmallRng`].
//!
//! This is not merely API-compatible — it is **output-stream
//! compatible** with `rand` 0.8.5 on 64-bit targets for the surface it
//! implements: `SmallRng` is xoshiro256++ seeded via SplitMix64 (as in
//! `rand_xoshiro`), `gen::<f64>()` is the 53-bit multiply method,
//! integer `gen_range` uses the widening-multiply zone rejection of
//! `UniformInt::sample_single_inclusive`, and float `gen_range` uses
//! the 52-bit `[1, 2)` mantissa method of `UniformFloat`. Seeded
//! consumers therefore reproduce the exact same synthetic corpora the
//! test thresholds were tuned against.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The minimal object-safe generator core: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    ///
    /// Like `rand_xoshiro`, 64-bit generators truncate `next_u64`
    /// (keeping the low half), so one full `u64` is consumed.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Fills `dest` with random bytes (little-endian `next_u64` words,
    /// as `rand_core`'s `fill_bytes_via_next`).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&last[..n]);
        }
    }
}

/// Types samplable from the "standard" distribution (uniform over the
/// type's natural domain; `[0, 1)` for floats).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_from_u32 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
macro_rules! impl_standard_from_u64 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_from_u32!(u8, u16, u32, i8, i16, i32);
impl_standard_from_u64!(u64, i64, usize, isize);

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Multiply-based method: 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges uniform sampling can draw from (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// `UniformInt::sample_single_inclusive` from `rand` 0.8.5: widening
/// multiply with a conservative power-of-two zone (modulo-exact for
/// 8/16-bit types), rejecting the low product half above the zone.
macro_rules! impl_int_range {
    ($($t:ty => $unsigned:ty, $large:ty, $wide:ty;)*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample_from(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range =
                    high.wrapping_sub(low).wrapping_add(1) as $unsigned as $large;
                if range == 0 {
                    // The full type domain.
                    return <$t as StandardSample>::standard_sample(rng);
                }
                let unsigned_max = <$large>::MAX;
                let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $large = StandardSample::standard_sample(rng);
                    let m = (v as $wide) * (range as $wide);
                    let hi = (m >> <$large>::BITS) as $large;
                    let lo = m as $large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

impl_int_range! {
    u8 => u8, u32, u64;
    u16 => u16, u32, u64;
    u32 => u32, u32, u64;
    u64 => u64, u64, u128;
    usize => usize, usize, u128;
    i8 => u8, u32, u64;
    i16 => u16, u32, u64;
    i32 => u32, u32, u64;
    i64 => u64, u64, u128;
    isize => usize, usize, u128;
}

/// `UniformFloat` from `rand` 0.8.5: draw the mantissa-sized high bits,
/// place them in `[1, 2)`, subtract 1, then scale into the range.
macro_rules! impl_float_range {
    ($($t:ty => $bits:ty, $discard:expr, $exp:expr, $mant:expr;)*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (self.start, self.end);
                assert!(low < high, "cannot sample empty range");
                let mut scale = high - low;
                loop {
                    let bits: $bits = StandardSample::standard_sample(rng);
                    let value1_2 =
                        <$t>::from_bits(($exp << $mant) | (bits >> $discard));
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Rounding produced `high`; shrink the scale to the
                    // next representable value below (`decrease_masked`).
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let max_rand = <$t>::from_bits(
                    ($exp << $mant) | (<$bits>::MAX >> $discard),
                ) - 1.0;
                let mut scale = (high - low) / max_rand;
                while scale * max_rand + low > high {
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
                let bits: $bits = StandardSample::standard_sample(rng);
                let value1_2 =
                    <$t>::from_bits(($exp << $mant) | (bits >> $discard));
                (value1_2 - 1.0) * scale + low
            }
        }
    )*};
}

impl_float_range! {
    f32 => u32, 9u32, 127u32, 23u32;
    f64 => u64, 12u64, 1023u64, 52u64;
}

/// The user-facing sampling surface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (`Bernoulli` in upstream:
    /// one `u64` draw compared against `p · 2⁶⁴`; `p ≥ 1` consumes
    /// nothing).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (SplitMix64-expanded, as
    /// `rand_xoshiro` does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let n = chunk.len();
            chunk.copy_from_slice(&z.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }

    /// Builds a generator seeded from another generator.
    fn from_rng<R: RngCore>(rng: &mut R) -> Result<Self, core::convert::Infallible> {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Ok(Self::from_seed(seed))
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++, the
    /// same algorithm `rand` 0.8 uses for `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            if seed.iter().all(|&b| b == 0) {
                // An all-zero state is a fixed point; remap like
                // rand_xoshiro.
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y: i32 = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g: f64 = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn from_rng_derives_child_stream() {
        let mut parent = SmallRng::seed_from_u64(5);
        let mut child = SmallRng::from_rng(&mut parent).unwrap();
        let mut parent2 = SmallRng::seed_from_u64(5);
        let mut child2 = SmallRng::from_rng(&mut parent2).unwrap();
        assert_eq!(child.next_u64(), child2.next_u64());
    }

    #[test]
    fn u32_truncates_low_half() {
        let mut a = SmallRng::seed_from_u64(6);
        let mut b = SmallRng::seed_from_u64(6);
        assert_eq!(a.next_u32(), b.next_u64() as u32);
    }
}
